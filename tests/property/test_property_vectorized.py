"""Property tests: batch radio entry points agree with their scalar twins.

The vectorized medium backend evaluates rx power, interference folding and
reception decisions as array expressions.  Bit-equality with the scalar code
is the whole contract, so each batch entry point is compared element-for-
element against the scalar call on random inputs -- deterministic models
directly, stochastic ones with twin-seeded RNGs (the batch loop must consume
the stream in the same order as a scalar loop would).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Vec2
from repro.radio.interference import (
    NO_SIGNAL_DBM,
    combine_dbm,
    dbm_to_mw,
    dbm_to_mw_batch,
    mw_to_dbm,
    mw_to_dbm_batch,
)
from repro.radio.propagation import (
    FreeSpacePropagation,
    LogNormalShadowing,
    NakagamiFading,
    TwoRayGroundPropagation,
    UnitDiskPropagation,
)
from repro.radio.reception import (
    BATCH_COLLISION,
    BATCH_RECEIVED,
    BATCH_WEAK_SIGNAL,
    ProbabilisticReception,
    ReceptionDecision,
    SnrThresholdReception,
)

np = pytest.importorskip("numpy")

#: Decision enum -> batch code, for comparing scalar and batch outcomes.
CODE_OF = {
    ReceptionDecision.RECEIVED: BATCH_RECEIVED,
    ReceptionDecision.WEAK_SIGNAL: BATCH_WEAK_SIGNAL,
    ReceptionDecision.COLLISION: BATCH_COLLISION,
}

distances = st.lists(
    st.floats(min_value=0.0, max_value=5000.0, allow_nan=False), min_size=1, max_size=40
)
tx_powers = st.floats(min_value=-10.0, max_value=40.0, allow_nan=False)
power_lists = st.lists(
    st.one_of(
        st.floats(min_value=-150.0, max_value=40.0, allow_nan=False),
        st.just(NO_SIGNAL_DBM),
    ),
    min_size=1,
    max_size=40,
)

DETERMINISTIC_MODELS = [
    UnitDiskPropagation(250.0),
    FreeSpacePropagation(),
    TwoRayGroundPropagation(),
    LogNormalShadowing(sigma_db=0.0),
]
STOCHASTIC_MODELS = [
    LogNormalShadowing(sigma_db=4.0),
    NakagamiFading(),
]


class TestPropagationBatchEquality:
    @pytest.mark.parametrize(
        "model", DETERMINISTIC_MODELS, ids=lambda m: type(m).__name__
    )
    @given(tx=tx_powers, ds=distances)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_batch_matches_scalar(self, model, tx, ds):
        batch = model.rx_power_dbm_batch(tx, np.asarray(ds))
        for d, got in zip(ds, batch):
            # The medium computes rx power from tx/rx positions; the batch
            # path must match it for a pair at exactly that distance.
            want = model.rx_power_dbm(tx, Vec2(0.0, 0.0), Vec2(d, 0.0))
            assert got == want or (math.isnan(want) and math.isnan(got))

    @pytest.mark.parametrize(
        "model", STOCHASTIC_MODELS, ids=lambda m: type(m).__name__
    )
    @given(tx=tx_powers, ds=distances, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_stochastic_batch_consumes_rng_like_scalar_loop(self, model, tx, ds, seed):
        # Twin RNGs: the batch loop must draw exactly what a scalar loop in
        # element order would, leaving both streams in the same state.
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        model._rng = rng_a
        batch = model.rx_power_dbm_batch(tx, np.asarray(ds))
        model._rng = rng_b
        for d, got in zip(ds, batch):
            want = model.rx_power_dbm_from_distance(tx, d)
            assert got == want
        assert rng_a.getstate() == rng_b.getstate()


class TestInterferenceBatchEquality:
    @given(powers=power_lists)
    @settings(max_examples=60, deadline=None)
    def test_dbm_to_mw_batch_matches_scalar(self, powers):
        batch = dbm_to_mw_batch(powers)
        for p, got in zip(powers, batch):
            assert got == dbm_to_mw(p)

    @given(
        powers=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mw_to_dbm_batch_matches_scalar(self, powers):
        batch = mw_to_dbm_batch(powers)
        for p, got in zip(powers, batch):
            assert got == mw_to_dbm(p)

    @given(
        contributions=st.lists(
            st.lists(
                st.floats(min_value=-150.0, max_value=40.0, allow_nan=False),
                min_size=0,
                max_size=5,
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_additive_fold_matches_combine_dbm(self, contributions):
        # The vectorized backend folds per-interferer mW contributions into a
        # running total per receiver; the result must equal the scalar
        # combine_dbm over the same contribution list.
        count = len(contributions)
        total_mw = np.zeros(count)
        depth = max((len(c) for c in contributions), default=0)
        for k in range(depth):
            layer = [c[k] if k < len(c) else NO_SIGNAL_DBM for c in contributions]
            total_mw += dbm_to_mw_batch(layer)
        folded = mw_to_dbm_batch(total_mw)
        for contribution, got in zip(contributions, folded):
            assert got == combine_dbm(contribution)


class TestReceptionBatchEquality:
    @given(
        rx=power_lists,
        interference=power_lists,
        snr_threshold=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_snr_threshold_batch_matches_scalar(self, rx, interference, snr_threshold):
        count = min(len(rx), len(interference))
        rx, interference = rx[:count], interference[:count]
        model = SnrThresholdReception(snr_threshold_db=snr_threshold)
        codes = model.decide_batch(np.asarray(rx), np.asarray(interference))
        for r, i, code in zip(rx, interference, codes):
            assert code == CODE_OF[model.decide(r, i).decision]

    @given(
        rx=power_lists,
        interference=power_lists,
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_probabilistic_batch_matches_scalar_with_twin_rngs(
        self, rx, interference, seed
    ):
        count = min(len(rx), len(interference))
        rx, interference = rx[:count], interference[:count]
        model = ProbabilisticReception()
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        codes = model.decide_batch(np.asarray(rx), np.asarray(interference), rng_a)
        for r, i, code in zip(rx, interference, codes):
            assert code == CODE_OF[model.decide(r, i, rng_b).decision]
        assert rng_a.getstate() == rng_b.getstate()
