"""Highway content sharing: the paper's motivating scenario.

The introduction of the paper imagines passengers on an interstate collecting
the blocks of a movie from several other cars, possibly miles away -- at the
network layer, several long multi-hop unicast flows converging on one
receiver.  This example sets up exactly that workload on the IDM highway and
compares a plain connectivity-based protocol (AODV) against a mobility-based
one (PBR) and a probability-based one (Yan-TBP), the combination Sec. VIII
suggests ("one can combine several of these methods").

Run with::

    python examples/highway_content_sharing.py
"""

from __future__ import annotations

from repro.harness import ExperimentRunner, format_table
from repro.harness.scenario import FlowSpec, highway_scenario
from repro.mobility.generator import TrafficDensity

#: The protocols compared for the content-sharing workload.
PROTOCOLS = ["AODV", "PBR", "Yan-TBP"]


def build_scenario():
    """Five source vehicles stream blocks to one receiving vehicle."""
    scenario = highway_scenario(
        TrafficDensity.NORMAL,
        name="content-sharing",
        duration_s=40.0,
        max_vehicles=100,
        seed=13,
    )
    receiver_index = 0
    scenario.flows = [
        FlowSpec(
            source_index=10 * (i + 1),
            destination_index=receiver_index,
            start_time_s=5.0 + i,
            interval_s=0.5,
            packet_count=40,
            size_bytes=1024,
        )
        for i in range(5)
    ]
    return scenario


def main() -> None:
    scenario = build_scenario()
    runner = ExperimentRunner()
    rows = []
    for protocol in PROTOCOLS:
        print(f"Streaming movie blocks over {protocol}...")
        result = runner.run(scenario, protocol)
        summary = result.summary
        delivered = max(1.0, summary["data_delivered"])
        rows.append(
            {
                "protocol": protocol,
                "blocks_sent": summary["data_sent"],
                "blocks_received": summary["data_delivered"],
                "delivery_ratio": summary["delivery_ratio"],
                "mean_delay_s": summary["mean_delay_s"],
                "mean_hops": summary["mean_hops"],
                "discovery_tx": summary["discovery_transmissions"],
                "tx_per_block": (summary["data_transmissions"] + summary["control_transmissions"])
                / delivered,
            }
        )
    print()
    print(
        format_table(
            rows,
            title="Collecting movie blocks over a 3 km highway (5 sources -> 1 receiver)",
        )
    )
    print()
    print("Reading the table: the mobility- and probability-based protocols hold their")
    print("routes together longer (higher delivery ratio) and the ticket-based prober")
    print("spends far fewer discovery transmissions than the flooded AODV discovery.")


if __name__ == "__main__":
    main()
