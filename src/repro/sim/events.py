"""Event and event-queue primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
guarantees FIFO ordering for events scheduled at the same instant, which in
turn makes every simulation run fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(eq=False, slots=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Simulation time at which the callback fires.
        priority: Tie-breaker for events at the same time (lower fires first).
        seq: Monotonically increasing sequence number (second tie-breaker).
        callback: Callable invoked when the event fires.
        args: Positional arguments passed to the callback.
        cancelled: When True the event is skipped by the engine.
    """

    time: float
    priority: int = 0
    seq: int = 0
    callback: Optional[Callable[..., Any]] = field(default=None)
    args: tuple[Any, ...] = field(default=())
    cancelled: bool = field(default=False)

    def __lt__(self, other: "Event") -> bool:
        """Lexicographic ``(time, priority, seq)`` order, written out by hand.

        The heap compares events more often than any other operation touches
        them, and almost every comparison is settled by ``time`` alone; the
        early exits avoid the tuple the generated dataclass ordering would
        build on every call.
        """
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled and self.callback is not None:
            self.callback(*self.args)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time`` and return the event."""
        self._seq += 1
        event = Event(
            time=time, priority=priority, seq=self._seq, callback=callback, args=args
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (it may be cancelled)."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending non-cancelled event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
