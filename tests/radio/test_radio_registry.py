"""Tests for the radio registry: kinds, presets, stacks and fading models."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.scenario import RadioConfig, Scenario
from repro.radio.interference import (
    NO_SIGNAL_DBM,
    AdditiveInterference,
    NoInterference,
    combine_dbm,
)
from repro.radio.mac import MacConfig
from repro.radio.propagation import (
    LogNormalShadowing,
    NakagamiFading,
    PropagationModel,
    TwoRayGroundPropagation,
    UnitDiskPropagation,
)
from repro.radio.reception import (
    ProbabilisticReception,
    ReceptionModel,
    SnrThresholdReception,
)
from repro.radio.registry import (
    DEFAULT_RADIO,
    RADIO_PRESETS,
    available_radio_presets,
    available_radios,
    radio_from_name,
    radio_preset_rows,
    radio_rows,
    register_radio,
    register_radio_preset,
    stack_for_scenario,
    unregister_radio,
    unregister_radio_preset,
)
from repro.radio.stack import RadioStack


class TestRegistryRoundTrip:
    def test_builtin_kinds_are_registered(self):
        assert {"unit_disk", "free_space", "two_ray", "shadowing", "nakagami"} <= set(
            available_radios()
        )

    def test_builtin_presets_are_registered(self):
        assert {
            "ideal-disk-250m",
            "dsrc-highway-los",
            "dsrc-urban-nlos",
            "dsrc-congested",
        } <= set(available_radio_presets())

    def test_every_kind_builds_a_complete_stack(self):
        for name in available_radios():
            stack = radio_from_name(name, rng=random.Random(1))
            assert isinstance(stack, RadioStack)
            assert stack.name == name
            assert isinstance(stack.propagation, PropagationModel)
            assert isinstance(stack.reception, ReceptionModel)
            assert isinstance(stack.mac, MacConfig)
            assert stack.interference.combine([0.0]) <= 0.0

    def test_every_preset_builds_a_complete_stack(self):
        for name in available_radio_presets():
            stack = radio_from_name(name, rng=random.Random(1))
            assert isinstance(stack, RadioStack)
            assert stack.name == name
            # The advertised kind matches the built propagation family.
            assert RADIO_PRESETS[name].kind in available_radios()

    def test_register_and_unregister_custom_kind(self):
        @register_radio("test-floor")
        def _build(rng, floor_dbm=-80.0):
            return RadioStack(reception=SnrThresholdReception(noise_floor_dbm=floor_dbm))

        try:
            stack = radio_from_name("test-floor", floor_dbm=-70.0)
            assert stack.name == "test-floor"
            assert stack.reception.noise_floor_dbm == -70.0
        finally:
            unregister_radio("test-floor")
        with pytest.raises(KeyError):
            radio_from_name("test-floor")

    def test_register_and_unregister_custom_preset(self):
        register_radio_preset(
            "test-short-disk",
            lambda rng, **o: radio_from_name("unit_disk", rng=rng, **{"communication_range_m": 50.0, **o}),
            "tiny disk",
            kind="unit_disk",
        )
        try:
            stack = radio_from_name("test-short-disk")
            assert stack.propagation.communication_range == 50.0
            # Overrides win over the preset's own parameters.
            wider = radio_from_name("test-short-disk", communication_range_m=75.0)
            assert wider.propagation.communication_range == 75.0
        finally:
            unregister_radio_preset("test-short-disk")
        with pytest.raises(KeyError):
            radio_from_name("test-short-disk")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_radio("unit_disk")(lambda rng: RadioStack())
        with pytest.raises(ValueError):
            register_radio_preset(DEFAULT_RADIO, lambda rng: RadioStack(), "dup")

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="dsrc-urban-nlos"):
            radio_from_name("warp-drive")

    def test_listing_rows(self):
        kinds = {row["radio"] for row in radio_rows()}
        assert "nakagami" in kinds
        presets = {row["preset"]: row for row in radio_preset_rows()}
        assert presets[DEFAULT_RADIO]["nominal_range_m"] == "250"
        assert presets["dsrc-urban-nlos"]["kind"] == "shadowing"


class TestPresetShapes:
    def test_ideal_disk_matches_seed_radio(self):
        stack = radio_from_name(DEFAULT_RADIO)
        assert isinstance(stack.propagation, UnitDiskPropagation)
        assert stack.propagation.communication_range == 250.0
        assert isinstance(stack.reception, SnrThresholdReception)
        assert isinstance(stack.interference, AdditiveInterference)
        assert stack.mac == MacConfig()
        assert stack.tx_power_dbm == 20.0
        assert stack.nominal_range_m() == 250.0

    def test_dsrc_highway_los_is_two_ray(self):
        stack = radio_from_name("dsrc-highway-los")
        assert isinstance(stack.propagation, TwoRayGroundPropagation)
        assert isinstance(stack.reception, SnrThresholdReception)
        assert stack.nominal_range_m() > 250.0

    def test_dsrc_urban_nlos_is_shadowed_and_probabilistic(self):
        stack = radio_from_name("dsrc-urban-nlos", rng=random.Random(3))
        assert isinstance(stack.propagation, LogNormalShadowing)
        assert stack.propagation.sigma_db == 6.0
        assert stack.propagation.path_loss_exponent == 3.0
        assert isinstance(stack.reception, ProbabilisticReception)

    def test_dsrc_congested_shortens_cw_and_raises_noise(self):
        stack = radio_from_name("dsrc-congested")
        assert stack.mac.cw_min < MacConfig().cw_min
        assert stack.reception.noise_floor_dbm > SnrThresholdReception().noise_floor_dbm

    def test_kind_parameters_reach_the_models(self):
        stack = radio_from_name("shadowing", rng=random.Random(5), sigma_db=9.0, tx_power_dbm=23.0)
        assert stack.propagation.sigma_db == 9.0
        assert stack.tx_power_dbm == 23.0
        nakagami = radio_from_name("nakagami", rng=random.Random(5), m=1.5)
        assert nakagami.propagation.m == 1.5


class TestScenarioResolution:
    def test_default_scenario_resolves_to_default_preset(self):
        scenario = Scenario()
        stack = stack_for_scenario(scenario, random.Random(0))
        assert stack.name == DEFAULT_RADIO

    def test_radio_stack_name_takes_precedence(self):
        scenario = Scenario(radio_stack="dsrc-highway-los")
        stack = stack_for_scenario(scenario, random.Random(0))
        assert isinstance(stack.propagation, TwoRayGroundPropagation)
        assert stack.name == "dsrc-highway-los"

    def test_radio_params_reach_the_builder(self):
        scenario = Scenario(radio_stack="nakagami", radio_params={"m": 1.0})
        stack = stack_for_scenario(scenario, random.Random(0))
        assert stack.propagation.m == 1.0

    def test_legacy_shim_maps_shadowing_fields(self):
        scenario = Scenario(
            radio=RadioConfig(propagation="shadowing", shadowing_sigma_db=8.0)
        )
        stack = stack_for_scenario(scenario, random.Random(0))
        assert isinstance(stack.propagation, LogNormalShadowing)
        assert stack.propagation.sigma_db == 8.0
        assert stack.name == "shadowing"

    def test_legacy_shim_maps_unit_disk_range(self):
        scenario = Scenario(radio=RadioConfig(communication_range_m=120.0))
        stack = stack_for_scenario(scenario, random.Random(0))
        assert isinstance(stack.propagation, UnitDiskPropagation)
        assert stack.propagation.communication_range == 120.0
        assert stack.name == "unit_disk"

    def test_legacy_shim_rejects_unknown_propagation(self):
        scenario = Scenario(radio=RadioConfig(propagation="warp-drive"))
        with pytest.raises(ValueError):
            stack_for_scenario(scenario, random.Random(0))

    def test_built_scenario_carries_the_resolved_nominal_range(self):
        """Workloads consume ``built.radio_range_m`` for reachability
        denominators and ideal-hop estimates; it must track the resolved
        stack, not the legacy 250 m shim value."""
        from repro.harness.runner import ExperimentRunner
        from repro.harness.scenario import highway_scenario
        from repro.mobility.generator import TrafficDensity

        def build(**overrides):
            return ExperimentRunner().build(
                highway_scenario(
                    TrafficDensity.SPARSE, duration_s=4.0, max_vehicles=5, **overrides
                )
            )

        assert build().radio_range_m == 250.0
        assert build(radio_stack="dsrc-highway-los").radio_range_m > 500.0
        assert build(radio_stack="dsrc-urban-nlos").radio_range_m < 250.0


class TestInterferenceModels:
    def test_additive_matches_combine_dbm(self):
        model = AdditiveInterference()
        assert model.combine([10.0, 10.0]) == pytest.approx(combine_dbm([10.0, 10.0]))
        assert model.combine([]) == NO_SIGNAL_DBM

    def test_no_interference_is_always_silent(self):
        model = NoInterference()
        assert model.combine([10.0, 30.0]) == NO_SIGNAL_DBM

    def test_uses_contributions_flag(self):
        """The medium relies on this flag to skip per-interferer rx-power
        computation (a per-frame hot path) for contribution-blind models."""
        assert AdditiveInterference().uses_contributions is True
        assert NoInterference().uses_contributions is False


class TestNakagamiFading:
    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            NakagamiFading(m=0.2)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.floats(min_value=0.5, max_value=8.0),
        distance=st.floats(min_value=5.0, max_value=800.0),
    )
    def test_mean_power_is_the_underlying_models(self, m, distance):
        """The fading draw is zero-mean in linear units: ``mean_rx_power_dbm``
        must report exactly the underlying path-loss model's mean."""
        model = NakagamiFading(m=m, rng=random.Random(1))
        assert model.mean_rx_power_dbm(20.0, distance) == pytest.approx(
            model.mean_model.mean_rx_power_dbm(20.0, distance)
        )

    def test_sample_mean_converges_to_mean_power(self):
        from repro.geometry import Vec2
        from repro.radio.interference import dbm_to_mw

        model = NakagamiFading(m=3.0, rng=random.Random(7))
        origin, rx = Vec2(0.0, 0.0), Vec2(120.0, 0.0)
        draws_mw = [
            dbm_to_mw(model.rx_power_dbm(20.0, origin, rx)) for _ in range(4000)
        ]
        mean_mw = dbm_to_mw(model.mean_rx_power_dbm(20.0, 120.0))
        assert sum(draws_mw) / len(draws_mw) == pytest.approx(mean_mw, rel=0.05)

    def test_m1_is_rayleigh(self):
        """At m=1 the received power is exponential (Rayleigh amplitude):
        the fraction of draws below the mean power is 1 - 1/e."""
        from repro.geometry import Vec2
        from repro.radio.interference import dbm_to_mw

        model = NakagamiFading(m=1.0, rng=random.Random(11))
        origin, rx = Vec2(0.0, 0.0), Vec2(150.0, 0.0)
        mean_mw = dbm_to_mw(model.mean_rx_power_dbm(20.0, 150.0))
        draws = [
            dbm_to_mw(model.rx_power_dbm(20.0, origin, rx)) for _ in range(6000)
        ]
        below = sum(1 for d in draws if d < mean_mw) / len(draws)
        assert below == pytest.approx(1.0 - math.exp(-1.0), abs=0.03)

    def test_larger_m_concentrates_around_mean(self):
        from repro.geometry import Vec2

        origin, rx = Vec2(0.0, 0.0), Vec2(150.0, 0.0)

        def spread(m):
            model = NakagamiFading(m=m, rng=random.Random(13))
            draws = [model.rx_power_dbm(20.0, origin, rx) for _ in range(2000)]
            mean = sum(draws) / len(draws)
            return sum((d - mean) ** 2 for d in draws) / len(draws)

        assert spread(8.0) < spread(1.0)

    def test_no_signal_passes_through(self):
        from repro.geometry import Vec2

        model = NakagamiFading(m=1.0, mean_model=UnitDiskPropagation(100.0), rng=random.Random(1))
        assert model.rx_power_dbm(20.0, Vec2(0, 0), Vec2(500, 0)) == NO_SIGNAL_DBM
