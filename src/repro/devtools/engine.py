"""The lint engine: discover files, parse once, run rules, apply pragmas.

Two entry points:

* :func:`lint_paths` lints files and directory trees on disk (what the
  CLI and CI call);
* :func:`lint_sources` lints an in-memory ``{relpath: text}`` mapping
  (what the rule tests use for fixtures, and what the historical-bug
  regression tests use to lint *modified* copies of real modules).

Both return a :class:`LintReport` whose findings are sorted by
``(path, line, rule id)`` and already filtered through the per-line
suppression pragmas of :mod:`repro.devtools.pragmas`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.devtools import rules as _builtin_rules  # noqa: F401  (registration)
from repro.devtools.astutils import ImportMap
from repro.devtools.base import LintRule, ParsedModule, ProjectContext
from repro.devtools.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.devtools.pragmas import extract_pragmas
from repro.devtools.registry import LINT_RULES, available_lint_rules

#: Rule id the engine uses for malformed pragmas (see rules/meta.py).
MALFORMED_PRAGMA_RULE = "LINT-001"
#: Rule id the engine uses for unparsable files (see rules/meta.py).
PARSE_ERROR_RULE = "LINT-002"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    file_count: int

    @property
    def clean(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_WARNING)

    def to_dict(self) -> Dict[str, object]:
        """JSON-reporter representation."""
        return {
            "files": self.file_count,
            "clean": self.clean,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _package_relpath(file: Path, root: Path) -> str:
    """Package-relative path: the suffix after the last ``repro`` component
    when the file lives inside the package, else the path relative to the
    lint root (fixture trees), else the bare file name."""
    resolved = file.resolve()
    parts = resolved.parts
    if "repro" in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        relative = parts[anchor + 1 :]
        if relative:
            return "/".join(relative)
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.name


def iter_python_files(paths: Sequence[str]) -> List[Tuple[Path, Path]]:
    """``(file, root)`` pairs for every ``.py`` file under ``paths``, sorted.

    ``root`` is the directory the file was discovered from (the argument
    itself for directories, the parent for explicit files); it anchors
    relative display paths for trees outside the ``repro`` package.
    """
    found: List[Tuple[Path, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend((file, path) for file in sorted(path.rglob("*.py")))
        else:
            found.append((path, path.parent))
    return found


def _parse(path: str, relpath: str, text: str) -> "ParsedModule | Finding":
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return Finding(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
            severity=SEVERITY_ERROR,
        )
    return ParsedModule(
        path=path,
        relpath=relpath,
        text=text,
        tree=tree,
        imports=ImportMap.from_tree(tree),
    )


def _instantiate_rules(select: Optional[Iterable[str]]) -> List[LintRule]:
    if select is None:
        chosen = available_lint_rules()
    else:
        chosen = sorted(set(select))
        unknown = [rule_id for rule_id in chosen if rule_id not in LINT_RULES]
        if unknown:
            raise KeyError(
                f"unknown lint rule(s): {', '.join(unknown)}; "
                f"registered: {', '.join(available_lint_rules())}"
            )
    return [LINT_RULES[rule_id]() for rule_id in chosen]


def _run(
    modules: List[ParsedModule],
    parse_failures: List[Finding],
    select: Optional[Iterable[str]],
) -> LintReport:
    rules = _instantiate_rules(select)
    selected_ids: Set[str] = {rule.rule_id for rule in rules}
    raw: List[Finding] = [
        failure for failure in parse_failures if failure.rule_id in selected_ids
    ]
    for module in modules:
        for rule in rules:
            raw.extend(rule.check_module(module))
    project = ProjectContext(modules)
    for rule in rules:
        raw.extend(rule.check_project(project))

    kept: List[Finding] = []
    known_ids = available_lint_rules()
    for module in modules:
        pragmas, pragma_errors = extract_pragmas(module.text, known_ids)
        if MALFORMED_PRAGMA_RULE in selected_ids:
            kept.extend(
                Finding(
                    path=module.relpath,
                    line=error.line,
                    col=error.col,
                    rule_id=MALFORMED_PRAGMA_RULE,
                    message=error.message,
                    severity=SEVERITY_ERROR,
                )
                for error in pragma_errors
            )
        for finding in raw:
            if finding.path != module.relpath:
                continue
            if any(p.suppresses(finding.rule_id, finding.line) for p in pragmas):
                continue
            kept.append(finding)
    module_paths = {module.relpath for module in modules}
    kept.extend(f for f in raw if f.path not in module_paths)

    kept.sort(key=lambda f: (f.path, f.line, f.rule_id, f.col))
    return LintReport(findings=kept, file_count=len(modules) + len(parse_failures))


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> LintReport:
    """Lint files and directory trees on disk.

    Args:
        paths: Files and/or directories; directories are walked for
            ``*.py`` recursively.
        select: Optional iterable of rule ids to run (default: all).
    """
    modules: List[ParsedModule] = []
    parse_failures: List[Finding] = []
    for file, root in iter_python_files(paths):
        text = file.read_text(encoding="utf-8")
        parsed = _parse(str(file), _package_relpath(file, root), text)
        if isinstance(parsed, Finding):
            parse_failures.append(parsed)
        else:
            modules.append(parsed)
    return _run(modules, parse_failures, select)


def lint_sources(
    sources: Mapping[str, str], select: Optional[Iterable[str]] = None
) -> LintReport:
    """Lint an in-memory ``{relpath: source text}`` mapping.

    Relpaths are taken verbatim (use package-relative paths such as
    ``mobility/highway.py`` so path-scoped rules apply as they would on
    the real tree).
    """
    modules: List[ParsedModule] = []
    parse_failures: List[Finding] = []
    for relpath in sorted(sources):
        parsed = _parse(relpath, relpath, sources[relpath])
        if isinstance(parsed, Finding):
            parse_failures.append(parsed)
        else:
            modules.append(parsed)
    return _run(modules, parse_failures, select)
