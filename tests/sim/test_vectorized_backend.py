"""Vectorized-backend equivalence tests and position-store unit tests.

The struct-of-arrays fast path is an invisible optimisation: for every
scenario kind, radio stack and workload it must reproduce the scalar
backends' event traces byte for byte -- identical per-frame decisions and
identical RNG consumption.  Stochastic radios exercise the scalar fallback
inside the vectorized backend (same requirement, trivially met); the
deterministic radios exercise the array fast path proper.
"""

import pytest

from repro.geometry import Vec2
from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import Scenario, city_scenario
from repro.protocols.location import LocationService
from repro.protocols.registry import make_protocol_factory
from repro.sim import position_store
from repro.sim.position_store import PositionStore, require_numpy
from repro.workloads import workload_from_name
from tests.sim.test_medium_backends import normalized_records, run_seeded_scenario

np = pytest.importorskip("numpy")

#: Radio stacks crossing the fast-path gate: ideal-disk and dsrc-urban-nlos
#: are deterministic (array fast path), nakagami is stochastic (scalar
#: fallback inside the vectorized backend).
RADIOS = ["ideal-disk-250m", "dsrc-urban-nlos", "nakagami"]
WORKLOADS = ["cbr", "safety-beacon"]


def run_workload_scenario(kind, spatial_backend, radio, workload, seed=9):
    """A small traced run of ``kind`` under the given radio and workload."""
    runner = ExperimentRunner(trace_enabled=True, trace_max_records=500_000)
    if kind == "city":
        scenario = city_scenario(
            max_vehicles=30,
            duration_s=5.0,
            drain_s=1.0,
            seed=seed,
            spatial_backend=spatial_backend,
            radio_stack=radio,
            workload=workload,
        )
    else:
        scenario = Scenario(
            name=kind,
            kind=kind,
            max_vehicles=30,
            duration_s=5.0,
            drain_s=1.0,
            seed=seed,
            spatial_backend=spatial_backend,
            radio_stack=radio,
            workload=workload,
        )
    built = runner.build(scenario)
    factory = make_protocol_factory(
        "Greedy",
        location_service=LocationService(built.network),
        road_graph=built.road_graph,
    )
    built.network.attach_protocols(factory)
    wl = workload_from_name(scenario.workload, **dict(scenario.workload_params))
    wl.build(scenario, built, built.sim.rng.stream("traffic"))
    built.network.start()
    built.sim.run(until=scenario.duration_s + scenario.drain_s)
    return built


class TestCrossBackendTraces:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("radio", RADIOS)
    def test_city_vectorized_matches_grid(self, radio, workload):
        # City runs drive GraphWalkMobility's array placement through the
        # store; per (radio, workload) the trace must be byte-identical.
        grid = run_workload_scenario("city", "grid", radio, workload)
        vec = run_workload_scenario("city", "vectorized", radio, workload)
        assert normalized_records(vec.trace) == normalized_records(grid.trace)
        assert vec.stats.summary() == grid.stats.summary()

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("radio", RADIOS)
    def test_random_waypoint_vectorized_matches_grid(self, radio, workload):
        grid = run_workload_scenario("random_waypoint", "grid", radio, workload)
        vec = run_workload_scenario("random_waypoint", "vectorized", radio, workload)
        assert normalized_records(vec.trace) == normalized_records(grid.trace)
        assert vec.stats.summary() == grid.stats.summary()

    def test_city_vectorized_matches_linear_oracle(self):
        # The exhaustive O(N) scan is the ground-truth oracle; one cell
        # suffices because grid-vs-linear equivalence is covered elsewhere.
        linear = run_workload_scenario("city", "linear", "ideal-disk-250m", "cbr")
        vec = run_workload_scenario("city", "vectorized", "ideal-disk-250m", "cbr")
        assert normalized_records(vec.trace) == normalized_records(linear.trace)
        assert vec.stats.summary() == linear.stats.summary()

    def test_highway_seeded_scenario_vectorized_matches_grid(self):
        # The 50-vehicle highway acceptance scenario of the grid backend,
        # now with IDM/MOBIL integration running in array mode.
        grid = run_seeded_scenario("grid")
        vec = run_seeded_scenario("vectorized")
        assert normalized_records(vec.trace) == normalized_records(grid.trace)
        assert vec.stats.summary() == grid.stats.summary()


class TestPositionStore:
    def test_add_remove_swaps_last_row(self):
        store = PositionStore()
        store.add(10, Vec2(1.0, 2.0))
        store.add(20, Vec2(3.0, 4.0))
        store.add(30, Vec2(5.0, 6.0))
        assert len(store) == 3
        store.remove(10)
        # Last row (node 30) swapped into the vacated slot 0.
        assert len(store) == 2
        assert store.row_of(30) == 0
        assert store.position_of(30) == Vec2(5.0, 6.0)
        assert store.position_of(20) == Vec2(3.0, 4.0)
        assert 10 not in store

    def test_values_round_trip_bit_exactly(self):
        store = PositionStore()
        x, y = 0.1 + 0.2, 1e308 * 1e-5
        store.add(1, Vec2(x, y), tx_power_dbm=23.5)
        assert store.xs[store.row_of(1)] == x
        assert store.ys[store.row_of(1)] == y
        assert store.tx_power_dbm[store.row_of(1)] == 23.5
        assert store.position_of(1) == Vec2(x, y)

    def test_growth_preserves_rows(self):
        store = PositionStore()
        for i in range(200):  # force several capacity doublings
            store.add(i, Vec2(float(i), float(-i)))
        for i in range(200):
            assert store.position_of(i) == Vec2(float(i), float(-i))
        assert store.ids() == list(range(200))

    def test_managed_rows_excluded_from_pull_list(self):
        store = PositionStore()
        store.add(1, Vec2(0, 0))
        store.add(2, Vec2(0, 0), static=True)
        store.add(3, Vec2(0, 0))
        store.set_managed(3)
        assert store.unmanaged_dynamic_ids() == [1]

    def test_rows_for_preserves_order(self):
        store = PositionStore()
        for i in (5, 7, 9):
            store.add(i, Vec2(0, 0))
        rows = store.rows_for([9, 5, 7])
        assert list(rows) == [store.row_of(9), store.row_of(5), store.row_of(7)]


class TestTxPowerWriteThrough:
    def test_node_tx_power_setter_updates_store(self):
        from repro.sim.node import Node, StaticPositionProvider

        node = Node(node_id=1, position_provider=StaticPositionProvider(Vec2(0, 0)))
        store = PositionStore()
        store.add(1, Vec2(0, 0), tx_power_dbm=node.tx_power_dbm)
        node.bind_position_store(store)
        node.tx_power_dbm = 17.0
        assert store.tx_power_dbm[store.row_of(1)] == 17.0


class TestNumpyGate:
    def test_require_numpy_raises_actionable_error_when_missing(self, monkeypatch):
        monkeypatch.setattr(position_store, "np", None)
        with pytest.raises(RuntimeError, match="requires numpy"):
            require_numpy()

    def test_vectorized_medium_fails_fast_without_numpy(self, monkeypatch):
        monkeypatch.setattr(position_store, "np", None)
        from repro.sim.engine import Simulator
        from repro.sim.medium import WirelessMedium

        with pytest.raises(RuntimeError, match="numpy"):
            WirelessMedium(Simulator(seed=1), spatial_backend="vectorized")
