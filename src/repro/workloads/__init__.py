"""Pluggable application workloads.

Traffic is a first-class, registry-resolved subsystem, the same way routing
protocols (:mod:`repro.protocols.registry`) and mobility substrates
(:mod:`repro.harness.scenarios`) are: a :class:`~repro.workloads.base.Workload`
builds a run's offered traffic from ``(Scenario, BuiltScenario, rng)``, and
``Scenario.workload`` names which one (kind or preset) a run uses.

Built-in kinds:

* ``cbr`` -- constant-bit-rate unicast flows (the classic ``FlowSpec``
  semantics; the default, trace-equivalent to the pre-registry runner),
* ``poisson`` -- open flow population with exponential inter-arrivals,
* ``safety-beacon`` -- single-hop broadcast BSMs from every vehicle,
* ``event-burst`` -- geo-scoped flooding of emergency warnings,
* ``v2i`` -- vehicle <-> nearest-RSU request/response sessions.
"""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    WORKLOAD_PRESETS,
    WORKLOAD_TYPES,
    WorkloadPreset,
    available_workload_presets,
    available_workloads,
    register_workload,
    register_workload_preset,
    unregister_workload,
    unregister_workload_preset,
    workload_from_name,
    workload_preset_rows,
    workload_rows,
)

# Importing the built-in workload modules registers their kinds and presets.
from repro.workloads.cbr import CbrWorkload
from repro.workloads.event_burst import EventBurstWorkload
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.safety_beacon import SafetyBeaconWorkload
from repro.workloads.v2i import V2IWorkload

__all__ = [
    "WORKLOAD_PRESETS",
    "WORKLOAD_TYPES",
    "Workload",
    "WorkloadPreset",
    "CbrWorkload",
    "EventBurstWorkload",
    "PoissonWorkload",
    "SafetyBeaconWorkload",
    "V2IWorkload",
    "available_workload_presets",
    "available_workloads",
    "register_workload",
    "register_workload_preset",
    "unregister_workload",
    "unregister_workload_preset",
    "workload_from_name",
    "workload_preset_rows",
    "workload_rows",
]
