"""repro: reproduction of "Reliable Routing in Vehicular Ad hoc Networks".

The paper (Yan, Mitton, Li -- WWASN/ICDCS Workshops 2010) surveys VANET
routing protocols and classifies them into five categories according to the
routing metric they exploit: connectivity, mobility, infrastructure,
geographic location and probability models.

This package provides:

* ``repro.sim`` -- a discrete-event packet-level network simulator.
* ``repro.radio`` -- wireless propagation, reception, interference and MAC
  models, composed into registry-resolved :class:`RadioStack` profiles.
* ``repro.workloads`` -- registry-resolved application-traffic models.
* ``repro.mobility`` -- vehicular mobility models (IDM highway, Manhattan
  grid, random waypoint, trace replay).
* ``repro.roadnet`` -- road networks, zones and road-side-unit placement.
* ``repro.core`` -- the paper's analytical content: the link-lifetime model
  (Eqns. 1-4), direction decomposition, probabilistic link-stability models,
  path reliability and the protocol taxonomy.
* ``repro.protocols`` -- representative routing protocols for each of the
  five categories of the taxonomy.
* ``repro.harness`` -- scenario construction, experiment running, parameter
  sweeps and reporting used by the benchmarks.
"""

from repro.version import __version__

__all__ = ["__version__"]
