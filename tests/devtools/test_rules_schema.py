"""SCHEMA-001/002 fixtures plus the live-tree regressions."""

from pathlib import Path

from repro.devtools import lint_sources

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

SCHEMA_OK = (
    "RECORD_SCHEMA_VERSION = 2\n"
    'RECORD_FIELDS = {1: ("a", "b"), 2: ("a", "b")}\n'
)
RUNNER_OK = (
    "from dataclasses import dataclass\n"
    "\n"
    "@dataclass\n"
    "class RunRecord:\n"
    "    a: int\n"
    "    b: str\n"
)


def _hits(report, rule_id="SCHEMA-001"):
    return [(f.rule_id, f.path, f.line) for f in report.findings if f.rule_id == rule_id]


class TestRecordSchemaVersionRule:
    def test_matching_layout_is_clean(self):
        report = lint_sources(
            {"store/schema.py": SCHEMA_OK, "harness/runner.py": RUNNER_OK},
            select=["SCHEMA-001"],
        )
        assert report.clean

    def test_added_field_without_bump_flagged(self):
        runner = RUNNER_OK + "    c: float\n"
        report = lint_sources(
            {"store/schema.py": SCHEMA_OK, "harness/runner.py": runner},
            select=["SCHEMA-001"],
        )
        assert _hits(report) == [("SCHEMA-001", "harness/runner.py", 4)]
        assert "without a schema-version bump" in report.findings[0].message

    def test_reordered_fields_flagged(self):
        runner = RUNNER_OK.replace("    a: int\n    b: str\n", "    b: str\n    a: int\n")
        report = lint_sources(
            {"store/schema.py": SCHEMA_OK, "harness/runner.py": runner},
            select=["SCHEMA-001"],
        )
        assert len(_hits(report)) == 1

    def test_bumped_version_with_new_catalogue_entry_is_clean(self):
        schema = (
            "RECORD_SCHEMA_VERSION = 3\n"
            'RECORD_FIELDS = {1: ("a", "b"), 2: ("a", "b"), 3: ("a", "b", "c")}\n'
        )
        runner = RUNNER_OK + "    c: float\n"
        report = lint_sources(
            {"store/schema.py": schema, "harness/runner.py": runner},
            select=["SCHEMA-001"],
        )
        assert report.clean

    def test_current_version_missing_from_catalogue_flagged(self):
        schema = 'RECORD_SCHEMA_VERSION = 3\nRECORD_FIELDS = {1: ("a",), 2: ("a",)}\n'
        runner = "from dataclasses import dataclass\n\n@dataclass\nclass RunRecord:\n    a: int\n"
        report = lint_sources(
            {"store/schema.py": schema, "harness/runner.py": runner},
            select=["SCHEMA-001"],
        )
        hits = _hits(report)
        assert hits == [("SCHEMA-001", "store/schema.py", 1)]
        assert "no entry for version 3" in report.findings[0].message

    def test_version_gap_flagged(self):
        schema = 'RECORD_SCHEMA_VERSION = 3\nRECORD_FIELDS = {1: ("a",), 3: ("a",)}\n'
        runner = "from dataclasses import dataclass\n\n@dataclass\nclass RunRecord:\n    a: int\n"
        report = lint_sources(
            {"store/schema.py": schema, "harness/runner.py": runner},
            select=["SCHEMA-001"],
        )
        assert any("contiguous" in f.message for f in report.findings)

    def test_classvar_annotations_are_not_fields(self):
        runner = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n"
            "\n"
            "@dataclass\n"
            "class RunRecord:\n"
            "    kind: ClassVar[str] = 'run'\n"
            "    a: int\n"
            "    b: str\n"
        )
        report = lint_sources(
            {"store/schema.py": SCHEMA_OK, "harness/runner.py": runner},
            select=["SCHEMA-001"],
        )
        assert report.clean

    def test_partial_lint_runs_stay_silent(self):
        # Either module alone gives the rule nothing to compare.
        assert lint_sources(
            {"store/schema.py": SCHEMA_OK}, select=["SCHEMA-001"]
        ).clean
        assert lint_sources(
            {"harness/runner.py": RUNNER_OK + "    c: float\n"}, select=["SCHEMA-001"]
        ).clean

    def test_non_literal_catalogue_flagged(self):
        schema = "RECORD_SCHEMA_VERSION = 2\nRECORD_FIELDS = make_fields()\n"
        report = lint_sources(
            {"store/schema.py": schema, "harness/runner.py": RUNNER_OK},
            select=["SCHEMA-001"],
        )
        assert any("literal dict" in f.message for f in report.findings)

    def test_live_tree_is_clean(self):
        """Acceptance: the real schema.py and runner.py agree today."""
        sources = {
            "store/schema.py": (SRC / "store" / "schema.py").read_text(),
            "harness/runner.py": (SRC / "harness" / "runner.py").read_text(),
        }
        report = lint_sources(sources, select=["SCHEMA-001"])
        assert report.clean

    def test_live_tree_drift_is_flagged(self):
        """Un-bumped field addition to the *real* RunRecord re-flags today."""
        runner_text = (SRC / "harness" / "runner.py").read_text()
        drifted = runner_text.replace(
            "    scenario_name: str\n",
            "    scenario_name: str\n    hostname: str\n",
            1,
        )
        assert drifted != runner_text  # the anchor field still exists
        sources = {
            "store/schema.py": (SRC / "store" / "schema.py").read_text(),
            "harness/runner.py": drifted,
        }
        report = lint_sources(sources, select=["SCHEMA-001"])
        assert len(_hits(report)) == 1


TELEMETRY_OK = (
    "TELEMETRY_SCHEMA_VERSION = 1\n"
    'TELEMETRY_FIELDS = {1: ("v", "event", "t", "monitor")}\n'
)


class TestTelemetrySchemaVersionRule:
    def test_pinned_envelope_is_clean(self):
        report = lint_sources(
            {"monitors/telemetry.py": TELEMETRY_OK}, select=["SCHEMA-002"]
        )
        assert report.clean

    def test_current_version_missing_from_catalogue_flagged(self):
        telemetry = (
            "TELEMETRY_SCHEMA_VERSION = 2\n"
            'TELEMETRY_FIELDS = {1: ("v", "event", "t", "monitor")}\n'
        )
        report = lint_sources(
            {"monitors/telemetry.py": telemetry}, select=["SCHEMA-002"]
        )
        hits = _hits(report, "SCHEMA-002")
        assert hits == [("SCHEMA-002", "monitors/telemetry.py", 1)]
        assert "no entry for version 2" in report.findings[0].message

    def test_version_gap_flagged(self):
        telemetry = (
            "TELEMETRY_SCHEMA_VERSION = 3\n"
            'TELEMETRY_FIELDS = {1: ("v",), 3: ("v",)}\n'
        )
        report = lint_sources(
            {"monitors/telemetry.py": telemetry}, select=["SCHEMA-002"]
        )
        assert any("contiguous" in f.message for f in report.findings)

    def test_envelope_without_version_key_flagged(self):
        telemetry = (
            "TELEMETRY_SCHEMA_VERSION = 1\n"
            'TELEMETRY_FIELDS = {1: ("event", "t", "monitor")}\n'
        )
        report = lint_sources(
            {"monitors/telemetry.py": telemetry}, select=["SCHEMA-002"]
        )
        assert any("omits the 'v' key" in f.message for f in report.findings)

    def test_non_literal_catalogue_flagged(self):
        telemetry = "TELEMETRY_SCHEMA_VERSION = 1\nTELEMETRY_FIELDS = make()\n"
        report = lint_sources(
            {"monitors/telemetry.py": telemetry}, select=["SCHEMA-002"]
        )
        assert any("literal dict" in f.message for f in report.findings)

    def test_partial_lint_runs_stay_silent(self):
        report = lint_sources(
            {"monitors/other.py": "x = 1\n"}, select=["SCHEMA-002"]
        )
        assert report.clean

    def test_live_tree_is_clean(self):
        sources = {
            "monitors/telemetry.py": (SRC / "monitors" / "telemetry.py").read_text(),
        }
        assert lint_sources(sources, select=["SCHEMA-002"]).clean

    def test_live_tree_drift_is_flagged(self):
        """Bumping the real version without cataloguing re-flags today."""
        telemetry_text = (SRC / "monitors" / "telemetry.py").read_text()
        drifted = telemetry_text.replace(
            "TELEMETRY_SCHEMA_VERSION: int = 1",
            "TELEMETRY_SCHEMA_VERSION: int = 2",
            1,
        )
        assert drifted != telemetry_text
        report = lint_sources(
            {"monitors/telemetry.py": drifted}, select=["SCHEMA-002"]
        )
        assert len(_hits(report, "SCHEMA-002")) == 1
