"""Tests for the workload registry and the built-in traffic models."""

import random

import pytest

from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import DEFAULT_FLOW_COUNT, FlowSpec, Scenario, highway_scenario
from repro.mobility.generator import TrafficDensity
from repro.protocols.location import LocationService
from repro.protocols.registry import make_protocol_factory
from repro.sim.packet import BROADCAST
from repro.workloads import (
    CbrWorkload,
    SafetyBeaconWorkload,
    Workload,
    available_workload_presets,
    available_workloads,
    register_workload,
    unregister_workload,
    workload_from_name,
    workload_preset_rows,
    workload_rows,
)


def _small_scenario(**overrides) -> Scenario:
    base = highway_scenario(
        TrafficDensity.SPARSE,
        duration_s=12.0,
        max_vehicles=25,
        default_flow_count=2,
        seed=3,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestRegistry:
    def test_builtin_kinds_are_registered(self):
        kinds = available_workloads()
        for kind in ("cbr", "poisson", "safety-beacon", "event-burst", "v2i"):
            assert kind in kinds

    def test_unknown_workload_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="safety-beacon"):
            workload_from_name("nothing-like-this")

    def test_kind_resolution_instantiates_with_params(self):
        workload = workload_from_name("safety-beacon", interval_s=0.25)
        assert isinstance(workload, SafetyBeaconWorkload)
        assert workload.interval_s == 0.25

    def test_preset_resolution_applies_overrides_on_top(self):
        preset = workload_from_name("safety-beacon-10hz")
        assert preset.interval_s == pytest.approx(0.1)
        overridden = workload_from_name("safety-beacon-10hz", size_bytes=400)
        assert overridden.interval_s == pytest.approx(0.1)
        assert overridden.size_bytes == 400

    def test_register_and_unregister_plugin_kind(self):
        @register_workload("test-noop")
        class NoopWorkload(Workload):
            """Does nothing (test plug-in)."""

            def build(self, scenario, built, rng):
                return []

        try:
            assert isinstance(workload_from_name("test-noop"), NoopWorkload)
            with pytest.raises(ValueError, match="already registered"):
                register_workload("test-noop")(NoopWorkload)
        finally:
            unregister_workload("test-noop")
        assert "test-noop" not in available_workloads()

    def test_rows_cover_every_kind_and_preset(self):
        assert {row["workload"] for row in workload_rows()} == set(available_workloads())
        assert {row["preset"] for row in workload_preset_rows()} == set(
            available_workload_presets()
        )

    def test_default_flow_count_is_unified(self):
        assert Scenario().default_flow_count == DEFAULT_FLOW_COUNT


def _legacy_schedule_flows(built):
    """Verbatim copy of the pre-redesign ``ExperimentRunner._schedule_flows``.

    The trace-equivalence acceptance test runs this frozen reference next to
    the registry-resolved ``cbr`` workload: both must produce the same
    schedule (and therefore the same summary) for the same seed.
    """
    import math

    scenario = built.scenario
    rng = built.sim.rng.stream("traffic")
    specs = list(scenario.flows)
    if not specs:
        template = scenario.flow_template
        specs = [
            FlowSpec(
                start_time_s=template.start_time_s,
                interval_s=template.interval_s,
                packet_count=template.packet_count,
                size_bytes=template.size_bytes,
            )
            for _ in range(scenario.default_flow_count)
        ]
    flows = []
    vehicles = built.vehicle_nodes
    if len(vehicles) < 2:
        return flows

    def ideal_hops(source, destination):
        range_m = built.scenario.radio.communication_range_m
        distance = source.position.distance_to(destination.position)
        return max(1.0, math.ceil(distance / max(range_m, 1.0)))

    def send_flow_packet(source, destination, size_bytes, flow_id, seq):
        built.ideal_hop_samples[(source.node_id, flow_id, seq)] = ideal_hops(
            source, destination
        )
        if source.protocol is not None:
            source.protocol.send_data(
                destination.node_id, size_bytes=size_bytes, flow_id=flow_id, seq=seq
            )

    for flow_id, spec in enumerate(specs, start=1):
        source_index = spec.source_index
        destination_index = spec.destination_index
        if source_index is None or destination_index is None:
            source_index = rng.randrange(len(vehicles))
            destination_index = rng.randrange(len(vehicles))
            while destination_index == source_index:
                destination_index = rng.randrange(len(vehicles))
        source = vehicles[source_index % len(vehicles)]
        destination = vehicles[destination_index % len(vehicles)]
        built.stats.register_flow(flow_id, source.node_id, destination.node_id)
        flows.append(
            {
                "flow_id": flow_id,
                "source": source.node_id,
                "destination": destination.node_id,
            }
        )
        for packet_index in range(spec.packet_count):
            send_time = spec.start_time_s + packet_index * spec.interval_s
            if send_time > scenario.duration_s:
                break
            built.sim.schedule_at(
                send_time,
                send_flow_packet,
                source,
                destination,
                spec.size_bytes,
                flow_id,
                packet_index + 1,
            )
    return flows


def _legacy_run_summary(scenario, protocol_name):
    """Run ``scenario`` the pre-redesign way and return the metric summary."""
    runner = ExperimentRunner()
    built = runner.build(scenario)
    location_service = LocationService(built.network)
    factory = make_protocol_factory(
        protocol_name,
        config=None,
        location_service=location_service,
        road_graph=built.road_graph,
    )
    built.network.attach_protocols(factory)
    _legacy_schedule_flows(built)
    built.network.start()
    built.sim.run(until=scenario.duration_s + scenario.drain_s)
    return built.stats.summary()


class TestCbrTraceEquivalence:
    @pytest.mark.parametrize("seed", [3, 21])
    @pytest.mark.parametrize("protocol", ["Greedy", "Flooding"])
    def test_default_cbr_reproduces_the_pre_redesign_runner(self, seed, protocol):
        """Acceptance: same seeds -> same ``RunRecord.summary`` as before the
        workload redesign."""
        scenario = _small_scenario(seed=seed)
        legacy = _legacy_run_summary(scenario, protocol)
        current = ExperimentRunner().run(scenario, protocol)
        assert current.workload == "cbr"
        assert current.summary == legacy

    def test_explicit_flows_and_pinned_endpoints_match_legacy(self):
        scenario = _small_scenario()
        scenario.flows.extend(
            [
                FlowSpec(source_index=0, destination_index=4, start_time_s=2.0, packet_count=5),
                FlowSpec(start_time_s=3.0, packet_count=4),
            ]
        )
        legacy = _legacy_run_summary(scenario, "Greedy")
        current = ExperimentRunner().run(scenario, "Greedy")
        assert current.summary == legacy


class TestCbrWorkload:
    def test_degenerate_flow_start_warns_and_is_excluded(self):
        scenario = _small_scenario()
        scenario.flows.extend(
            [
                FlowSpec(source_index=0, destination_index=1, start_time_s=2.0, packet_count=3),
                FlowSpec(source_index=2, destination_index=3, start_time_s=12.5, packet_count=3),
            ]
        )
        runner = ExperimentRunner()
        with pytest.warns(RuntimeWarning, match="past the"):
            result = runner.run(scenario, "Flooding")
        # Only the live flow is registered and counted.
        assert len(result.flow_details) == 1
        assert result.summary["data_sent"] == 3.0

    def test_degenerate_flow_does_not_shift_later_endpoint_draws(self):
        """Skipping a degenerate flow must consume the same RNG draws the
        legacy scheduler consumed for it, so the surviving unpinned flows
        keep their legacy endpoints."""
        def with_flows():
            scenario = _small_scenario()
            scenario.flows.extend(
                [FlowSpec(start_time_s=50.0, packet_count=3), FlowSpec(packet_count=3)]
            )
            return scenario

        runner = ExperimentRunner()
        built = runner.build(with_flows())
        _legacy_schedule_flows(built)
        legacy_flow = built.stats.flows[2]  # the live flow; flow 1 is dead
        with pytest.warns(RuntimeWarning, match="past the"):
            result = runner.run(with_flows(), "Flooding")
        (current_flow,) = [f for f in result.stats.flows.values()]
        assert current_flow.flow_id == 2
        assert (current_flow.source, current_flow.destination) == (
            legacy_flow.source,
            legacy_flow.destination,
        )

    def test_flow_starting_exactly_at_duration_sends_one_packet(self):
        """The guard boundary agrees with the scheduling loop (and the
        legacy scheduler): a start exactly at duration_s is not degenerate
        -- it sends its first packet at t == duration."""
        scenario = _small_scenario()
        scenario.flows.append(
            FlowSpec(source_index=0, destination_index=1, start_time_s=12.0, packet_count=3)
        )
        result = ExperimentRunner().run(scenario, "Flooding")
        assert len(result.flow_details) == 1
        assert result.summary["data_sent"] == 1.0

    def test_workload_params_override_the_template(self):
        scenario = _small_scenario(
            workload_params={"flow_count": 1, "packet_count": 4, "start_time_s": 1.0}
        )
        result = ExperimentRunner().run(scenario, "Flooding")
        assert len(result.flow_details) == 1
        assert result.summary["data_sent"] == 4.0

    def test_single_vehicle_schedules_nothing(self):
        workload = CbrWorkload()
        scenario = _small_scenario(max_vehicles=1)
        runner = ExperimentRunner()
        built = runner.build(scenario)
        assert workload.build(scenario, built, random.Random(0)) == []


class TestSafetyBeaconWorkload:
    def test_runs_end_to_end_with_per_receiver_accounting(self):
        scenario = _small_scenario(workload="safety-beacon")
        result = ExperimentRunner().run(scenario, "Greedy")
        assert result.workload == "safety-beacon"
        assert result.summary["data_sent"] > 0
        assert 0.0 <= result.summary["delivery_ratio"] <= 1.0
        assert "mean_beacon_receivers" in result.extra
        # One broadcast flow per vehicle.
        assert len(result.flow_details) == result.vehicle_count
        for flow in result.stats.flows.values():
            assert flow.mode == "broadcast"
            assert flow.destination == BROADCAST

    def test_beacon_interval_preset_sends_proportionally_more(self):
        slow = ExperimentRunner().run(
            _small_scenario(workload="safety-beacon", workload_params={"interval_s": 2.0}),
            "Greedy",
        )
        fast = ExperimentRunner().run(
            _small_scenario(workload="safety-beacon-10hz"), "Greedy"
        )
        assert fast.summary["data_sent"] > 5 * slow.summary["data_sent"]

    def test_reproducible_per_seed(self):
        scenario = _small_scenario(workload="safety-beacon")
        first = ExperimentRunner().run(scenario, "Greedy")
        second = ExperimentRunner().run(scenario, "Greedy")
        assert first.summary == second.summary

    def test_jittered_phase_past_duration_excludes_the_dead_flow(self):
        """A vehicle whose randomised first beacon lands after duration_s
        must not leave a registered zero-send flow behind."""
        scenario = _small_scenario(
            workload="safety-beacon",
            workload_params={"start_time_s": 11.8, "interval_s": 0.5},
        )
        result = ExperimentRunner().run(scenario, "Greedy")
        # With a 0.5 s phase window over the last 0.2 s of a 12 s run, some
        # vehicles send and some do not; whoever is registered must have sent.
        assert result.stats.flows
        assert all(flow.sent > 0 for flow in result.stats.flows.values())
        assert len(result.flow_details) < result.vehicle_count

    def test_beacon_dedup_memory_stays_bounded(self):
        """Memory regression (ROADMAP PR 4 follow-up): the stats collector
        used to keep one (receiver, packet) dedup tuple per delivery for the
        whole run.  Beacons past their scope linger must release their dedup
        entries, so a long run holds a sliding window rather than every
        delivery ever made."""
        from repro.workloads.safety_beacon import SCOPE_LINGER_S

        scenario = _small_scenario(
            workload="safety-beacon",
            duration_s=SCOPE_LINGER_S + 6.0,
            max_vehicles=12,
        )
        result = ExperimentRunner().run(scenario, "Greedy")
        delivered = result.stats.total_delivered
        assert delivered > 0
        # Everything delivered before (end - linger) has been retired; only
        # the trailing window may still hold dedup state.
        assert result.stats.dedup_entries < delivered

    def test_reachability_bounded_under_shadowing(self):
        """Shadowed channels occasionally deliver beyond the nominal range;
        such receptions must be consumed without counting, or the
        reachability ratio would exceed 1 (delivered against a frozen
        in-range denominator)."""
        from repro.harness.scenario import RadioConfig

        scenario = _small_scenario(
            workload="safety-beacon",
            radio=RadioConfig(propagation="shadowing", shadowing_sigma_db=8.0),
        )
        result = ExperimentRunner().run(scenario, "Greedy")
        assert result.summary["data_sent"] > 0
        assert 0.0 <= result.summary["delivery_ratio"] <= 1.0
        for flow in result.stats.flows.values():
            assert flow.delivered <= flow.offered


class TestEventBurstWorkload:
    def test_runs_end_to_end_with_scoped_accounting(self):
        scenario = _small_scenario(
            workload="event-burst",
            workload_params={"event_count": 3, "repeats": 2},
        )
        result = ExperimentRunner().run(scenario, "Greedy")
        assert result.summary["data_sent"] == 3 * 2
        assert 0.0 <= result.summary["delivery_ratio"] <= 1.0
        assert result.extra["events_triggered"] == 3.0

    def test_warning_repeats_never_originate_past_duration(self):
        """Short runs clamp the trigger near the end of the window; the
        repeat burst must cut off at duration_s like every other workload
        instead of originating fresh traffic in the drain period."""
        scenario = _small_scenario(
            duration_s=1.2,
            workload="event-burst",
            workload_params={"event_count": 1, "repeats": 3, "repeat_interval_s": 0.5},
        )
        result = ExperimentRunner().run(scenario, "Flooding")
        # Trigger at t=1.0: only the t=1.0 repeat fits inside 1.2 s.
        assert result.summary["data_sent"] == 1.0

    def test_zero_events_is_a_quiet_run(self):
        scenario = _small_scenario(workload="event-burst", workload_params={"event_count": 0})
        result = ExperimentRunner().run(scenario, "Greedy")
        assert result.summary["data_sent"] == 0.0

    def test_dedup_state_expires_on_the_scope_linger_bound(self):
        """Frozen scopes, the rebroadcast dedup and the stats dedup must be
        released SCOPE_LINGER_S after each burst instead of accumulating for
        the whole run (they used to leak until teardown)."""
        from repro.workloads.safety_beacon import SCOPE_LINGER_S

        scenario = _small_scenario(
            duration_s=6.0,
            workload="event-burst",
            workload_params={"event_count": 2, "repeats": 2},
        )
        runner = ExperimentRunner()
        built = runner.build(scenario)
        from repro.protocols.location import LocationService
        from repro.protocols.registry import make_protocol_factory
        from repro.workloads import workload_from_name

        factory = make_protocol_factory(
            "Flooding",
            location_service=LocationService(built.network),
            road_graph=built.road_graph,
        )
        built.network.attach_protocols(factory)
        workload = workload_from_name(
            scenario.workload, **dict(scenario.workload_params)
        )
        workload.build(scenario, built, built.sim.rng.stream("traffic"))
        built.network.start()
        built.sim.run(until=scenario.duration_s)
        delivered_before = built.stats.summary()["data_delivered"]
        assert built.stats.dedup_entries > 0
        # Past the last burst plus the linger bound every dedup table is
        # empty again, and no late counting happened.
        built.sim.run(until=scenario.duration_s + SCOPE_LINGER_S + 1.0)
        assert built.stats.dedup_entries == 0
        assert built.stats.summary()["data_delivered"] == delivered_before


class TestV2IWorkload:
    def test_request_response_sessions_run_over_rsus(self):
        scenario = _small_scenario(
            workload="v2i",
            rsu_spacing_m=500.0,
            workload_params={"session_count": 2, "requests_per_session": 4},
        )
        result = ExperimentRunner().run(scenario, "Greedy")
        assert result.workload == "v2i"
        assert result.summary["data_sent"] >= 8  # requests, plus any responses
        assert "v2i_round_trip_ratio" in result.extra
        request_flows = [f for fid, f in result.stats.flows.items() if fid % 2 == 1]
        assert request_flows and all(f.sent > 0 for f in request_flows)
        delivered_requests = sum(f.delivered for f in request_flows)
        response_flows = [f for fid, f in result.stats.flows.items() if fid % 2 == 0]
        # Every delivered request triggers exactly one response offer.
        assert sum(f.sent for f in response_flows) == delivered_requests

    def test_without_rsus_warns_and_sends_nothing(self):
        scenario = _small_scenario(workload="v2i")
        runner = ExperimentRunner()
        with pytest.warns(RuntimeWarning, match="road-side units"):
            result = runner.run(scenario, "Greedy")
        assert result.summary["data_sent"] == 0.0


class TestPoissonWorkload:
    def test_runs_and_is_reproducible_per_seed(self):
        scenario = _small_scenario(workload="poisson")
        first = ExperimentRunner().run(scenario, "Flooding")
        second = ExperimentRunner().run(scenario, "Flooding")
        assert first.summary == second.summary
        assert first.summary["data_sent"] > 0

    def test_different_seeds_draw_different_schedules(self):
        first = ExperimentRunner().run(_small_scenario(workload="poisson"), "Flooding")
        second = ExperimentRunner().run(
            _small_scenario(workload="poisson", seed=77), "Flooding"
        )
        assert first.summary != second.summary

    def test_nonpositive_parameters_rejected(self):
        from repro.workloads import PoissonWorkload

        with pytest.raises(ValueError, match="arrival_rate_per_s"):
            PoissonWorkload(arrival_rate_per_s=0.0)
        with pytest.raises(ValueError, match="mean_interval_s"):
            PoissonWorkload(mean_interval_s=-1.0)


class TestDegenerateStartGuards:
    """Every timed workload warns (instead of silently idling) when its
    start time leaves nothing to schedule -- the cbr guard's semantics,
    applied across the registry."""

    @pytest.mark.parametrize(
        "workload, params",
        [
            ("safety-beacon", {"start_time_s": 50.0}),
            ("poisson", {"start_time_s": 50.0}),
            ("v2i", {"start_time_s": 50.0}),
        ],
    )
    def test_start_past_duration_warns_and_sends_nothing(self, workload, params):
        scenario = _small_scenario(
            workload=workload, workload_params=params, rsu_spacing_m=500.0
        )
        with pytest.warns(RuntimeWarning):
            result = ExperimentRunner().run(scenario, "Flooding")
        assert result.summary["data_sent"] == 0.0
        assert not result.stats.flows
