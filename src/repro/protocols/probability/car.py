"""CAR: Connectivity-Aware Routing (Yang et al., paper ref. [29]).

CAR routes over *road segments* rather than individual links: each segment of
the road graph gets a connectivity probability derived from the vehicle
density on it (the original partitions the segment into car-length cells and
asks how likely consecutive vehicles are within radio range).  The source
selects the road path with the highest product of segment connectivities,
then packets are forwarded greedily from anchor to anchor (the intersections
of the chosen road path).

The per-segment density comes from a traffic-statistics estimator; the
original CAR obtains it from historical/statistical data, so the estimator
here counts vehicles near each segment through the simulation oracle -- see
DESIGN.md for the substitution note.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.stability import GammaHeadwayModel
from repro.core.taxonomy import Category, register_protocol
from repro.geometry import Vec2
from repro.protocols.location import LocationService
from repro.protocols.neighbors import NeighborEntry
from repro.protocols.probability.scored_forwarding import (
    ScoredForwardingConfig,
    ScoredForwardingProtocol,
)
from repro.roadnet.graph import RoadGraph
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import Packet


@dataclass
class CarConfig(ScoredForwardingConfig):
    """CAR parameters.

    Attributes:
        communication_range_m: Radio range used in the connectivity model.
        cell_length_m: Grid-cell length on a road segment ("the average
            length of a car, i.e., 5 meters").
        headway_shape: Shape parameter of the gamma headway distribution.
        anchor_reach_m: Distance at which an anchor counts as reached.
        density_refresh_interval_s: How often segment densities are re-estimated.
        assumed_density_veh_per_km: Density assumed when no measurement is
            available (also the value a miscalibrated deployment would use).
        use_measured_density: Estimate densities from the traffic oracle; when
            False the assumed density is used everywhere (the calibration-
            mismatch ablation of EXPERIMENTS.md).
    """

    communication_range_m: float = 250.0
    cell_length_m: float = 5.0
    headway_shape: float = 2.0
    anchor_reach_m: float = 150.0
    density_refresh_interval_s: float = 10.0
    assumed_density_veh_per_km: float = 15.0
    use_measured_density: bool = True


@register_protocol(
    "CAR",
    Category.PROBABILITY,
    "Connectivity-aware routing: pick the road path whose segments have the highest "
    "connectivity probability, then forward anchor to anchor.",
    paper_reference="[29], Sec. VII.B",
)
class CarProtocol(ScoredForwardingProtocol):
    """Connectivity-aware road-segment routing."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[CarConfig] = None,
        location_service: Optional[LocationService] = None,
        road_graph: Optional[RoadGraph] = None,
    ) -> None:
        super().__init__(
            node, network, config if config is not None else CarConfig(), location_service
        )
        self.road_graph = road_graph
        self._segment_connectivity: Dict[Tuple[str, str], float] = {}
        self._last_density_update = -math.inf

    # ----------------------------------------------------------- connectivity
    def segment_connectivity(self, a: str, b: str) -> float:
        """Connectivity probability of the road segment between two intersections."""
        self._refresh_densities()
        return self._segment_connectivity.get(
            (a, b), self._segment_connectivity.get((b, a), 0.5)
        )

    def _refresh_densities(self) -> None:
        cfg: CarConfig = self.config  # type: ignore[assignment]
        if self.road_graph is None:
            return
        if self.now - self._last_density_update < cfg.density_refresh_interval_s:
            return
        self._last_density_update = self.now
        for segment in self.road_graph.segments:
            density = self._segment_density(segment)
            mean_headway = 1000.0 / max(density, 0.1)
            headway = GammaHeadwayModel.from_mean_shape(mean_headway, cfg.headway_shape)
            probability = headway.segment_connectivity(
                segment.length, cfg.communication_range_m
            )
            key = self._segment_key(segment)
            if key is not None:
                self._segment_connectivity[key] = probability

    def _segment_key(self, segment) -> Optional[Tuple[str, str]]:
        if self.road_graph is None:
            return None
        for a, b, data in self.road_graph.graph.edges(data=True):
            if data.get("segment_id") == segment.segment_id:
                return (a, b)
        return None

    def _segment_density(self, segment) -> float:
        """Vehicles per km currently on (near) the segment."""
        cfg: CarConfig = self.config  # type: ignore[assignment]
        if not cfg.use_measured_density:
            return cfg.assumed_density_veh_per_km
        count = 0
        for node in self.network.vehicles:
            if segment.distance_to(node.position) <= 20.0:
                count += 1
        return max(0.1, count / max(segment.length / 1000.0, 1e-3))

    # ----------------------------------------------------------------- anchors
    def _anchor_path(self, destination_position: Vec2) -> List[Vec2]:
        """Intersection positions of the most-connected road path to the destination."""
        if self.road_graph is None:
            return []
        self._refresh_densities()
        start = self.road_graph.nearest_intersection(self.node.position)
        end = self.road_graph.nearest_intersection(destination_position)
        if start == end:
            return [self.road_graph.position_of(end)]
        edge_cost: Dict[Tuple[str, str], float] = {}
        for (a, b), probability in self._segment_connectivity.items():
            probability = min(max(probability, 1e-6), 1.0)
            edge_cost[(a, b)] = -math.log(probability) * 1000.0 + 1.0
        try:
            path = self.road_graph.best_path(start, end, edge_cost)
        except Exception:
            return []
        return [self.road_graph.position_of(name) for name in path]

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Attach the anchor path on origination, then forward along it."""
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if "car_anchors" not in packet.headers and self.road_graph is not None:
            destination_position = self.location.position_of(packet.destination)
            if destination_position is not None:
                anchors = self._anchor_path(destination_position)
                # Drop leading anchors that would route the packet away from
                # the destination (the nearest intersection can lie behind us).
                own_to_destination = self.node.position.distance_to(destination_position)
                while anchors and anchors[0].distance_to(destination_position) >= own_to_destination:
                    anchors.pop(0)
                packet.headers["car_anchors"] = [(p.x, p.y) for p in anchors]
                packet.headers["car_anchor_index"] = 0
        super().route_data(packet)

    # ---------------------------------------------------------------- scoring
    def _current_target(self, packet_headers: dict, destination_position: Vec2) -> Vec2:
        """The position the packet is currently heading toward (anchor or destination)."""
        cfg: CarConfig = self.config  # type: ignore[assignment]
        anchors = packet_headers.get("car_anchors")
        if not anchors:
            return destination_position
        index = int(packet_headers.get("car_anchor_index", 0))
        while index < len(anchors):
            anchor = Vec2(*anchors[index])
            if self.node.position.distance_to(anchor) > cfg.anchor_reach_m:
                packet_headers["car_anchor_index"] = index
                return anchor
            index += 1
        packet_headers["car_anchor_index"] = len(anchors)
        return destination_position

    def _forward(self, packet: Packet) -> None:
        """Greedy forwarding toward the current anchor of the chosen road path."""
        destination_position = self.location.position_of(packet.destination)
        if destination_position is None:
            self.stats.no_route_drop()
            return
        neighbors = self.beacons.neighbors()
        by_id = {entry.node_id: entry for entry in neighbors}
        if packet.destination in by_id:
            self.unicast(packet, packet.destination)
            return
        cfg: CarConfig = self.config  # type: ignore[assignment]
        target = self._current_target(packet.headers, destination_position)
        own_distance = self.node.position.distance_to(target)
        best_id: Optional[int] = None
        best_distance = own_distance
        for entry in neighbors:
            predicted = entry.predicted_position(self.now)
            if self.node.position.distance_to(predicted) > cfg.max_neighbor_distance_m:
                continue
            distance = predicted.distance_to(target)
            if distance < best_distance:
                best_distance = distance
                best_id = entry.node_id
        if best_id is None:
            self.stats.no_route_drop()
            return
        self.unicast(packet, best_id)

    def neighbor_score(
        self,
        entry: NeighborEntry,
        destination: int,
        destination_position: Vec2,
        progress_m: float,
    ) -> float:
        """Unused (CAR overrides ``_forward``), provided to satisfy the base class."""
        return progress_m
