"""The paper's analytical core.

This package implements the material the paper develops in its own right
(as opposed to surveying): the communication-link lifetime model of
Sec. IV.A.1 (Eqns. 1-4, Fig. 3), the direction-of-mobility decomposition of
Sec. IV.A.2 (Fig. 4), the probabilistic link-stability models of Sec. VII.A,
the composition of link metrics into path metrics, and the five-category
taxonomy of Fig. 1.
"""

from repro.core.direction import (
    DirectionGroup,
    direction_group,
    heading_alignment,
    same_direction,
    velocity_projections,
)
from repro.core.link_lifetime import (
    LinkLifetimePredictor,
    link_breakage_indicator,
    link_lifetime_1d,
    link_lifetime_2d,
    relative_motion_1d,
)
from repro.core.metrics import LinkMetrics, PAPER_TABLE_I, CategoryProfile
from repro.core.path_reliability import (
    most_reliable_path,
    path_lifetime,
    path_reliability,
    widest_lifetime_path,
)
from repro.core.stability import (
    GammaHeadwayModel,
    LinkStabilityModel,
    LogNormalHeadwayModel,
    NormalHeadwayModel,
    link_alive_probability,
)
from repro.core.taxonomy import (
    Category,
    ProtocolInfo,
    TaxonomyRegistry,
    global_registry,
    register_protocol,
)

__all__ = [
    "DirectionGroup",
    "direction_group",
    "heading_alignment",
    "same_direction",
    "velocity_projections",
    "LinkLifetimePredictor",
    "link_breakage_indicator",
    "link_lifetime_1d",
    "link_lifetime_2d",
    "relative_motion_1d",
    "LinkMetrics",
    "PAPER_TABLE_I",
    "CategoryProfile",
    "most_reliable_path",
    "path_lifetime",
    "path_reliability",
    "widest_lifetime_path",
    "GammaHeadwayModel",
    "LinkStabilityModel",
    "LogNormalHeadwayModel",
    "NormalHeadwayModel",
    "link_alive_probability",
    "Category",
    "ProtocolInfo",
    "TaxonomyRegistry",
    "global_registry",
    "register_protocol",
]
