"""REG-001 fixtures: registration gaps, preset naming, builder contracts."""

from repro.devtools import lint_sources


def _hits(report):
    return [(f.rule_id, f.path, f.line) for f in report.findings if f.rule_id == "REG-001"]


REGISTRY_SRC = (
    "PROTOCOL_FACTORIES = {\n"
    "    'Greedy': GreedyProtocol,\n"
    "}\n"
)


class TestProtocolRegistration:
    def test_unregistered_concrete_protocol_flagged(self):
        sources = {
            "protocols/registry.py": REGISTRY_SRC,
            "protocols/fancy.py": (
                "class GreedyProtocol:\n    pass\n\n\n"
                "class FancyProtocol:\n    pass\n"
            ),
        }
        report = lint_sources(sources, select=["REG-001"])
        assert _hits(report) == [("REG-001", "protocols/fancy.py", 5)]

    def test_intermediate_base_exempt(self):
        sources = {
            "protocols/registry.py": REGISTRY_SRC,
            "protocols/base.py": (
                "class ScoredForwardingProtocol:\n    pass\n\n\n"
                "class GreedyProtocol(ScoredForwardingProtocol):\n    pass\n"
            ),
        }
        report = lint_sources(sources, select=["REG-001"])
        assert report.clean

    def test_without_registry_module_no_protocol_check(self):
        # Linting a lone file must not demand the whole project's registry.
        sources = {"protocols/fancy.py": "class FancyProtocol:\n    pass\n"}
        report = lint_sources(sources, select=["REG-001"])
        assert report.clean


class TestWorkloadRegistration:
    def test_unregistered_workload_subclass_flagged(self):
        src = (
            "class Workload:\n    pass\n\n\n"
            "class BurstWorkload(Workload):\n    pass\n"
        )
        report = lint_sources({"workloads/burst.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "workloads/burst.py", 5)]

    def test_registered_workload_clean(self):
        src = (
            "class Workload:\n    pass\n\n\n"
            "@register_workload('burst')\n"
            "class BurstWorkload(Workload):\n    pass\n"
        )
        report = lint_sources({"workloads/burst.py": src}, select=["REG-001"])
        assert report.clean

    def test_registered_non_workload_flagged(self):
        src = "@register_workload('odd')\nclass OddThing:\n    pass\n"
        report = lint_sources({"workloads/odd.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "workloads/odd.py", 2)]

    def test_transitive_subclass_detected(self):
        src = (
            "class Workload:\n    pass\n\n\n"
            "class PeriodicWorkload(Workload):\n    pass\n\n\n"
            "class BeaconWorkload(PeriodicWorkload):\n    pass\n"
        )
        report = lint_sources({"workloads/beacon.py": src}, select=["REG-001"])
        # Only the leaf is flagged; PeriodicWorkload is an intermediate base.
        assert _hits(report) == [("REG-001", "workloads/beacon.py", 9)]


class TestMonitorRegistration:
    def test_unregistered_monitor_subclass_flagged(self):
        src = (
            "class Monitor:\n    pass\n\n\n"
            "class FancyMonitor(Monitor):\n    pass\n"
        )
        report = lint_sources({"monitors/fancy.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "monitors/fancy.py", 5)]

    def test_registered_monitor_clean(self):
        src = (
            "class Monitor:\n    pass\n\n\n"
            "@register_monitor('fancy')\n"
            "class FancyMonitor(Monitor):\n    pass\n"
        )
        report = lint_sources({"monitors/fancy.py": src}, select=["REG-001"])
        assert report.clean

    def test_registered_non_monitor_flagged(self):
        src = "@register_monitor('fancy')\nclass Fancy:\n    pass\n"
        report = lint_sources({"monitors/fancy.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "monitors/fancy.py", 2)]

    def test_monitor_outside_monitors_dir_exempt(self):
        src = (
            "class Monitor:\n    pass\n\n\n"
            "class HelperMonitor(Monitor):\n    pass\n"
        )
        report = lint_sources({"harness/helper.py": src}, select=["REG-001"])
        assert report.clean

    def test_monitor_init_with_undefaulted_param_flagged(self):
        src = (
            "class Monitor:\n    pass\n\n\n"
            "@register_monitor('fancy')\n"
            "class FancyMonitor(Monitor):\n"
            "    def __init__(self, bucket_s):\n        pass\n"
        )
        report = lint_sources({"monitors/fancy.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "monitors/fancy.py", 7)]

    def test_monitor_init_all_defaulted_clean(self):
        src = (
            "class Monitor:\n    pass\n\n\n"
            "@register_monitor('fancy')\n"
            "class FancyMonitor(Monitor):\n"
            "    def __init__(self, bucket_s=1.0, *, strict=False):\n        pass\n"
        )
        report = lint_sources({"monitors/fancy.py": src}, select=["REG-001"])
        assert report.clean


class TestPresetNamingAndBuilders:
    def test_non_kebab_preset_name_flagged(self):
        src = "register_workload_preset('Safety_Beacon', make, 'desc', 'beacon')\n"
        report = lint_sources({"workloads/presets.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "workloads/presets.py", 1)]

    def test_non_kebab_monitor_preset_flagged(self):
        src = "register_monitor_preset('Latency_Fine', make, 'desc')\n"
        report = lint_sources({"monitors/presets.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "monitors/presets.py", 1)]

    def test_kebab_preset_name_clean(self):
        src = "register_radio_preset('dsrc-urban-nlos', build, 'desc')\n"
        report = lint_sources({"radio/presets.py": src}, select=["REG-001"])
        assert report.clean

    def test_scenario_builder_wrong_arity_flagged(self):
        src = "@register_scenario('highway')\ndef build(scenario):\n    pass\n"
        report = lint_sources({"harness/scenarios.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "harness/scenarios.py", 2)]

    def test_scenario_builder_contract_clean(self):
        src = "@register_scenario('highway')\ndef build(scenario, rng):\n    pass\n"
        report = lint_sources({"harness/scenarios.py": src}, select=["REG-001"])
        assert report.clean

    def test_radio_builder_missing_rng_first_flagged(self):
        src = "@register_radio('disk')\ndef build(range_m, rng=None):\n    pass\n"
        report = lint_sources({"radio/registry.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "radio/registry.py", 2)]

    def test_radio_builder_undefaulted_extra_flagged(self):
        src = "@register_radio('disk')\ndef build(rng, range_m):\n    pass\n"
        report = lint_sources({"radio/registry.py": src}, select=["REG-001"])
        assert _hits(report) == [("REG-001", "radio/registry.py", 2)]

    def test_radio_builder_contract_clean(self):
        src = (
            "@register_radio('disk')\n"
            "def build(rng, range_m=250.0, *, tx_power_dbm=20.0):\n    pass\n"
        )
        report = lint_sources({"radio/registry.py": src}, select=["REG-001"])
        assert report.clean
