"""The shared wireless broadcast medium.

Every frame handed to the medium is propagated to all registered nodes: the
propagation model attenuates it, concurrent transmissions interfere with it,
and the reception model decides per receiver whether the frame arrives.
Unicast frames (``next_hop`` set) are filtered at the receiver, but they
still occupy the channel for everybody -- which is what makes flooding
expensive and is the physical basis of Table I's "overhead / broadcast
storm" column for connectivity-based routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.geometry import Vec2
from repro.radio.interference import NO_SIGNAL_DBM, combine_dbm
from repro.radio.mac import CsmaCaMac, MacConfig
from repro.radio.propagation import PropagationModel, UnitDiskPropagation
from repro.radio.reception import (
    ReceptionDecision,
    ReceptionModel,
    SnrThresholdReception,
)
from repro.sim.engine import Simulator
from repro.sim.packet import BROADCAST, Packet
from repro.sim.statistics import StatsCollector
from repro.sim.trace import EventTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.node import Node


@dataclass
class ActiveTransmission:
    """A frame currently (or recently) on the air."""

    sender_id: int
    sender_position: Vec2
    tx_power_dbm: float
    packet: Packet
    next_hop: int
    start: float
    end: float
    uid: int = field(default=0)


class WirelessMedium:
    """Shared channel connecting every registered node."""

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        reception: Optional[ReceptionModel] = None,
        stats: Optional[StatsCollector] = None,
        mac_config: Optional[MacConfig] = None,
        trace: Optional[EventTrace] = None,
        carrier_sense_margin_db: float = 10.0,
    ) -> None:
        self.sim = sim
        self.propagation = propagation if propagation is not None else UnitDiskPropagation()
        self.reception = reception if reception is not None else SnrThresholdReception()
        self.stats = stats if stats is not None else StatsCollector()
        self.mac_config = mac_config if mac_config is not None else MacConfig()
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        #: Carrier sensing is typically more sensitive than frame decoding.
        self.carrier_sense_threshold_dbm = (
            self.reception.sensitivity_dbm - carrier_sense_margin_db
        )
        self._nodes: Dict[int, "Node"] = {}
        self._transmissions: List[ActiveTransmission] = []
        self._tx_counter = 0
        self._range_cache: Dict[float, float] = {}

    # --------------------------------------------------------------- topology
    def register(self, node: "Node") -> None:
        """Attach a node to the channel and give it a MAC instance."""
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node
        node.mac = CsmaCaMac(
            node, self, self.mac_config, self.sim.rng.stream(f"mac-{node.node_id}")
        )

    def unregister(self, node_id: int) -> None:
        """Detach a node (e.g. a vehicle leaving the scenario)."""
        self._nodes.pop(node_id, None)

    @property
    def nodes(self) -> Dict[int, "Node"]:
        """All registered nodes, keyed by node id."""
        return self._nodes

    def nodes_in_range(self, node: "Node", range_m: float) -> List["Node"]:
        """Oracle: nodes whose current distance to ``node`` is below ``range_m``."""
        position = node.position
        return [
            other
            for other in self._nodes.values()
            if other.node_id != node.node_id
            and position.distance_to(other.position) <= range_m
        ]

    def nominal_range(self, tx_power_dbm: float = 20.0) -> float:
        """Distance at which the mean received power hits the sensitivity."""
        return self.propagation.nominal_range(tx_power_dbm, self.reception.sensitivity_dbm)

    # ---------------------------------------------------------------- channel
    def channel_busy(self, node: "Node") -> bool:
        """True when ``node`` senses an ongoing transmission above the CS threshold."""
        now = self.sim.now
        position = node.position
        for tx in self._transmissions:
            if tx.end <= now or tx.sender_id == node.node_id:
                continue
            rx_power = self.propagation.rx_power_dbm(
                tx.tx_power_dbm, tx.sender_position, position
            )
            if rx_power >= self.carrier_sense_threshold_dbm:
                return True
        return False

    def begin_transmission(
        self, sender: "Node", packet: Packet, next_hop: int, duration: float
    ) -> None:
        """Put a frame on the air; reception is evaluated when it ends."""
        now = self.sim.now
        self._tx_counter += 1
        transmission = ActiveTransmission(
            sender_id=sender.node_id,
            sender_position=sender.position,
            tx_power_dbm=sender.tx_power_dbm,
            packet=packet,
            next_hop=next_hop,
            start=now,
            end=now + duration,
            uid=self._tx_counter,
        )
        self._transmissions.append(transmission)
        self.stats.transmission(packet)
        self.trace.record(
            now,
            "tx",
            sender.node_id,
            ptype=packet.ptype,
            protocol=packet.protocol,
            next_hop=next_hop,
            uid=packet.uid,
        )
        self.sim.schedule(duration, self._complete, transmission)

    # ------------------------------------------------------------- completion
    def _complete(self, transmission: ActiveTransmission) -> None:
        now = self.sim.now
        self._prune(now)
        cutoff = self._reception_cutoff(transmission.tx_power_dbm)
        rng = self.sim.rng.stream("phy-reception")
        is_unicast = transmission.next_hop != BROADCAST
        unicast_delivered = False
        for node in list(self._nodes.values()):
            if node.node_id == transmission.sender_id:
                continue
            receiver_position = node.position
            distance = transmission.sender_position.distance_to(receiver_position)
            if distance > cutoff:
                continue
            rx_power = self.propagation.rx_power_dbm(
                transmission.tx_power_dbm, transmission.sender_position, receiver_position
            )
            if rx_power <= NO_SIGNAL_DBM:
                continue
            interference = self._interference_at(receiver_position, transmission, now)
            outcome = self.reception.decide(rx_power, interference, rng)
            intended = (
                transmission.next_hop == BROADCAST
                or transmission.next_hop == node.node_id
            )
            if outcome.ok:
                if intended:
                    if is_unicast:
                        unicast_delivered = True
                    self.trace.record(
                        now,
                        "rx",
                        node.node_id,
                        ptype=transmission.packet.ptype,
                        sender=transmission.sender_id,
                        uid=transmission.packet.uid,
                    )
                    node.deliver(transmission.packet.copy(), transmission.sender_id)
            elif outcome.decision is ReceptionDecision.COLLISION:
                if intended:
                    self.stats.collision()
                    self.trace.record(
                        now,
                        "collision",
                        node.node_id,
                        sender=transmission.sender_id,
                        uid=transmission.packet.uid,
                    )
            elif intended and transmission.next_hop == node.node_id:
                self.stats.weak_signal()
        if is_unicast:
            sender = self._nodes.get(transmission.sender_id)
            if sender is not None and sender.mac is not None:
                sender.mac.notify_unicast_result(
                    transmission.packet, transmission.next_hop, unicast_delivered
                )

    def _interference_at(
        self, position: Vec2, transmission: ActiveTransmission, now: float
    ) -> float:
        """Aggregate power of transmissions overlapping ``transmission`` at ``position``."""
        contributions: List[float] = []
        for other in self._transmissions:
            if other.uid == transmission.uid:
                continue
            if other.end <= transmission.start or other.start >= transmission.end:
                continue
            power = self.propagation.rx_power_dbm(
                other.tx_power_dbm, other.sender_position, position
            )
            if power > NO_SIGNAL_DBM:
                contributions.append(power)
        if not contributions:
            return NO_SIGNAL_DBM
        return combine_dbm(contributions)

    def _reception_cutoff(self, tx_power_dbm: float) -> float:
        """Distance beyond which reception is impossible (evaluation cutoff)."""
        cached = self._range_cache.get(tx_power_dbm)
        if cached is not None:
            return cached
        nominal = self.propagation.nominal_range(
            tx_power_dbm, self.reception.sensitivity_dbm
        )
        # Shadowed channels occasionally reach beyond the nominal range;
        # a 2x margin keeps that tail while bounding the per-frame work.
        cutoff = nominal * 2.0 if nominal > 0 else 0.0
        self._range_cache[tx_power_dbm] = cutoff
        return cutoff

    def _prune(self, now: float) -> None:
        """Drop transmissions that can no longer overlap anything in flight."""
        horizon = now - 1.0
        if len(self._transmissions) > 256:
            self._transmissions = [t for t in self._transmissions if t.end >= horizon]
        else:
            self._transmissions = [t for t in self._transmissions if t.end >= now - 1.0]
