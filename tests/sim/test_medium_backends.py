"""Spatial-backend equivalence and regression tests for the wireless medium.

The grid backend must be an invisible optimisation: with a deterministic
propagation model it has to reproduce the linear oracle's event trace
byte-for-byte.  The regression tests pin the satellite bugfixes that rode
along with the index: the prune horizon, rx-power threading and node
removal teardown.
"""

import pytest

from repro.geometry import Vec2
from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import highway_scenario
from repro.mobility.generator import TrafficDensity
from repro.protocols.location import LocationService
from repro.protocols.registry import make_protocol_factory
from repro.sim.packet import BROADCAST, make_data_packet
from tests.helpers import build_static_network


def normalized_records(trace):
    """Trace records with packet uids replaced by first-appearance indices.

    Packet uids come from a process-global counter, so two identical runs in
    the same process produce different absolute uids; the *order* in which
    fresh uids appear is the run's fingerprint.
    """
    uid_map = {}
    normalized = []
    for record in trace:
        detail = dict(record.detail)
        uid = detail.get("uid")
        if uid is not None:
            detail["uid"] = uid_map.setdefault(uid, len(uid_map))
        normalized.append((record.time, record.category, record.node_id, detail))
    return normalized


def run_seeded_scenario(spatial_backend, seed=11):
    """A 50-vehicle highway run with beacons and a few data flows, traced."""
    runner = ExperimentRunner(trace_enabled=True, trace_max_records=500_000)
    scenario = highway_scenario(
        TrafficDensity.NORMAL,
        max_vehicles=50,
        duration_s=8.0,
        drain_s=1.0,
        seed=seed,
        spatial_backend=spatial_backend,
    )
    built = runner.build(scenario)
    factory = make_protocol_factory(
        "Greedy",
        location_service=LocationService(built.network),
        road_graph=built.road_graph,
    )
    built.network.attach_protocols(factory)
    vehicles = built.vehicle_nodes
    for flow_id, (src, dst) in enumerate([(0, 40), (5, 30), (12, 22)], start=1):
        built.stats.register_flow(
            flow_id, vehicles[src].node_id, vehicles[dst].node_id
        )
        for k in range(3):
            built.sim.schedule_at(
                2.0 + k,
                vehicles[src].protocol.send_data,
                vehicles[dst].node_id,
            )
    built.network.start()
    built.sim.run(until=9.0)
    return built


class TestBackendEquivalence:
    def test_grid_matches_linear_trace_on_seeded_scenario(self):
        # Acceptance criterion of the grid index: same seed, same event
        # trace, record for record, on a 50-vehicle mobile scenario.
        grid = run_seeded_scenario("grid")
        linear = run_seeded_scenario("linear")
        grid_records = normalized_records(grid.trace)
        linear_records = normalized_records(linear.trace)
        assert len(grid_records) > 1000  # the run actually did something
        assert grid_records == linear_records
        assert grid.stats.summary() == linear.stats.summary()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            build_static_network([(0, 0)], spatial_backend="kdtree")


class TestNodesWithinBoundary:
    @pytest.mark.parametrize("backend", ["grid", "linear"])
    def test_node_exactly_at_radius_is_included(self, backend):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (250.0, 0), (250.0001, 0)], spatial_backend=backend
        )
        within = network.nodes_within(Vec2(0.0, 0.0), 250.0)
        assert {n.node_id for n in within} == {nodes[0].node_id, nodes[1].node_id}
        without_origin = network.nodes_within(
            Vec2(0.0, 0.0), 250.0, exclude=nodes[0].node_id
        )
        assert {n.node_id for n in without_origin} == {nodes[1].node_id}

    @pytest.mark.parametrize("backend", ["grid", "linear"])
    def test_neighbors_of_uses_inclusive_radius(self, backend):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (250.0, 0)], comm_range=250.0, spatial_backend=backend
        )
        neighbors = network.neighbors_of(nodes[0])
        assert {n.node_id for n in neighbors} == {nodes[1].node_id}


class RecordingProtocol:
    def __init__(self):
        self.received = []

    def start(self):  # pragma: no cover - unused
        pass

    def stop(self):  # pragma: no cover - unused
        pass

    def handle_packet(self, packet, sender_id):
        self.received.append((packet, sender_id))


class TestPruneHorizon:
    def test_long_frame_keeps_interference_history(self):
        # Regression: the old prune dropped transmissions older than a fixed
        # 1-second horizon, so a 3-second frame "forgot" an interferer that
        # overlapped its first half-second once any other frame completed
        # more than a second after the interferer ended -- and was then
        # received as if the channel had been clean.
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0), (150, 0), (10_000, 0), (10_100, 0)]
        )
        sender, receiver, interferer, far_a, far_b = nodes
        receiver.attach_protocol(RecordingProtocol())
        medium = network.medium
        long_frame = make_data_packet("test", sender.node_id, BROADCAST)
        burst = make_data_packet("test", interferer.node_id, BROADCAST)
        far_frame = make_data_packet("test", far_a.node_id, BROADCAST)
        sim.schedule(0.0, medium.begin_transmission, sender, long_frame, BROADCAST, 3.0)
        sim.schedule(0.0, medium.begin_transmission, interferer, burst, BROADCAST, 0.5)
        # An unrelated faraway completion at t=1.8 triggers pruning between
        # the interferer's end (0.5) and the long frame's end (3.0).
        sim.schedule(1.7, medium.begin_transmission, far_a, far_frame, BROADCAST, 0.1)
        sim.run(until=4.0)
        # The interferer overlapped the long frame, so the long frame must
        # collide at the receiver instead of being delivered cleanly.
        assert receiver.protocol.received == []
        assert stats.mac_collisions >= 1


class TestRxPowerThreading:
    def test_beacon_rx_power_populates_neighbor_table(self):
        # Regression: the medium computed rx_power and then threw it away,
        # leaving every NeighborEntry.rx_power_dbm at None.
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0)], protocol="Greedy"
        )
        network.start()
        sim.run(until=1.5)
        entry = nodes[1].protocol.beacons.table.get(nodes[0].node_id)
        assert entry is not None
        # Unit-disk propagation delivers at full transmit power in range.
        assert entry.rx_power_dbm == pytest.approx(nodes[0].tx_power_dbm)

    def test_delivered_packet_carries_rx_power(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (100, 0)])
        recorder = RecordingProtocol()
        nodes[1].attach_protocol(recorder)
        nodes[0].send(make_data_packet("p", nodes[0].node_id, BROADCAST), BROADCAST)
        sim.run(until=1.0)
        (packet, sender_id), = recorder.received
        assert sender_id == nodes[0].node_id
        assert packet.rx_power_dbm == pytest.approx(nodes[0].tx_power_dbm)


class TestRemoveNodeTeardown:
    def test_removed_node_stops_beaconing(self):
        # Regression: remove_node detached the node from the channel but its
        # BeaconService periodic task kept firing (and transmitting) forever.
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0)], protocol="Greedy", trace=True
        )
        network.start()
        sim.run(until=2.0)
        removed_id = nodes[0].node_id
        tx_before = len(network.trace.records("tx", node_id=removed_id))
        assert tx_before > 0  # it was beaconing while alive
        network.remove_node(removed_id)
        sim.run(until=12.0)
        tx_after = len(network.trace.records("tx", node_id=removed_id))
        # Protocol timers are cancelled and the MAC queue is flushed, so the
        # removed node goes completely silent.
        assert tx_after == tx_before
        assert nodes[0].protocol.beacons._task is None
        assert nodes[0].mac.queue_length == 0

    def test_survivors_keep_running_after_removal(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0), (200, 0)], protocol="Greedy", trace=True
        )
        network.start()
        sim.run(until=2.0)
        network.remove_node(nodes[0].node_id)
        survivor_before = len(network.trace.records("tx", node_id=nodes[1].node_id))
        sim.run(until=6.0)
        survivor_after = len(network.trace.records("tx", node_id=nodes[1].node_id))
        assert survivor_after > survivor_before
        assert not network.has_node(nodes[0].node_id)


class TestRadioStackWiring:
    """The medium accepts an assembled RadioStack and wires its components."""

    def _stack(self):
        from repro.radio.interference import NoInterference
        from repro.radio.mac import MacConfig
        from repro.radio.propagation import UnitDiskPropagation
        from repro.radio.reception import SnrThresholdReception
        from repro.radio.stack import RadioStack

        return RadioStack(
            name="custom",
            propagation=UnitDiskPropagation(100.0),
            reception=SnrThresholdReception(noise_floor_dbm=-90.0),
            interference=NoInterference(),
            mac=MacConfig(cw_min=3),
            tx_power_dbm=17.0,
        )

    def test_stack_components_are_used(self):
        from repro.geometry import Vec2
        from repro.sim.engine import Simulator
        from repro.sim.medium import WirelessMedium
        from repro.sim.node import Node, StaticPositionProvider

        stack = self._stack()
        medium = WirelessMedium(Simulator(seed=1), stack=stack)
        assert medium.stack is stack
        assert medium.propagation is stack.propagation
        assert medium.reception is stack.reception
        assert medium.interference is stack.interference
        assert medium.mac_config is stack.mac
        node = Node(1, StaticPositionProvider(Vec2(0.0, 0.0)))
        medium.register(node)
        # The stack's MAC parameters reach every node's MAC instance.
        assert node.mac.config is stack.mac

    def test_explicit_arguments_override_stack_components(self):
        from repro.radio.propagation import UnitDiskPropagation
        from repro.sim.engine import Simulator
        from repro.sim.medium import WirelessMedium

        override = UnitDiskPropagation(400.0)
        original = self._stack()
        original_propagation = original.propagation
        medium = WirelessMedium(Simulator(seed=1), stack=original, propagation=override)
        assert medium.propagation is override
        # The other components still come from the stack.
        assert medium.interference is medium.stack.interference
        # The caller's stack object is not mutated by the override: it may
        # be shared with reporting or a later medium.
        assert original.propagation is original_propagation

    def test_default_medium_builds_the_classic_stack(self):
        from repro.radio.interference import AdditiveInterference
        from repro.radio.propagation import UnitDiskPropagation
        from repro.radio.reception import SnrThresholdReception
        from repro.sim.engine import Simulator
        from repro.sim.medium import WirelessMedium

        medium = WirelessMedium(Simulator(seed=1))
        assert isinstance(medium.propagation, UnitDiskPropagation)
        assert isinstance(medium.reception, SnrThresholdReception)
        assert isinstance(medium.interference, AdditiveInterference)

    def test_no_interference_stack_never_collides(self):
        """A hidden-terminal collision under the additive model must vanish
        under NoInterference (same seed, same schedule -- only the
        interference model differs)."""
        from repro.radio.interference import AdditiveInterference, NoInterference
        from repro.radio.stack import RadioStack
        from repro.geometry import Vec2
        from repro.sim.engine import Simulator
        from repro.sim.medium import WirelessMedium
        from repro.sim.network import Network
        from repro.sim.node import StaticPositionProvider
        from repro.sim.packet import make_control_packet
        from repro.sim.statistics import StatsCollector

        def hidden_terminal(interference):
            sim = Simulator(seed=9)
            stats = StatsCollector()
            medium = WirelessMedium(
                sim, stack=RadioStack(interference=interference), stats=stats
            )
            network = Network(sim, medium=medium, stats=stats)
            # Two senders 400 m apart cannot carrier-sense each other (250 m
            # disk); the victim in the middle hears both simultaneously.
            left = network.add_vehicle(StaticPositionProvider(Vec2(0.0, 0.0)))
            network.add_vehicle(StaticPositionProvider(Vec2(200.0, 0.0)))
            right = network.add_vehicle(StaticPositionProvider(Vec2(400.0, 0.0)))
            for sender in (left, right):
                packet = make_control_packet(
                    "storm", "HELLO", sender.node_id, BROADCAST, size_bytes=1500
                )
                sim.schedule_at(1.0, sender.send, packet, BROADCAST)
            sim.run(until=3.0)
            return stats.mac_collisions

        assert hidden_terminal(AdditiveInterference()) > 0
        assert hidden_terminal(NoInterference()) == 0
