"""Random-waypoint mobility.

The classic MANET mobility model.  It is included as the baseline the paper
contrasts VANET mobility against (Sec. IV.A: conventional MANET nodes move
slowly and without road constraints), and it is useful for testing protocols
in an unconstrained setting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geometry import Vec2
from repro.mobility.vehicle import VehicleState


@dataclass
class RandomWaypointConfig:
    """Area and speed parameters.

    Attributes:
        width_m: Width of the rectangular area.
        height_m: Height of the rectangular area.
        min_speed_mps: Minimum speed drawn for each leg.
        max_speed_mps: Maximum speed drawn for each leg.
        pause_time_s: Pause duration at each waypoint.
    """

    width_m: float = 1000.0
    height_m: float = 1000.0
    min_speed_mps: float = 1.0
    max_speed_mps: float = 20.0
    pause_time_s: float = 0.0


class RandomWaypointMobility:
    """Nodes move between uniformly random waypoints at uniformly random speeds."""

    def __init__(
        self,
        config: Optional[RandomWaypointConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config if config is not None else RandomWaypointConfig()
        self._rng = rng if rng is not None else random.Random(0)
        self.vehicles: List[VehicleState] = []
        self._targets: Dict[int, Vec2] = {}
        self._pause_until: Dict[int, float] = {}
        self._next_vid = 0
        self.time = 0.0

    def add_vehicle(self, position: Optional[Vec2] = None) -> VehicleState:
        """Add a node at ``position`` (random position by default)."""
        if position is None:
            position = self._random_point()
        vehicle = VehicleState(vid=self._next_vid, position=position, lane=-1)
        self._next_vid += 1
        self.vehicles.append(vehicle)
        self._assign_new_leg(vehicle)
        return vehicle

    def step(self, dt: float, now: float = 0.0) -> None:
        """Advance every node by ``dt`` seconds."""
        self.time = now
        for vehicle in self.vehicles:
            if self._pause_until.get(vehicle.vid, 0.0) > now:
                vehicle.speed = 0.0
                continue
            target = self._targets[vehicle.vid]
            to_target = target - vehicle.position
            distance = to_target.norm()
            travel = vehicle.speed * dt
            if travel >= distance:
                vehicle.position = target
                if self.config.pause_time_s > 0:
                    self._pause_until[vehicle.vid] = now + self.config.pause_time_s
                self._assign_new_leg(vehicle)
            else:
                direction = to_target.normalized()
                vehicle.position = vehicle.position + direction * travel
                vehicle.heading = direction.angle()

    def _assign_new_leg(self, vehicle: VehicleState) -> None:
        target = self._random_point()
        self._targets[vehicle.vid] = target
        vehicle.speed = self._rng.uniform(
            self.config.min_speed_mps, self.config.max_speed_mps
        )
        vehicle.desired_speed = vehicle.speed
        direction = (target - vehicle.position).normalized()
        if direction.norm_sq() > 0:
            vehicle.heading = direction.angle()

    def _random_point(self) -> Vec2:
        return Vec2(
            self._rng.uniform(0.0, self.config.width_m),
            self._rng.uniform(0.0, self.config.height_m),
        )
