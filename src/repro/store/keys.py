"""Content-addressed cell keys for the experiment store.

A sweep cell is a pure function of its inputs: the scenario (which carries
the workload, radio, spatial backend and seed), the protocol and its
configuration, and the simulator code itself.  :func:`cell_key` digests all
of them into one stable hex key, so that

* a store lookup answers "has this exact experiment already run?" without
  any naming convention or coordination,
* re-running a sweep after a code change re-executes every cell whose
  inputs (including the code digest) changed -- and nothing else, and
* :func:`shard_of` partitions any cell matrix over ``N`` machines by key
  hash alone: every machine computes the same partition independently,
  with no coordinator.

The scenario fingerprint is a canonical JSON rendering of the dataclass
tree (:func:`canonical`): dictionaries are key-sorted, enums collapse to
their values, floats keep their exact ``repr`` round-trip -- so the key is
independent of dict insertion order and process history, and identical
across machines and Python processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from pathlib import Path
from typing import Optional, Tuple, Union

#: Hex digits of the full sha256 used as the cell key.  64 bits of prefix
#: feed :func:`shard_of`; the full digest keeps collisions out of reach of
#: any realistic matrix size.
KEY_HEX_DIGITS = 64
_SHARD_PREFIX_DIGITS = 16

#: Process-wide cache of the default code digest (the tree cannot change
#: under a running sweep; re-hashing ~100 files per cell would be waste).
_CODE_VERSION_CACHE: Optional[str] = None


def canonical(value: object) -> object:
    """Reduce ``value`` to a JSON-serialisable canonical form.

    Dataclasses become tagged dicts (the class name disambiguates two
    config types that happen to share field names), enums collapse to
    their values, mappings are key-sorted, and tuples/lists unify.  Any
    unknown leaf falls back to ``repr`` -- stable for the types scenarios
    actually carry.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, Enum):
        return canonical(value.value)
    if isinstance(value, dict):
        return {
            str(key): canonical(item)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def canonical_json(value: object) -> str:
    """The canonical form serialised to a deterministic JSON string."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


def code_version(root: Optional[Union[str, Path]] = None) -> str:
    """Digest of the simulator source tree (the ``repro`` package).

    Hashes every ``*.py`` file under ``root`` (default: the installed
    ``repro`` package directory) in sorted relative-path order -- path and
    content both -- so any code change, anywhere in the package, changes
    the digest and therefore every cell key.  The default digest is cached
    per process.
    """
    global _CODE_VERSION_CACHE
    if root is None and _CODE_VERSION_CACHE is not None:
        return _CODE_VERSION_CACHE
    if root is None:
        import repro

        base = Path(repro.__file__).resolve().parent
    else:
        base = Path(root).resolve()
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        digest.update(path.relative_to(base).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    result = digest.hexdigest()[:16]
    if root is None:
        _CODE_VERSION_CACHE = result
    return result


def cell_key(
    scenario: object,
    protocol: str,
    protocol_config: object = None,
    code: Optional[str] = None,
) -> str:
    """Stable content key of one sweep cell.

    Digests (scenario incl. workload/radio/backend/seed, protocol,
    protocol config, code version) into a sha256 hex string.  ``code``
    defaults to :func:`code_version` of the installed package.
    """
    payload = {
        "scenario": canonical(scenario),
        "protocol": protocol,
        "protocol_config": canonical(protocol_config),
        "code_version": code if code is not None else code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def shard_of(key: str, shard_count: int) -> int:
    """0-based shard index of ``key`` under an ``N``-way partition.

    Pure function of the key's leading 64 bits, so any number of machines
    agree on the partition without talking to each other.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    return int(key[:_SHARD_PREFIX_DIGITS], 16) % shard_count


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse a ``"K/N"`` shard spec into ``(index, count)`` (1-based K).

    ``"2/3"`` means: run the cells whose :func:`shard_of` is 1, out of a
    3-way partition.
    """
    parts = spec.split("/")
    if len(parts) != 2:
        raise ValueError(f"shard spec must look like K/N (e.g. 2/3), got {spec!r}")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"shard spec must be two integers K/N (e.g. 2/3), got {spec!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard spec {spec!r} out of range: need 1 <= K <= N with N >= 1"
        )
    return index, count
