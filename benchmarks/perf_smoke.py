"""CI perf-smoke: a scaled-down beacon storm plus a results-schema check.

Two guarantees, cheap enough for every pull request:

1. **Backend equality still holds on the storm path.**  Runs the Part B
   beacon storm from :mod:`benchmarks.bench_medium_scaling` at N=800
   (same congested density, ~1/8 the population) through the grid and
   vectorized backends and asserts byte-identical transmission and
   collision counts.  This is the delivery-path invariant the full
   benchmark pins at N=6400; the smoke cell catches regressions without
   the multi-minute reference run.

2. **The committed results file keeps its schema.**  Docs and CI quote
   ``BENCH_medium_scaling.json`` by key; a benchmark refactor that
   renames or drops fields would silently break them.  The check diffs
   the committed payload against the schema this script expects.

3. **The no-monitors storm cell has not regressed.**  The monitor
   event-tap seam threads a ``tap`` attribute through every hot counter
   path in :class:`repro.sim.statistics.StatsCollector`; an untapped run
   must pay only the ``is not None`` check.  Each backend's best-of-N
   ``frames_per_s`` is compared against the committed ``storm_smoke``
   baseline rows and must stay within ``REPRO_PERF_TOLERANCE`` (default
   3%).  Refresh the baseline on quiet hardware with ``--record-baseline``.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_smoke
"""

from __future__ import annotations

import json
import os
import sys

from benchmarks.bench_medium_scaling import (
    RESULTS_JSON,
    STORM_SCALE_VEHICLES,
    run_storm_cell,
)

SMOKE_VEHICLES = 800

#: Allowed fractional slowdown vs. the committed storm_smoke baseline.
#: CI runners are noisier than the baseline's hardware; override with
#: e.g. ``REPRO_PERF_TOLERANCE=0.5`` there.
PERF_TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.03"))

#: Timing runs per backend; the fastest one is the measurement (matches
#: how the committed baseline rows were recorded).
PERF_BEST_OF = 3

#: Fields every storm row must carry (the JSON contract docs quote from).
STORM_ROW_FIELDS = {
    "vehicles",
    "backend",
    "radio",
    "beacon_hz",
    "wall_s",
    "frames",
    "frames_per_s",
    "transmissions",
    "collisions",
}

#: Fields every Part A scaling row must carry.
SCALING_ROW_FIELDS = {
    "vehicles",
    "radio",
    "frames",
    "linear_s",
    "grid_s",
    "vectorized_s",
    "linear_frames_per_s",
    "grid_frames_per_s",
    "vectorized_frames_per_s",
    "grid_speedup",
    "vectorized_speedup",
    "tx_linear",
    "tx_grid",
    "tx_vectorized",
}


def _best_of(backend: str, vehicles: int, repeats: int = PERF_BEST_OF) -> dict:
    """Fastest of ``repeats`` storm cells: minimum-wall-clock row wins."""
    best = None
    for _ in range(max(1, repeats)):
        row = run_storm_cell(backend, vehicles)
        if best is None or row["wall_s"] < best["wall_s"]:
            best = row
    return best


def smoke_storm(vehicles: int = SMOKE_VEHICLES) -> dict:
    """Grid vs. vectorized at smoke scale; returns both rows on success."""
    grid = _best_of("grid", vehicles)
    vectorized = _best_of("vectorized", vehicles)
    assert grid["transmissions"] == vectorized["transmissions"], (
        grid["transmissions"],
        vectorized["transmissions"],
    )
    assert grid["collisions"] == vectorized["collisions"], (
        grid["collisions"],
        vectorized["collisions"],
    )
    assert grid["frames"] > 0
    return {"grid": grid, "vectorized": vectorized}


def guard_regression(rows: dict, payload: dict, tolerance: float = None) -> list:
    """Assert each backend's frames_per_s is within tolerance of baseline.

    Returns one report line per backend on success; raises AssertionError
    naming the backend, the measured and baseline rates, and the floor on
    the first regression.  The untapped storm cell is the guarded path --
    monitors are never attached here, so any slowdown is seam overhead.
    """
    if tolerance is None:
        tolerance = PERF_TOLERANCE
    baseline = payload["storm_smoke"]
    reports = []
    for backend in ("grid", "vectorized"):
        measured = rows[backend]["frames_per_s"]
        reference = baseline[backend]["frames_per_s"]
        floor = reference * (1.0 - tolerance)
        assert measured >= floor, (
            f"{backend} storm cell regressed: {measured:.1f} frames/s vs "
            f"baseline {reference:.1f} (floor {floor:.1f} at "
            f"tolerance {tolerance:.0%})"
        )
        reports.append(
            f"{backend}: {measured:.1f} frames/s "
            f"(baseline {reference:.1f}, floor {floor:.1f})"
        )
    return reports


def record_baseline(rows: dict) -> None:
    """Write the measured rows into RESULTS_JSON as the new baseline."""
    payload = json.loads(RESULTS_JSON.read_text())
    payload["storm_smoke"] = {
        "grid": _baseline_row(rows["grid"]),
        "vectorized": _baseline_row(rows["vectorized"]),
        "best_of": PERF_BEST_OF,
    }
    RESULTS_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _baseline_row(row: dict) -> dict:
    row = dict(row)
    row["wall_s"] = round(row["wall_s"], 4)
    row["frames_per_s"] = round(row["frames_per_s"], 1)
    return row


def check_results_schema(path=RESULTS_JSON) -> dict:
    """Validate the committed BENCH_medium_scaling.json against the contract."""
    payload = json.loads(path.read_text())
    missing = {
        "benchmark",
        "generated_by",
        "scaling",
        "storm",
        "storm_scale",
        "storm_smoke",
    } - set(payload)
    assert not missing, f"results file missing top-level keys: {sorted(missing)}"
    assert payload["benchmark"] == "medium_scaling"

    assert payload["scaling"], "scaling section is empty"
    for row in payload["scaling"]:
        gap = SCALING_ROW_FIELDS - set(row)
        assert not gap, f"scaling row missing fields: {sorted(gap)}"

    storm = payload["storm"]
    for backend in ("grid", "vectorized"):
        assert backend in storm, f"storm section missing {backend!r} row"
        gap = STORM_ROW_FIELDS - set(storm[backend])
        assert not gap, f"storm {backend} row missing fields: {sorted(gap)}"
    assert "speedup" in storm
    # The recorded headline cell must itself satisfy backend equality.
    assert (
        storm["grid"]["transmissions"] == storm["vectorized"]["transmissions"]
    ), "recorded storm rows disagree on transmissions"
    assert (
        storm["grid"]["collisions"] == storm["vectorized"]["collisions"]
    ), "recorded storm rows disagree on collisions"
    if "linear" in storm:
        assert (
            storm["linear"]["transmissions"] == storm["vectorized"]["transmissions"]
        ), "recorded linear storm row disagrees on transmissions"
        assert (
            storm["linear"]["collisions"] == storm["vectorized"]["collisions"]
        ), "recorded linear storm row disagrees on collisions"

    scale_rows = payload["storm_scale"]
    assert scale_rows, "storm_scale section is empty"
    for row in scale_rows:
        gap = STORM_ROW_FIELDS - set(row)
        assert not gap, f"storm_scale row missing fields: {sorted(gap)}"
    assert any(
        row["vehicles"] == STORM_SCALE_VEHICLES for row in scale_rows
    ), f"no storm_scale row at N={STORM_SCALE_VEHICLES}"

    smoke = payload["storm_smoke"]
    for backend in ("grid", "vectorized"):
        assert backend in smoke, f"storm_smoke section missing {backend!r} row"
        gap = STORM_ROW_FIELDS - set(smoke[backend])
        assert not gap, f"storm_smoke {backend} row missing fields: {sorted(gap)}"
        assert smoke[backend]["vehicles"] == SMOKE_VEHICLES, (
            "storm_smoke baseline recorded at a different population than "
            f"the smoke cell measures ({smoke[backend]['vehicles']} vs "
            f"{SMOKE_VEHICLES})"
        )
    return payload


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    rows = smoke_storm()
    grid, vectorized = rows["grid"], rows["vectorized"]
    print(
        f"storm smoke N={SMOKE_VEHICLES} (best of {PERF_BEST_OF}): "
        f"grid {grid['wall_s']:.2f}s / vectorized {vectorized['wall_s']:.2f}s, "
        f"tx={grid['transmissions']} collisions={grid['collisions']} "
        f"(byte-identical)"
    )
    if "--record-baseline" in argv:
        record_baseline(rows)
        print(f"{RESULTS_JSON.name} storm_smoke baseline updated")
        check_results_schema()
        return 0
    payload = check_results_schema()
    print(f"{RESULTS_JSON.name} schema OK")
    for line in guard_regression(rows, payload):
        print(f"perf guard {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
