"""Tests for the event queue and the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while queue:
            queue.pop().fire()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self):
        queue = EventQueue()
        order = []
        for label in "abc":
            queue.push(1.0, lambda l=label: order.append(l))
        while queue:
            queue.pop().fire()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties_before_sequence(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("low"), priority=1)
        queue.push(1.0, lambda: order.append("high"), priority=0)
        while queue:
            queue.pop().fire()
        assert order == ["high", "low"]

    def test_cancelled_event_does_not_fire(self):
        # `pop` now reclaims cancelled events the way `peek_time` always
        # did: a queue holding only dead events is effectively empty.
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        event.cancel()
        queue.pop().fire()
        assert fired == [2]
        with pytest.raises(IndexError):
            queue.pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == pytest.approx(2.0)


class TestSimulator:
    def test_schedule_and_run_advances_clock(self, sim):
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(0.5, lambda: times.append(sim.now))
        end = sim.run()
        assert times == [pytest.approx(0.5), pytest.approx(1.5)]
        assert end == pytest.approx(1.5)

    def test_run_until_leaves_later_events_pending(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)
        sim.run(until=10.0)
        assert fired == [1, 2]

    def test_cannot_schedule_in_the_past(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_stop_halts_processing(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_nested_scheduling_from_callback(self, sim):
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == pytest.approx(2.0)

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_reset_clears_queue_and_clock(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0

    def test_max_events_limit(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3


class TestPeriodicTask:
    def test_periodic_fires_repeatedly(self, sim):
        count = []
        sim.schedule_periodic(1.0, lambda: count.append(sim.now))
        sim.run(until=5.5)
        assert len(count) == 5

    def test_periodic_cancel_stops_firing(self, sim):
        count = []
        task = sim.schedule_periodic(1.0, lambda: count.append(1))
        sim.schedule(2.5, task.cancel)
        sim.run(until=10.0)
        assert len(count) == 2

    def test_periodic_with_jitter_stays_roughly_periodic(self, sim):
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now), jitter=0.2)
        sim.run(until=10.0)
        assert 7 <= len(times) <= 10
        # Centred jitter: each period is interval +/- jitter/2.
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(0.9 - 1e-9 <= delta <= 1.1 + 1e-9 for delta in deltas)

    def test_periodic_jitter_mean_period_is_interval(self, sim):
        # Regression: uniform(0, jitter) on every re-schedule used to make
        # the mean period `interval + jitter/2` (~10% slow at jitter=0.2*I).
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now), jitter=0.4)
        sim.run(until=2000.0)
        deltas = [b - a for a, b in zip(times, times[1:])]
        mean_period = sum(deltas) / len(deltas)
        assert mean_period == pytest.approx(1.0, abs=0.02)

    def test_periodic_jitter_never_schedules_in_the_past(self, sim):
        # A jitter wider than twice the interval can push the centred draw
        # negative; the delay must be clamped at zero instead of raising.
        times = []
        sim.schedule_periodic(0.1, lambda: times.append(sim.now), jitter=0.5)
        sim.run(until=20.0)
        assert times == sorted(times)
        assert len(times) > 0

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)
