"""Traffic generators: populate mobility models at controlled densities.

Table I of the paper repeatedly conditions its pros/cons on the traffic
regime ("not working in sparse/congested traffic", "only working for a
certain traffic").  The generators here make that axis explicit: the same
scenario can be instantiated as SPARSE, NORMAL or CONGESTED and handed to the
benchmarks.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Optional

from repro.geometry import Vec2
from repro.mobility.graph_walk import (
    GraphWalkConfig,
    GraphWalkMobility,
    populate_graph_walk,
)
from repro.mobility.highway import HighwayConfig, HighwayMobility
from repro.mobility.manhattan import ManhattanConfig, ManhattanMobility
from repro.mobility.random_waypoint import RandomWaypointConfig, RandomWaypointMobility
from repro.roadnet.city import CityConfig, build_city_graph
from repro.roadnet.graph import RoadGraph


class TrafficDensity(Enum):
    """Traffic regimes used throughout the survey's qualitative comparison."""

    SPARSE = "sparse"
    NORMAL = "normal"
    CONGESTED = "congested"

    @property
    def vehicles_per_km_per_lane(self) -> float:
        """Linear density used for highway scenarios."""
        return {
            TrafficDensity.SPARSE: 3.0,
            TrafficDensity.NORMAL: 15.0,
            TrafficDensity.CONGESTED: 45.0,
        }[self]

    @property
    def vehicles_per_km_of_street(self) -> float:
        """Linear density used for Manhattan scenarios."""
        return {
            TrafficDensity.SPARSE: 2.0,
            TrafficDensity.NORMAL: 8.0,
            TrafficDensity.CONGESTED: 25.0,
        }[self]

    @property
    def mean_speed_factor(self) -> float:
        """Congested traffic moves slower; sparse traffic at free-flow speed."""
        return {
            TrafficDensity.SPARSE: 1.0,
            TrafficDensity.NORMAL: 0.9,
            TrafficDensity.CONGESTED: 0.5,
        }[self]


def make_highway_scenario(
    density: TrafficDensity = TrafficDensity.NORMAL,
    config: Optional[HighwayConfig] = None,
    seed: int = 0,
    max_vehicles: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> HighwayMobility:
    """Create a highway populated at the requested density.

    Vehicles are spread uniformly (with jitter) over every lane; desired
    speeds follow the configured normal distribution scaled by the density's
    speed factor (congestion slows everybody down).  ``rng`` (when given)
    supersedes ``seed``; the harness passes the simulator's ``"mobility"``
    stream so every scenario kind draws from the same seeding discipline.
    """
    config = config if config is not None else HighwayConfig()
    rng = rng if rng is not None else random.Random(seed)
    highway = HighwayMobility(config=config, rng=rng)
    per_lane = int(round(density.vehicles_per_km_per_lane * config.length_m / 1000.0))
    per_lane = max(1, per_lane)
    speed_mean = config.speed_limit_mps * density.mean_speed_factor
    # Build the placement plan first and interleave across lanes, so that a
    # population cap keeps the lanes (and both travel directions) balanced
    # instead of truncating to the first carriageway only.
    placements = []
    for lane in range(config.total_lanes):
        spacing = config.length_m / per_lane
        for index in range(per_lane):
            jitter = rng.uniform(-0.3, 0.3) * spacing
            progress = (index * spacing + jitter) % config.length_m
            placements.append((index, lane, progress))
    placements.sort(key=lambda item: (item[0], item[1]))
    total = 0
    for _, lane, progress in placements:
        if max_vehicles is not None and total >= max_vehicles:
            break
        desired = max(
            config.min_desired_speed_mps,
            rng.gauss(speed_mean, config.speed_stddev_mps),
        )
        highway.add_vehicle(lane, progress, desired_speed=desired)
        total += 1
    return highway


def make_manhattan_scenario(
    density: TrafficDensity = TrafficDensity.NORMAL,
    config: Optional[ManhattanConfig] = None,
    seed: int = 0,
    max_vehicles: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> ManhattanMobility:
    """Create a Manhattan grid populated at the requested density."""
    config = config if config is not None else ManhattanConfig()
    rng = rng if rng is not None else random.Random(seed)
    mobility = ManhattanMobility(config=config, rng=rng)
    # Total street length: (blocks_x + 1) vertical streets of height H plus
    # (blocks_y + 1) horizontal streets of width W.
    street_km = (
        (config.blocks_x + 1) * config.height_m + (config.blocks_y + 1) * config.width_m
    ) / 1000.0
    count = max(2, int(round(density.vehicles_per_km_of_street * street_km)))
    if max_vehicles is not None:
        count = min(count, max_vehicles)
    for _ in range(count):
        # Start at a random point on a random street (not only intersections).
        if rng.random() < 0.5:
            x = rng.randint(0, config.blocks_x) * config.block_size_m
            y = rng.uniform(0.0, config.height_m)
        else:
            x = rng.uniform(0.0, config.width_m)
            y = rng.randint(0, config.blocks_y) * config.block_size_m
        mobility.add_vehicle(position=Vec2(x, y))
    return mobility


def make_city_scenario(
    density: TrafficDensity = TrafficDensity.NORMAL,
    config: Optional[CityConfig] = None,
    seed: int = 0,
    max_vehicles: Optional[int] = None,
    rng: Optional[random.Random] = None,
    graph: Optional[RoadGraph] = None,
) -> GraphWalkMobility:
    """Create a synthetic arterial+grid city populated at the requested density.

    The vehicle count follows the density's per-street-km figure over the
    city's total street length; congestion additionally scales every speed
    limit down through :attr:`GraphWalkConfig.speed_factor`.  ``graph`` lets
    the caller reuse an already-built road graph (the harness builds it once
    and shares it with the routing protocols).
    """
    config = config if config is not None else CityConfig()
    rng = rng if rng is not None else random.Random(seed)
    graph = graph if graph is not None else build_city_graph(config)
    mobility = GraphWalkMobility(
        graph,
        config=GraphWalkConfig(speed_factor=density.mean_speed_factor),
        rng=rng,
    )
    count = max(2, int(round(density.vehicles_per_km_of_street * config.total_street_km())))
    return populate_graph_walk(mobility, count, max_vehicles=max_vehicles)


def make_random_waypoint_scenario(
    count: int = 50,
    config: Optional[RandomWaypointConfig] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> RandomWaypointMobility:
    """Create a random-waypoint field with ``count`` nodes."""
    config = config if config is not None else RandomWaypointConfig()
    rng = rng if rng is not None else random.Random(seed)
    mobility = RandomWaypointMobility(config=config, rng=rng)
    for _ in range(count):
        mobility.add_vehicle()
    return mobility
