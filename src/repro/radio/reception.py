"""Reception models: decide whether a frame is successfully received."""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.radio.interference import NO_SIGNAL_DBM, combine_dbm, dbm_to_mw, mw_to_dbm

#: Thermal noise floor for a 10 MHz DSRC channel plus a typical noise figure.
DEFAULT_NOISE_FLOOR_DBM = -99.0

#: Typical receiver sensitivity for IEEE 802.11p at low data rates.
DEFAULT_SENSITIVITY_DBM = -92.0


class ReceptionDecision(Enum):
    """Outcome of a reception attempt, used for loss accounting."""

    RECEIVED = "received"
    WEAK_SIGNAL = "weak_signal"
    COLLISION = "collision"


@dataclass
class ReceptionOutcome:
    """Decision plus the SINR that produced it (for tracing/analysis)."""

    decision: ReceptionDecision
    sinr_db: float

    @property
    def ok(self) -> bool:
        """True when the frame was received."""
        return self.decision is ReceptionDecision.RECEIVED


class ReceptionModel(ABC):
    """Base class for reception decisions."""

    def __init__(
        self,
        sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
        noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
    ) -> None:
        self.sensitivity_dbm = sensitivity_dbm
        self.noise_floor_dbm = noise_floor_dbm

    def sinr_db(self, rx_power_dbm: float, interference_dbm: float) -> float:
        """Signal-to-interference-plus-noise ratio in dB."""
        if rx_power_dbm <= NO_SIGNAL_DBM:
            return -math.inf
        noise_plus_interference = combine_dbm([self.noise_floor_dbm, interference_dbm])
        return rx_power_dbm - noise_plus_interference

    @abstractmethod
    def decide(
        self,
        rx_power_dbm: float,
        interference_dbm: float,
        rng: Optional[random.Random] = None,
    ) -> ReceptionOutcome:
        """Decide whether a frame with the given signal/interference is received."""


class SnrThresholdReception(ReceptionModel):
    """Deterministic SINR-threshold reception.

    A frame is received iff the signal exceeds the sensitivity *and* the SINR
    exceeds the capture threshold.  Losing to interference is reported as a
    collision, losing to weak signal as a range failure -- the statistics
    collector keeps those separate because the broadcast-storm analysis
    (Fig. 2 / Table I) needs the collision count.
    """

    def __init__(
        self,
        snr_threshold_db: float = 10.0,
        sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
        noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
    ) -> None:
        super().__init__(sensitivity_dbm, noise_floor_dbm)
        self.snr_threshold_db = snr_threshold_db

    def decide(
        self,
        rx_power_dbm: float,
        interference_dbm: float,
        rng: Optional[random.Random] = None,
    ) -> ReceptionOutcome:
        """Threshold test on sensitivity and SINR."""
        if rx_power_dbm < self.sensitivity_dbm:
            return ReceptionOutcome(ReceptionDecision.WEAK_SIGNAL, -math.inf)
        sinr = self.sinr_db(rx_power_dbm, interference_dbm)
        if sinr < self.snr_threshold_db:
            return ReceptionOutcome(ReceptionDecision.COLLISION, sinr)
        return ReceptionOutcome(ReceptionDecision.RECEIVED, sinr)


class ProbabilisticReception(ReceptionModel):
    """SINR-dependent probabilistic reception.

    The packet-success probability follows a logistic curve centred on the
    SINR threshold; this is a smooth stand-in for the BER-derived curves of a
    real modem and gives the REAR protocol (Sec. VII.B) a well-defined
    "receipt probability" to estimate from signal strength.
    """

    def __init__(
        self,
        snr_threshold_db: float = 10.0,
        steepness_db: float = 2.0,
        sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
        noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
    ) -> None:
        super().__init__(sensitivity_dbm, noise_floor_dbm)
        if steepness_db <= 0:
            raise ValueError("steepness must be positive")
        self.snr_threshold_db = snr_threshold_db
        self.steepness_db = steepness_db

    def success_probability(self, rx_power_dbm: float, interference_dbm: float) -> float:
        """Packet success probability for the given signal and interference."""
        if rx_power_dbm < self.sensitivity_dbm:
            return 0.0
        sinr = self.sinr_db(rx_power_dbm, interference_dbm)
        return 1.0 / (1.0 + math.exp(-(sinr - self.snr_threshold_db) / self.steepness_db))

    def decide(
        self,
        rx_power_dbm: float,
        interference_dbm: float,
        rng: Optional[random.Random] = None,
    ) -> ReceptionOutcome:
        """Bernoulli draw against the logistic success probability."""
        if rx_power_dbm < self.sensitivity_dbm:
            return ReceptionOutcome(ReceptionDecision.WEAK_SIGNAL, -math.inf)
        sinr = self.sinr_db(rx_power_dbm, interference_dbm)
        probability = self.success_probability(rx_power_dbm, interference_dbm)
        draw = rng.random() if rng is not None else 0.5
        if draw <= probability:
            return ReceptionOutcome(ReceptionDecision.RECEIVED, sinr)
        # Attribute probabilistic losses to interference when interference is
        # the dominant impairment, otherwise to weak signal.
        interference_mw = dbm_to_mw(interference_dbm)
        noise_mw = dbm_to_mw(self.noise_floor_dbm)
        decision = (
            ReceptionDecision.COLLISION
            if interference_mw > noise_mw
            else ReceptionDecision.WEAK_SIGNAL
        )
        return ReceptionOutcome(decision, sinr)


__all__ = [
    "ReceptionDecision",
    "ReceptionOutcome",
    "ReceptionModel",
    "SnrThresholdReception",
    "ProbabilisticReception",
    "DEFAULT_NOISE_FLOOR_DBM",
    "DEFAULT_SENSITIVITY_DBM",
    "mw_to_dbm",
]
