"""Acceptance: hard-kill a sweep mid-run, resume, get byte-identical results.

The interrupted process is a real subprocess killed with SIGKILL (no
cleanup handlers run), covering the whole crash path: fsync'd per-record
appends, truncated-tail tolerance, and content-addressed resume -- with
``workers=2`` and ``shared_mobility=True``, the most machinery the sweep
can have in flight when it dies.
"""

import contextlib
import glob
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.reporting import sweep_from_store
from repro.harness.scenario import Scenario, highway_scenario
from repro.harness.sweep import sweep_replications
from repro.mobility.generator import TrafficDensity
from repro.store.store import RECORDS_FILE, ExperimentStore

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="relies on POSIX process groups and SIGKILL"
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: The sweep run by the victim subprocess and by the reference/resume runs:
#: 2 protocols x 3 seeds = 6 cells of the tiny scenario.
PROTOCOLS = ["Greedy", "Flooding"]
SEEDS = [1, 2, 3]

CHILD_SCRIPT = """
import sys
from repro.harness.scenario import highway_scenario
from repro.harness.sweep import sweep_replications
from repro.mobility.generator import TrafficDensity

scenario = highway_scenario(
    TrafficDensity.SPARSE, name="kill", duration_s=6.0,
    max_vehicles=15, default_flow_count=2,
)
sweep_replications(
    [scenario], {protocols!r}, {seeds!r},
    workers=2, shared_mobility=True, store={store!r},
)
"""


def _tiny_scenario() -> Scenario:
    return highway_scenario(
        TrafficDensity.SPARSE,
        name="kill",
        duration_s=6.0,
        max_vehicles=15,
        default_flow_count=2,
    )


def _complete_lines(path: Path) -> int:
    if not path.exists():
        return 0
    data = path.read_bytes()
    return data.count(b"\n")


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def test_kill_and_resume_is_byte_identical(tmp_path):
    store_dir = tmp_path / "store"
    records = store_dir / RECORDS_FILE
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_SRC}{os.pathsep}{env.get('PYTHONPATH', '')}".rstrip(
        os.pathsep
    )
    script = CHILD_SCRIPT.format(
        protocols=PROTOCOLS, seeds=SEEDS, store=str(store_dir)
    )
    # New session: SIGKILL to the group takes the pool workers down with the
    # parent, exactly like a crashed box or an impatient operator.
    shm_before = _shm_segments()
    victim = subprocess.Popen(
        [sys.executable, "-c", script],
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _complete_lines(records) >= 1 or victim.poll() is not None:
                break
            time.sleep(0.05)
        else:
            pytest.fail("victim sweep produced no records within the deadline")
    finally:
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        # SIGKILL also takes down the victim's multiprocessing resource
        # tracker, so its shared-mobility segments leak -- reap them here
        # or they trip the /dev/shm leak check in later test runs.
        for stale in _shm_segments() - shm_before:
            with contextlib.suppress(OSError):
                os.unlink(stale)

    landed = _complete_lines(records)
    assert landed >= 1
    assert ExperimentStore(store_dir).verify().ok  # truncated tail at worst

    scenario = _tiny_scenario()
    resumed = sweep_replications(
        [scenario],
        PROTOCOLS,
        SEEDS,
        workers=2,
        shared_mobility=True,
        store=store_dir,
    )
    # Only the missing cells ran (duplicate keys would mean re-execution).
    assert resumed.reused_cells == landed
    assert resumed.executed_cells == len(PROTOCOLS) * len(SEEDS) - landed
    assert ExperimentStore(store_dir).verify().duplicate_keys == 0

    scratch = sweep_replications(
        [scenario], PROTOCOLS, SEEDS, workers=2, shared_mobility=True
    )
    # Byte-identical final aggregates, interrupted+resumed vs uninterrupted.
    assert json.dumps(
        [cell.to_dict() for cell in resumed.replicated], sort_keys=True
    ) == json.dumps([cell.to_dict() for cell in scratch.replicated], sort_keys=True)
    # And record-for-record equality modulo host timing.
    strip = lambda record: dict(record.to_dict(), wall_clock_s=0.0)  # noqa: E731
    assert [strip(a) for a in resumed.records] == [strip(b) for b in scratch.records]

    # The store now holds the full matrix: aggregating it directly agrees.
    stored = sweep_from_store(store_dir)
    assert json.dumps(
        [cell.to_dict() for cell in stored.replicated], sort_keys=True
    ) == json.dumps([cell.to_dict() for cell in scratch.replicated], sort_keys=True)
