"""Conservation-invariant probe: packet lifecycle reconciliation.

Every originated packet identity must end in exactly one terminal state
-- first unicast delivery, or broadcast retirement -- or still be in
flight.  The probe keeps a per-``flow_key`` ledger fed by the event tap
and asserts, at configurable checkpoints and at teardown:

* ``sent == terminal + in_flight`` with a non-negative in-flight count
  (``dropped`` is reported alongside for the classic
  ``sent = delivered + dropped + in_flight`` reading, but drops are
  frame-level, count-only events -- a dropped frame does not remove a
  packet identity from flight, retransmission/flooding may still deliver
  it),
* no packet is originated twice, delivered-as-new after retirement
  (the leaked-dedup-entry bug class), retired twice, or
  delivered/retired without ever being originated,
* the probe's counters agree exactly with the ``StatsCollector`` totals
  (the tap and the collector cannot drift apart unnoticed),
* at teardown, every broadcast dedup entry still held by the collector
  belongs to an un-retired packet -- a dedup entry held for a retired
  key is exactly the leak the scope-TTL accounting bug produced.

Any violation is a **hard failure**: the probe emits a ``violation``
telemetry event and raises :class:`InvariantViolationError` at the next
checkpoint (or at teardown).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.monitors.base import Monitor
from repro.monitors.registry import register_monitor, register_monitor_preset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.packet import Packet
    from repro.sim.statistics import FlowStats

_IN_FLIGHT = 0
_DELIVERED = 1  # unicast terminal: first delivery
_RETIRED = 2  # broadcast terminal: dedup state released


class InvariantViolationError(AssertionError):
    """A conservation invariant was violated (details in ``violations``)."""

    def __init__(self, violations: List[Tuple[float, str, str]]):
        self.violations = violations
        lines = "; ".join(f"t={t:.6f} [{kind}] {detail}" for t, kind, detail in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"{len(violations)} invariant violation(s): {lines}{more}")


@register_monitor("invariant")
class ConservationInvariantMonitor(Monitor):
    """Asserts sent == delivered/retired + in_flight; hard-fails on leaks.

    ``checkpoint_interval_s`` sets how often (in sim time, driven lazily
    by observed events) the balance is re-checked and an ``invariant``
    telemetry event emitted; the final check at teardown additionally
    reconciles the collector's broadcast dedup tables against the
    ledger.  ``raise_on_violation=False`` keeps the probe observational
    (violations still land in telemetry and the summary).
    """

    def __init__(self, checkpoint_interval_s: float = 10.0, raise_on_violation: bool = True):
        super().__init__()
        if checkpoint_interval_s <= 0:
            raise ValueError(
                f"checkpoint_interval_s must be positive, got {checkpoint_interval_s!r}"
            )
        self.checkpoint_interval_s = checkpoint_interval_s
        self.raise_on_violation = raise_on_violation
        self._ledger: Dict[Tuple, int] = {}
        self._sent = 0
        self._delivered_new = 0
        self._terminal = 0
        self._in_flight = 0
        self._dropped = 0
        self._checkpoints = 0
        self._next_checkpoint = checkpoint_interval_s
        self._violations: List[Tuple[float, str, str]] = []
        self._reported = 0

    # ------------------------------------------------------------- internals
    def _violate(self, now: float, kind: str, detail: str) -> None:
        self._violations.append((now, kind, detail))
        self.emit("violation", now, kind=kind, detail=detail)

    def _checkpoint(self, now: float, final: bool) -> None:
        self._checkpoints += 1
        if self._in_flight < 0:
            self._violate(now, "negative-in-flight", f"in_flight={self._in_flight}")
        if self._sent != self._terminal + self._in_flight:
            self._violate(
                now,
                "balance",
                f"sent={self._sent} != terminal={self._terminal} + in_flight={self._in_flight}",
            )
        stats = self.stats
        if stats is not None:
            if self._sent != stats.total_sent:
                self._violate(
                    now,
                    "tap-drift",
                    f"probe saw {self._sent} originations, collector counted {stats.total_sent}",
                )
            if self._delivered_new != stats.total_delivered:
                self._violate(
                    now,
                    "tap-drift",
                    f"probe saw {self._delivered_new} deliveries, "
                    f"collector counted {stats.total_delivered}",
                )
        if final and stats is not None:
            # Teardown reconciliation: a broadcast dedup entry held for a
            # retired key means the collector re-created state after
            # retirement -- the scope-TTL leak this probe exists to catch.
            for flow in stats.flows.values():
                if flow.mode != "broadcast":
                    continue
                for key in sorted(flow.delivered_keys):
                    state = self._ledger.get(key)
                    if state is None:
                        self._violate(
                            now, "dedup-unknown-key", f"flow {flow.flow_id} holds unseen {key!r}"
                        )
                    elif state == _RETIRED:
                        self._violate(
                            now,
                            "dedup-leak",
                            f"flow {flow.flow_id} still holds dedup state for retired {key!r}",
                        )
        ok = not self._violations
        self.emit(
            "invariant",
            now,
            final=final,
            sent=self._sent,
            delivered=self._delivered_new,
            dropped=self._dropped,
            terminal=self._terminal,
            in_flight=self._in_flight,
            ok=ok,
            violations=len(self._violations),
        )
        if self._violations[self._reported:]:
            self._reported = len(self._violations)
            if self.raise_on_violation:
                raise InvariantViolationError(list(self._violations))

    def _maybe_checkpoint(self, now: float) -> None:
        if now >= self._next_checkpoint:
            while self._next_checkpoint <= now:
                self._next_checkpoint += self.checkpoint_interval_s
            self._checkpoint(now, final=False)

    # ------------------------------------------------------------- tap hooks
    def on_packet_originated(
        self, now: float, packet: "Packet", flow: "FlowStats", expected_receivers: int
    ) -> None:
        key = packet.flow_key
        if key in self._ledger:
            self._violate(now, "duplicate-origination", f"{key!r} originated twice")
        else:
            self._ledger[key] = _IN_FLIGHT
            self._sent += 1
            self._in_flight += 1
        self._maybe_checkpoint(now)

    def on_packet_delivered(
        self,
        now: float,
        packet: "Packet",
        flow: "FlowStats",
        receiver: Optional[int],
        new: bool,
        delay: float,
    ) -> None:
        key = packet.flow_key
        state = self._ledger.get(key)
        if new:
            self._delivered_new += 1
        if state is None:
            self._violate(now, "delivery-of-unknown", f"{key!r} delivered but never originated")
        elif new and state == _RETIRED:
            self._violate(
                now,
                "delivery-after-retire",
                f"{key!r} counted as a new delivery after retirement (leaked dedup entry)",
            )
        elif new and flow.mode != "broadcast":
            if state == _DELIVERED:
                self._violate(now, "double-first-delivery", f"{key!r} first-delivered twice")
            else:
                self._ledger[key] = _DELIVERED
                self._terminal += 1
                self._in_flight -= 1
        self._maybe_checkpoint(now)

    def on_packet_dropped(self, now: float, reason: str, count: int) -> None:
        self._dropped += count
        self._maybe_checkpoint(now)

    def on_packet_retired(self, now: float, flow_id: int, key: Tuple, known: bool) -> None:
        state = self._ledger.get(key)
        if not known:
            self._violate(now, "retire-unknown-flow", f"flow {flow_id} has no stats record")
        if state is None:
            self._violate(now, "retire-of-unknown", f"{key!r} retired but never originated")
        elif state == _RETIRED:
            self._violate(now, "double-retire", f"{key!r} retired twice")
        else:
            if state == _IN_FLIGHT:
                self._in_flight -= 1
                self._terminal += 1
            self._ledger[key] = _RETIRED
        self._maybe_checkpoint(now)

    def finalize(self, now: float) -> Dict[str, float]:
        self._checkpoint(now, final=True)
        return {
            "invariant_checkpoints": float(self._checkpoints),
            "invariant_violations": float(len(self._violations)),
            "invariant_in_flight_final": float(self._in_flight),
        }


register_monitor_preset(
    "invariant-strict",
    ConservationInvariantMonitor,
    "conservation invariant checked every simulated second",
    kind="invariant",
    checkpoint_interval_s=1.0,
)
