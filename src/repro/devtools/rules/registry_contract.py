"""REG-001: every pluggable component honours its registry's contract.

Cross-file checks over the whole lint run:

* every concrete ``*Protocol`` class under ``protocols/`` appears in
  ``PROTOCOL_FACTORIES`` (classes that other classes subclass are treated
  as intermediate bases and exempt);
* every concrete :class:`Workload` subclass under ``workloads/`` carries a
  ``@register_workload`` decoration, and every registered workload really
  subclasses ``Workload``;
* every concrete :class:`Monitor` subclass under ``monitors/`` carries a
  ``@register_monitor`` decoration (and vice versa), and its ``__init__``
  defaults every parameter after ``self`` so presets and
  ``monitor_from_name`` can override any subset by keyword;
* preset names passed to ``register_preset`` /
  ``register_workload_preset`` / ``register_radio_preset`` /
  ``register_monitor_preset`` as string literals follow the established
  kebab-case convention (``city-grid-2km-sparse``, ``dsrc-urban-nlos``,
  ...);
* ``@register_scenario`` builders accept exactly the contract signature
  ``(scenario, rng)``;
* ``@register_radio`` builders take ``rng`` first with every other
  parameter defaulted (so presets can override any subset by keyword).

The checks are syntactic (AST only, nothing imported), so they run on any
tree -- including test fixtures -- without executing registry side effects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.astutils import constant_str
from repro.devtools.base import LintRule, ParsedModule, ProjectContext
from repro.devtools.findings import SEVERITY_ERROR, Finding
from repro.devtools.registry import register_lint_rule

#: Preset-registering callables whose first argument is the preset name.
PRESET_REGISTRARS = frozenset(
    {
        "register_preset",
        "register_workload_preset",
        "register_radio_preset",
        "register_monitor_preset",
    }
)

#: The established preset naming convention (``dsrc-urban-nlos``,
#: ``highway-10km-congested``, ...).
KEBAB_CASE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")


@dataclass
class _ClassFact:
    module: ParsedModule
    node: ast.ClassDef
    bases: Tuple[str, ...]
    decorators: Tuple[str, ...]


@dataclass
class _ProjectFacts:
    """Everything REG-001 needs, gathered in one pass over the project."""

    classes: Dict[str, _ClassFact] = field(default_factory=dict)
    base_names: Set[str] = field(default_factory=set)
    protocol_registry_seen: bool = False
    registered_protocols: Set[str] = field(default_factory=set)


def _decorator_name(node: ast.expr) -> Optional[str]:
    """Bare name of a decorator (``register_workload`` for both the plain
    and the attribute-qualified spelling), or None."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _required_positional(args: ast.arguments) -> List[ast.arg]:
    """Positional parameters without defaults, in declaration order."""
    positional = list(args.posonlyargs) + list(args.args)
    defaulted = len(args.defaults)
    return positional[: len(positional) - defaulted] if defaulted else positional


@register_lint_rule("REG-001")
class RegistryContractRule(LintRule):
    """Unregistered components, off-convention presets, contract drift."""

    severity = SEVERITY_ERROR
    rationale = (
        "every concrete protocol/workload/monitor is registered, preset "
        "names are kebab-case, and scenario/radio/monitor builders match "
        "their registry's call contract"
    )
    historical_bug = (
        "PR 5: a radio builder that took its overrides positionally broke "
        "every preset's keyword-override path until the signature was fixed "
        "in review"
    )

    # ------------------------------------------------------------- gather
    def _gather(self, project: ProjectContext) -> _ProjectFacts:
        facts = _ProjectFacts()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    bases = tuple(
                        name
                        for name in (_base_name(base) for base in node.bases)
                        if name is not None
                    )
                    decorators = tuple(
                        name
                        for name in (
                            _decorator_name(dec) for dec in node.decorator_list
                        )
                        if name is not None
                    )
                    facts.classes.setdefault(
                        node.name, _ClassFact(module, node, bases, decorators)
                    )
                    facts.base_names.update(bases)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == "PROTOCOL_FACTORIES"
                            and isinstance(node.value, ast.Dict)
                        ):
                            facts.protocol_registry_seen = True
                            for value in node.value.values:
                                name = _base_name(value)
                                if name is not None:
                                    facts.registered_protocols.add(name)
        return facts

    def _subclasses(self, facts: _ProjectFacts, name: str, target: str) -> bool:
        """True when class ``name`` has ``target`` in its (named) MRO."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == target:
                return True
            fact = facts.classes.get(current)
            if fact is not None:
                stack.extend(fact.bases)
        return False

    # ------------------------------------------------------------- checks
    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        facts = self._gather(project)
        yield from self._check_protocols(facts)
        yield from self._check_workloads(facts)
        yield from self._check_monitors(facts)
        for module in project.modules:
            yield from self._check_presets_and_builders(module)

    def _check_protocols(self, facts: _ProjectFacts) -> Iterator[Finding]:
        if not facts.protocol_registry_seen:
            return
        for name, fact in sorted(facts.classes.items()):
            if not fact.module.relpath.startswith("protocols/"):
                continue
            if not name.endswith("Protocol") or name.startswith("_"):
                continue
            if name == "RoutingProtocol" or name in facts.base_names:
                continue  # the ABC / intermediate bases are not registrable
            if name not in facts.registered_protocols:
                yield self.report(
                    fact.module,
                    fact.node,
                    f"concrete protocol class {name} is not registered in "
                    "PROTOCOL_FACTORIES (protocols/registry.py); every "
                    "implemented protocol must be sweepable by name",
                )

    def _check_workloads(self, facts: _ProjectFacts) -> Iterator[Finding]:
        for name, fact in sorted(facts.classes.items()):
            if not fact.module.relpath.startswith("workloads/"):
                continue
            is_workload = name != "Workload" and self._subclasses(
                facts, name, "Workload"
            )
            registered = "register_workload" in fact.decorators
            if is_workload and not registered and name not in facts.base_names:
                yield self.report(
                    fact.module,
                    fact.node,
                    f"concrete Workload subclass {name} lacks "
                    "@register_workload(...); unregistered workloads cannot "
                    "be named by scenarios or swept",
                )
            elif registered and not is_workload:
                yield self.report(
                    fact.module,
                    fact.node,
                    f"@register_workload on {name}, which does not subclass "
                    "Workload; the registry contract requires the Workload "
                    "build(scenario, built, rng) interface",
                )

    def _check_monitors(self, facts: _ProjectFacts) -> Iterator[Finding]:
        for name, fact in sorted(facts.classes.items()):
            if not fact.module.relpath.startswith("monitors/"):
                continue
            is_monitor = name != "Monitor" and self._subclasses(
                facts, name, "Monitor"
            )
            registered = "register_monitor" in fact.decorators
            if is_monitor and not registered and name not in facts.base_names:
                yield self.report(
                    fact.module,
                    fact.node,
                    f"concrete Monitor subclass {name} lacks "
                    "@register_monitor(...); unregistered monitors cannot be "
                    "attached by name via Scenario.monitors or --monitor",
                )
            elif registered and not is_monitor:
                yield self.report(
                    fact.module,
                    fact.node,
                    f"@register_monitor on {name}, which does not subclass "
                    "Monitor; the registry contract requires the event-tap "
                    "on_* hook interface",
                )
            if registered:
                yield from self._check_monitor_init(fact)

    def _check_monitor_init(self, fact: _ClassFact) -> Iterator[Finding]:
        """Registered monitors must default every __init__ parameter."""
        for statement in fact.node.body:
            if (
                not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                or statement.name != "__init__"
            ):
                continue
            required = _required_positional(statement.args)
            undefaulted_kwonly = [
                arg
                for arg, default in zip(
                    statement.args.kwonlyargs, statement.args.kw_defaults
                )
                if default is None
            ]
            # ``self`` is the one allowed undefaulted parameter.
            if len(required) > 1 or undefaulted_kwonly or statement.args.vararg:
                yield self.report(
                    fact.module,
                    statement,
                    f"monitor builder {fact.node.name}.__init__ must default "
                    "every parameter after self, so monitor_from_name and "
                    "presets can override any subset by keyword",
                )

    def _check_presets_and_builders(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _decorator_name(node.func)
                if name in PRESET_REGISTRARS and node.args:
                    preset_name = constant_str(node.args[0])
                    if preset_name is not None and KEBAB_CASE.match(preset_name) is None:
                        yield self.report(
                            module,
                            node,
                            f"preset name {preset_name!r} breaks the "
                            "kebab-case convention ('city-grid-2km-sparse', "
                            "'dsrc-urban-nlos', ...)",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_builder_signature(module, node)

    def _check_builder_signature(
        self, module: ParsedModule, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        decorators = {
            name
            for name in (_decorator_name(dec) for dec in node.decorator_list)
            if name is not None
        }
        if "register_scenario" in decorators:
            required = _required_positional(node.args)
            if len(required) != 2 or node.args.vararg is not None:
                yield self.report(
                    module,
                    node,
                    f"scenario builder {node.name} must accept exactly "
                    "(scenario, rng) -- the MobilityBuilder contract the "
                    "runner calls it with",
                )
        if "register_radio" in decorators:
            positional = list(node.args.posonlyargs) + list(node.args.args)
            required = _required_positional(node.args)
            undefaulted_kwonly = [
                arg
                for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
                if default is None
            ]
            if (
                not positional
                or positional[0].arg != "rng"
                or len(required) > 1
                or undefaulted_kwonly
            ):
                yield self.report(
                    module,
                    node,
                    f"radio builder {node.name} must take the seeded 'rng' "
                    "stream first and default every other parameter, so "
                    "presets can override any subset by keyword",
                )
