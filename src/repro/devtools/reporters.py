"""Finding reporters: human text, machine JSON, GitHub Actions annotations.

The ``github`` format prints workflow commands
(``::error file=...,line=...``) so lint failures annotate the offending
``file:line`` directly in the CI job output and the PR diff view.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List

from repro.devtools.engine import LintReport
from repro.devtools.findings import SEVERITY_WARNING


def render_text(report: LintReport) -> str:
    """``path:line:col: RULE-ID [severity] message`` lines plus a summary."""
    lines: List[str] = [
        f"{finding.location}: {finding.rule_id} [{finding.severity}] {finding.message}"
        for finding in report.findings
    ]
    if report.clean:
        lines.append(f"{report.file_count} file(s) linted: clean")
    else:
        lines.append(
            f"{report.file_count} file(s) linted: "
            f"{report.error_count} error(s), {report.warning_count} warning(s)"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The full report as a JSON document."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_github(report: LintReport) -> str:
    """GitHub Actions workflow-command annotations, one per finding."""
    lines: List[str] = []
    for finding in report.findings:
        level = "warning" if finding.severity == SEVERITY_WARNING else "error"
        message = finding.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule_id}::{message}"
        )
    lines.append(
        f"{report.file_count} file(s) linted: "
        + (
            "clean"
            if report.clean
            else f"{report.error_count} error(s), {report.warning_count} warning(s)"
        )
    )
    return "\n".join(lines)


#: format name -> renderer, for the CLI's ``--format`` flag.
REPORTERS: Dict[str, Callable[[LintReport], str]] = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
