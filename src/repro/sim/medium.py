"""The shared wireless broadcast medium.

Every frame handed to the medium is propagated to all registered nodes: the
propagation model attenuates it, concurrent transmissions interfere with it,
and the reception model decides per receiver whether the frame arrives.
Unicast frames (``next_hop`` set) are filtered at the receiver, but they
still occupy the channel for everybody -- which is what makes flooding
expensive and is the physical basis of Table I's "overhead / broadcast
storm" column for connectivity-based routing.

Receiver fan-out, carrier sensing and interference aggregation all go
through a pluggable :mod:`~repro.sim.spatial` index (``"grid"`` by default,
``"linear"`` as the exhaustive oracle).  Candidates from the index are
re-filtered against live positions and visited in registration order, so
with a finite-range propagation model (unit disk, the default) both
backends produce byte-identical event traces.  Models whose received
power never drops to ``NO_SIGNAL_DBM`` (two-ray, free-space, shadowing)
are approximated under the grid: transmitters beyond the carrier-sense
cutoff are excluded from carrier sensing and interference sums, the same
bounded-range tradeoff :meth:`WirelessMedium._reception_cutoff` already
applies to reception.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.geometry import Vec2
from repro.radio.interference import NO_SIGNAL_DBM
from repro.radio.propagation import PropagationModel
from repro.radio.reception import ReceptionDecision, ReceptionModel
from repro.sim.engine import Simulator
from repro.sim.packet import BROADCAST, Packet
from repro.sim.spatial import make_spatial_index
from repro.sim.statistics import StatsCollector
from repro.sim.trace import EventTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.mac import MacConfig
    from repro.radio.stack import RadioStack
    from repro.sim.node import Node


@dataclass
class ActiveTransmission:
    """A frame currently (or recently) on the air."""

    sender_id: int
    sender_position: Vec2
    tx_power_dbm: float
    packet: Packet
    next_hop: int
    start: float
    end: float
    uid: int = field(default=0)


class WirelessMedium:
    """Shared channel connecting every registered node.

    The channel models come either from an assembled
    :class:`~repro.radio.stack.RadioStack` (``stack=...``, what the harness
    passes after resolving the scenario's radio through the registry) or
    from the individual ``propagation`` / ``reception`` / ``mac_config``
    arguments; explicit individual arguments override the stack's
    components, and whatever is still unset falls back to the defaults
    (unit disk, SNR threshold, additive interference, 802.11p MAC).

    Args:
        stack: A complete radio profile supplying propagation, reception,
            interference combination, MAC parameters and transmit power in
            one object.
        spatial_backend: ``"grid"`` (default) or ``"linear"`` -- how receiver
            and carrier-sense candidates are looked up.
        cell_size_m: Grid cell size; defaults to the reception cutoff.
        position_slack_m: How far a node may drift from its indexed position
            before a refresh without being missed by a query.
        position_refresh_s: Maximum staleness of indexed positions; queries
            lazily re-index all nodes once this much simulated time passed.
    """

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        reception: Optional[ReceptionModel] = None,
        stats: Optional[StatsCollector] = None,
        mac_config: Optional["MacConfig"] = None,
        trace: Optional[EventTrace] = None,
        carrier_sense_margin_db: float = 10.0,
        spatial_backend: str = "grid",
        cell_size_m: Optional[float] = None,
        position_slack_m: float = 100.0,
        position_refresh_s: float = 0.5,
        stack: Optional["RadioStack"] = None,
    ) -> None:
        self.sim = sim
        # Imported here (not at module level) to break the import cycle
        # radio.mac -> sim.packet -> sim.medium -> radio.mac, which made
        # `import repro.radio` fail when it ran before `import repro.sim`.
        from repro.radio.stack import RadioStack

        # Explicit component arguments override the stack's models on a
        # *copy*: the caller's stack object stays as it was resolved (it may
        # be shared with reporting or a later medium).  Without a stack they
        # fill one in over RadioStack's defaults (unit disk, SNR threshold,
        # additive interference, 802.11p MAC).
        overrides = {}
        if propagation is not None:
            overrides["propagation"] = propagation
        if reception is not None:
            overrides["reception"] = reception
        if mac_config is not None:
            overrides["mac"] = mac_config
        if stack is None:
            stack = RadioStack(**overrides)
        elif overrides:
            stack = replace(stack, **overrides)
        self.stack = stack
        self.propagation = stack.propagation
        self.reception = stack.reception
        self.interference = stack.interference
        self.stats = stats if stats is not None else StatsCollector()
        self.mac_config = stack.mac
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        #: Carrier sensing is typically more sensitive than frame decoding.
        self.carrier_sense_threshold_dbm = (
            self.reception.sensitivity_dbm - carrier_sense_margin_db
        )
        self._nodes: Dict[int, "Node"] = {}
        self._transmissions: List[ActiveTransmission] = []
        self._tx_by_uid: Dict[int, ActiveTransmission] = {}
        self._tx_counter = 0
        self._range_cache: Dict[float, float] = {}
        self._cs_range_cache: Dict[float, float] = {}
        self.spatial_backend = spatial_backend
        if cell_size_m is None:
            cell_size_m = self._default_cell_size()
        self.position_refresh_s = position_refresh_s
        self._node_index = make_spatial_index(
            spatial_backend, cell_size_m, position_slack_m
        )
        #: Transmission positions are frozen at begin time, so no slack.
        self._tx_index = make_spatial_index(spatial_backend, cell_size_m, 0.0)
        #: Registration sequence: candidates are visited in this order so
        #: both spatial backends consume random streams identically.
        self._node_seq: Dict[int, int] = {}
        self._seq_counter = 0
        self._last_position_refresh = -float("inf")
        self._max_tx_power_dbm: Optional[float] = None

    def _default_cell_size(self) -> float:
        nominal = self.propagation.nominal_range(
            self.stack.tx_power_dbm, self.reception.sensitivity_dbm
        )
        return nominal * 2.0 if nominal > 0 else 500.0

    # --------------------------------------------------------------- topology
    def register(self, node: "Node") -> None:
        """Attach a node to the channel and give it a MAC instance."""
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        from repro.radio.mac import CsmaCaMac

        self._nodes[node.node_id] = node
        self._seq_counter += 1
        self._node_seq[node.node_id] = self._seq_counter
        self._node_index.insert(node.node_id, node.position)
        node.mac = CsmaCaMac(
            node, self, self.mac_config, self.sim.rng.stream(f"mac-{node.node_id}")
        )

    def unregister(self, node_id: int) -> None:
        """Detach a node (e.g. a vehicle leaving the scenario)."""
        self._nodes.pop(node_id, None)
        self._node_seq.pop(node_id, None)
        self._node_index.remove(node_id)

    @property
    def nodes(self) -> Dict[int, "Node"]:
        """All registered nodes, keyed by node id."""
        return self._nodes

    # ---------------------------------------------------------- spatial index
    def refresh_positions(self) -> None:
        """Re-index every node's live position (called each mobility step)."""
        index = self._node_index
        for node_id, node in self._nodes.items():
            index.update(node_id, node.position)
        self._last_position_refresh = self.sim.now

    def _maybe_refresh_positions(self) -> None:
        if self.sim.now - self._last_position_refresh >= self.position_refresh_s:
            self.refresh_positions()

    def _nodes_near(self, position: Vec2, radius: float) -> List["Node"]:
        """Candidate receivers around ``position``, in registration order.

        A superset of the nodes truly within ``radius``; callers must apply
        the exact live-position distance test.
        """
        self._maybe_refresh_positions()
        ids = self._node_index.query_ids(position, radius)
        ids.sort(key=self._node_seq.__getitem__)
        nodes = self._nodes
        return [nodes[node_id] for node_id in ids]

    def _transmissions_near(self, position: Vec2, radius: float) -> List[ActiveTransmission]:
        """Transmissions whose sender may be within ``radius``, in uid order."""
        ids = self._tx_index.query_ids(position, radius)
        ids.sort()
        by_uid = self._tx_by_uid
        return [by_uid[uid] for uid in ids]

    def nodes_in_range(self, node: "Node", range_m: float) -> List["Node"]:
        """Oracle: nodes whose current distance to ``node`` is within ``range_m``."""
        return self.nodes_within(node.position, range_m, exclude=node.node_id)

    def nodes_within(
        self, position: Vec2, radius: float, exclude: Optional[int] = None
    ) -> List["Node"]:
        """Registered nodes within ``radius`` metres of ``position``."""
        return [
            node
            for node in self._nodes_near(position, radius)
            if node.node_id != exclude and position.distance_to(node.position) <= radius
        ]

    def nominal_range(self, tx_power_dbm: float = 20.0) -> float:
        """Distance at which the mean received power hits the sensitivity."""
        return self.propagation.nominal_range(tx_power_dbm, self.reception.sensitivity_dbm)

    # ---------------------------------------------------------------- channel
    def channel_busy(self, node: "Node") -> bool:
        """True when ``node`` senses an ongoing transmission above the CS threshold."""
        now = self.sim.now
        position = node.position
        for tx in self._transmissions_near(position, self._carrier_sense_reach()):
            if tx.end <= now or tx.sender_id == node.node_id:
                continue
            rx_power = self.propagation.rx_power_dbm(
                tx.tx_power_dbm, tx.sender_position, position
            )
            if rx_power >= self.carrier_sense_threshold_dbm:
                return True
        return False

    def begin_transmission(
        self, sender: "Node", packet: Packet, next_hop: int, duration: float
    ) -> None:
        """Put a frame on the air; reception is evaluated when it ends."""
        now = self.sim.now
        self._tx_counter += 1
        transmission = ActiveTransmission(
            sender_id=sender.node_id,
            sender_position=sender.position,
            tx_power_dbm=sender.tx_power_dbm,
            packet=packet,
            next_hop=next_hop,
            start=now,
            end=now + duration,
            uid=self._tx_counter,
        )
        self._transmissions.append(transmission)
        self._tx_by_uid[transmission.uid] = transmission
        self._tx_index.insert(transmission.uid, transmission.sender_position)
        if (
            self._max_tx_power_dbm is None
            or sender.tx_power_dbm > self._max_tx_power_dbm
        ):
            self._max_tx_power_dbm = sender.tx_power_dbm
        self.stats.transmission(packet)
        self.trace.record(
            now,
            "tx",
            sender.node_id,
            ptype=packet.ptype,
            protocol=packet.protocol,
            next_hop=next_hop,
            uid=packet.uid,
        )
        self.sim.schedule(duration, self._complete, transmission)

    # ------------------------------------------------------------- completion
    def _complete(self, transmission: ActiveTransmission) -> None:
        now = self.sim.now
        self._prune(now)
        cutoff = self._reception_cutoff(transmission.tx_power_dbm)
        rng = self.sim.rng.stream("phy-reception")
        is_unicast = transmission.next_hop != BROADCAST
        unicast_delivered = False
        # Every receiver of this frame sits within `cutoff` of the sender, so
        # (by the triangle inequality) every transmission that can interfere
        # at any of them sits within `cutoff + carrier-sense reach` of the
        # sender.  Fetching the overlap-filtered candidates once here keeps
        # the per-receiver interference loop free of index queries.  A model
        # that ignores contributions (NoInterference) skips the whole
        # gathering: per-interferer rx powers are a per-frame hot path.
        if self.interference.uses_contributions:
            interferers = [
                other
                for other in self._transmissions_near(
                    transmission.sender_position, cutoff + self._carrier_sense_reach()
                )
                if other.uid != transmission.uid
                and other.end > transmission.start
                and other.start < transmission.end
            ]
        else:
            interferers = []
        for node in self._nodes_near(transmission.sender_position, cutoff):
            if node.node_id == transmission.sender_id:
                continue
            receiver_position = node.position
            distance = transmission.sender_position.distance_to(receiver_position)
            if distance > cutoff:
                continue
            rx_power = self.propagation.rx_power_dbm(
                transmission.tx_power_dbm, transmission.sender_position, receiver_position
            )
            if rx_power <= NO_SIGNAL_DBM:
                continue
            interference = self._interference_at(receiver_position, interferers)
            outcome = self.reception.decide(rx_power, interference, rng)
            intended = (
                transmission.next_hop == BROADCAST
                or transmission.next_hop == node.node_id
            )
            if outcome.ok:
                if intended:
                    if is_unicast:
                        unicast_delivered = True
                    self.trace.record(
                        now,
                        "rx",
                        node.node_id,
                        ptype=transmission.packet.ptype,
                        sender=transmission.sender_id,
                        uid=transmission.packet.uid,
                    )
                    node.deliver(
                        transmission.packet.copy(),
                        transmission.sender_id,
                        rx_power_dbm=rx_power,
                    )
            elif outcome.decision is ReceptionDecision.COLLISION:
                if intended:
                    self.stats.collision()
                    self.trace.record(
                        now,
                        "collision",
                        node.node_id,
                        sender=transmission.sender_id,
                        uid=transmission.packet.uid,
                    )
            elif intended and transmission.next_hop == node.node_id:
                self.stats.weak_signal()
        if is_unicast:
            sender = self._nodes.get(transmission.sender_id)
            if sender is not None and sender.mac is not None:
                sender.mac.notify_unicast_result(
                    transmission.packet, transmission.next_hop, unicast_delivered
                )

    def _interference_at(
        self, position: Vec2, interferers: List[ActiveTransmission]
    ) -> float:
        """Aggregate power of the overlapping ``interferers`` at ``position``.

        How the contributions combine is the stack's interference model
        (additive power by default).
        """
        contributions: List[float] = []
        rx_power_dbm = self.propagation.rx_power_dbm
        for other in interferers:
            power = rx_power_dbm(other.tx_power_dbm, other.sender_position, position)
            if power > NO_SIGNAL_DBM:
                contributions.append(power)
        if not contributions:
            return NO_SIGNAL_DBM
        return self.interference.combine(contributions)

    def _reception_cutoff(self, tx_power_dbm: float) -> float:
        """Distance beyond which reception is impossible (evaluation cutoff)."""
        cached = self._range_cache.get(tx_power_dbm)
        if cached is not None:
            return cached
        nominal = self.propagation.nominal_range(
            tx_power_dbm, self.reception.sensitivity_dbm
        )
        # Shadowed channels occasionally reach beyond the nominal range;
        # a 2x margin keeps that tail while bounding the per-frame work.
        cutoff = nominal * 2.0 if nominal > 0 else 0.0
        self._range_cache[tx_power_dbm] = cutoff
        return cutoff

    def _carrier_sense_reach(self) -> float:
        """Sender distance beyond which a transmission cannot trip carrier sense.

        Uses the highest transmit power seen on the channel against the
        carrier-sense threshold, with the same 2x shadowing margin as
        :meth:`_reception_cutoff`.
        """
        tx_power = self._max_tx_power_dbm
        if tx_power is None:
            return 0.0
        cached = self._cs_range_cache.get(tx_power)
        if cached is not None:
            return cached
        nominal = self.propagation.nominal_range(
            tx_power, self.carrier_sense_threshold_dbm
        )
        reach = nominal * 2.0 if nominal > 0 else 0.0
        self._cs_range_cache[tx_power] = reach
        return reach

    def _prune(self, now: float) -> None:
        """Drop transmissions that can no longer overlap anything in flight.

        A past transmission still matters while some pending frame's airtime
        overlaps it, so the horizon is the earliest start among frames that
        have not finished yet (``end >= now`` -- frames completing right now
        are still being evaluated).  This keeps arbitrarily long frames
        alive for their whole flight instead of cutting history at a fixed
        1-second window.
        """
        pending_starts = [t.start for t in self._transmissions if t.end >= now]
        if pending_starts:
            horizon = min(pending_starts)
            keep = [t for t in self._transmissions if t.end > horizon]
        else:
            keep = []
        if len(keep) != len(self._transmissions):
            self._transmissions = keep
            kept_uids = {t.uid for t in keep}
            for uid in list(self._tx_by_uid):
                if uid not in kept_uids:
                    del self._tx_by_uid[uid]
                    self._tx_index.remove(uid)
