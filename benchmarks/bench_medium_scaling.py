"""Scaling benchmark: spatial-grid vs. linear-scan wireless medium.

Every delivered frame used to scan all N registered nodes, and every
carrier-sense poll scanned every in-flight transmission, so frame delivery
cost O(N) and a beacon interval cost O(N^2).  The uniform-grid index bounds
both by the local neighbourhood.  This benchmark holds vehicle density
constant by growing a synthetic arterial+grid *city* with the population
(the scenario-registry ``city`` kind, so the N sweep exercises the exact
build path city presets use), sweeps the population, and times an identical
broadcast workload through both backends -- the linear backend's wall-clock
grows superlinearly while the grid's grows roughly linearly, which is what
makes city-scale scenarios tractable.

The sweep also carries a radio axis: the default ``ideal-disk-250m`` stack
(finite range, where the two backends are trace-for-trace identical and the
transmission counts must match exactly) and the ``nakagami`` fading stack
(unbounded mean path loss, where the grid applies the documented sub-cutoff
approximation and the runs are only statistically comparable -- the speedup
column tracks that regime too).
"""

from __future__ import annotations

import math
import random
import time
from typing import NamedTuple

from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import city_scenario
from repro.harness.sweep import execute_cells
from repro.mobility.generator import TrafficDensity
from repro.roadnet.city import CityConfig
from repro.sim.packet import BROADCAST, make_control_packet

from benchmarks.common import report, run_once, sweep_workers

#: Vehicles per square metre: 16 per km^2 -- a city-scale map much larger
#: than the radio range, which is exactly the regime the index targets (the
#: linear scan pays for every vehicle on the map per frame; the grid only
#: pays for the radio neighbourhood).
DENSITY_PER_M2 = 16e-6

POPULATIONS = [100, 400, 1600]
FRAMES_PER_NODE = 2
BLOCK_SIZE_M = 200.0

#: Radio axis: the finite-range default (exact backend equivalence) and the
#: Nakagami fading stack (grid sub-cutoff approximation regime).
RADIOS = ["ideal-disk-250m", "nakagami"]


def _city_blocks(n: int) -> int:
    """City side length (in blocks) holding DENSITY_PER_M2 for ``n`` vehicles."""
    side_m = math.sqrt(n / DENSITY_PER_M2)
    return max(2, int(round(side_m / BLOCK_SIZE_M)))


def _build_network(n: int, backend: str, radio: str, seed: int = 5):
    """Instantiate a constant-density city scenario through the runner."""
    blocks = _city_blocks(n)
    scenario = city_scenario(
        TrafficDensity.NORMAL,
        name=f"bench-city-{n}-{backend}-{radio}",
        city=CityConfig(blocks_x=blocks, blocks_y=blocks, block_size_m=BLOCK_SIZE_M),
        max_vehicles=n,
        seed=seed,
        spatial_backend=backend,
        radio_stack=radio,
    )
    built = ExperimentRunner().build(scenario)
    return built.sim, built.network, built.stats


class ScalingCell(NamedTuple):
    """One (population, backend, radio) run of the scaling matrix (picklable)."""

    vehicles: int
    backend: str
    radio: str


#: The explicit run matrix this benchmark executes through the sweep layer.
CELLS = [
    ScalingCell(n, backend, radio)
    for n in POPULATIONS
    for backend in ("linear", "grid")
    for radio in RADIOS
]

#: Worker processes.  Defaults to serial execution because the measured
#: quantity is wall-clock time: co-scheduled workers would contend for CPU
#: and distort the linear-vs-grid comparison.  Deliberately NOT the shared
#: REPRO_SWEEP_WORKERS variable: set REPRO_SCALING_WORKERS only for a quick
#: sweep where the timing columns do not matter.
WORKERS = sweep_workers(var="REPRO_SCALING_WORKERS")


def run_scaling_cell(cell: ScalingCell) -> dict:
    """Broadcast beacon-sized frames from every node and time frame delivery.

    The network is deliberately not started: no mobility stepping, HELLO
    beaconing or routing runs, so the timed event load is pure frame
    delivery through the medium under the cell's backend and radio stack.
    """
    sim, network, stats = _build_network(cell.vehicles, cell.backend, cell.radio)
    rng = random.Random(99)
    for node in network.nodes.values():
        for _ in range(FRAMES_PER_NODE):
            packet = make_control_packet(
                "bench", "HELLO", node.node_id, BROADCAST, size_bytes=32
            )
            sim.schedule_at(rng.uniform(0.0, 2.0), node.send, packet, BROADCAST)
    started = time.perf_counter()
    sim.run(until=5.0)
    wall = time.perf_counter() - started
    return {
        "vehicles": cell.vehicles,
        "backend": cell.backend,
        "radio": cell.radio,
        "wall_s": wall,
        "transmissions": stats.control_transmissions,
    }


def _sweep():
    outcomes = execute_cells(CELLS, run_scaling_cell, workers=WORKERS)
    by_cell = {(o["vehicles"], o["backend"], o["radio"]): o for o in outcomes}
    rows = []
    for n in POPULATIONS:
        for radio in RADIOS:
            linear = by_cell[(n, "linear", radio)]
            grid = by_cell[(n, "grid", radio)]
            rows.append(
                {
                    "vehicles": n,
                    "radio": radio,
                    "frames": n * FRAMES_PER_NODE,
                    "linear_s": round(linear["wall_s"], 4),
                    "grid_s": round(grid["wall_s"], 4),
                    "speedup": round(linear["wall_s"] / max(grid["wall_s"], 1e-9), 2),
                    "tx_linear": linear["transmissions"],
                    "tx_grid": grid["transmissions"],
                }
            )
    return rows


def test_medium_scaling(benchmark):
    """Frame-delivery wall clock, linear vs. grid, at constant city density."""
    rows = run_once(benchmark, _sweep)
    report(
        "medium_scaling",
        rows,
        title="Wireless medium scaling -- linear scan vs. uniform grid (city kind)",
    )
    for row in rows:
        if row["radio"] == "ideal-disk-250m":
            # Finite-range propagation: both backends must push the same
            # frames through the channel (exact trace equivalence).  Under
            # fading the grid's sub-cutoff approximation may shift MAC
            # deferrals, so only the disk rows assert equality.
            assert row["tx_linear"] == row["tx_grid"]
    largest = [
        row for row in rows if row["vehicles"] == 1600 and row["radio"] == "ideal-disk-250m"
    ][0]
    # Acceptance bar for the grid index: >= 5x faster frame delivery at
    # N=1600 (a conservative floor; typical runs land far above it).
    assert largest["speedup"] >= 5.0
