"""Bit-exactness tests for the batched radio fast paths.

Every optimisation on the vectorized delivery path claims *byte* equality
with the scalar reference, not approximate equality -- these tests pin that
claim with ``==`` on floats, never ``pytest.approx``.
"""

import numpy as np
import pytest

from repro.radio.interference import (
    NO_SIGNAL_DBM,
    combine_dbm,
    dbm_to_mw,
    dbm_to_mw_batch,
    mw_to_dbm,
    mw_to_dbm_batch,
)
from repro.radio.propagation import (
    FreeSpacePropagation,
    PropagationModel,
    UnitDiskPropagation,
)
from repro.radio.reception import (
    BATCH_COLLISION,
    BATCH_RECEIVED,
    BATCH_WEAK_SIGNAL,
    ReceptionDecision,
    SnrThresholdReception,
)
from repro.sim.engine import Simulator
from repro.sim.medium import WirelessMedium

_DECISION_TO_CODE = {
    ReceptionDecision.RECEIVED: BATCH_RECEIVED,
    ReceptionDecision.WEAK_SIGNAL: BATCH_WEAK_SIGNAL,
    ReceptionDecision.COLLISION: BATCH_COLLISION,
}


class TestBatchConversionHelpers:
    def test_dbm_mw_batch_round_trip_matches_scalar(self):
        levels = np.array([-120.0, -92.0, -61.5, 0.0, 20.0, NO_SIGNAL_DBM])
        batch_mw = dbm_to_mw_batch(levels)
        for index, level in enumerate(levels.tolist()):
            assert batch_mw[index] == dbm_to_mw(level)
        positive = np.array([1e-12, 1e-9, 0.5, 1.0, 100.0])
        batch_dbm = mw_to_dbm_batch(positive)
        for index, mw in enumerate(positive.tolist()):
            assert batch_dbm[index] == mw_to_dbm(mw)


class TestConstantRxProfile:
    def test_unit_disk_reports_its_single_level(self):
        model = UnitDiskPropagation(communication_range=250.0)
        profile = model.constant_rx_profile(20.0)
        assert profile is not None
        rx_mw, cutoff = profile
        assert rx_mw == dbm_to_mw(20.0)
        assert cutoff == 250.0
        # The profile must agree with the model itself: in range the power
        # is exactly the advertised level, beyond it exactly silence.
        assert dbm_to_mw(model.rx_power_dbm_from_distance(20.0, 100.0)) == rx_mw
        assert (
            model.rx_power_dbm_from_distance(20.0, cutoff + 1e-9) == NO_SIGNAL_DBM
        )

    def test_non_constant_models_decline(self):
        model = FreeSpacePropagation()
        assert model.constant_rx_profile(20.0) is None
        assert PropagationModel.constant_rx_profile(model, 20.0) is None


class TestFoldTable:
    def _medium(self):
        return WirelessMedium(Simulator(seed=1), spatial_backend="vectorized")

    def test_table_matches_sequential_fold(self):
        medium = self._medium()
        contribution = dbm_to_mw(20.0)
        table = medium._fold_table(contribution, 12)
        assert len(table) == 13
        # Entry j is the dBm of j in-range contributions folded the way the
        # scalar path folds them: iterative left-to-right addition.  (Not
        # j * c -- float multiplication rounds differently for j >= 4.)
        for j in range(1, 13):
            total = 0.0
            for _ in range(j):
                total += contribution
            assert table[j] == mw_to_dbm(total)

    def test_table_matches_combine_dbm(self):
        medium = self._medium()
        tx_dbm = 17.0
        contribution = dbm_to_mw(tx_dbm)
        table = medium._fold_table(contribution, 8)
        for j in range(1, 9):
            assert table[j] == combine_dbm([tx_dbm] * j)

    def test_table_grows_and_is_cached(self):
        medium = self._medium()
        small = medium._fold_table(0.5, 3)
        again = medium._fold_table(0.5, 2)
        assert again is small
        grown = medium._fold_table(0.5, 10)
        assert len(grown) == 11
        assert list(grown[:4]) == list(small)


class TestDecideBatchMemo:
    @pytest.mark.parametrize("size", [3, 16, 200])
    def test_batch_matches_scalar_decide(self, size):
        model = SnrThresholdReception()
        rng = np.random.default_rng(42)
        rx = rng.uniform(-110.0, -40.0, size)
        interference = rng.choice(
            [NO_SIGNAL_DBM, -95.0, -88.0, -70.0, -55.0], size
        )
        codes = model.decide_batch(rx, interference)
        for index in range(size):
            outcome = model.decide(float(rx[index]), float(interference[index]))
            assert codes[index] == _DECISION_TO_CODE[outcome.decision]

    def test_memo_is_populated_and_reused(self):
        model = SnrThresholdReception()
        interference = np.full(20, -70.0)
        rx = np.full(20, -60.0)
        model.decide_batch(rx, interference)
        assert -70.0 in model._npi_memo
        memo_value = model._npi_memo[-70.0]
        # The memoised value is exactly what combine_dbm would produce.
        assert memo_value == combine_dbm([model.noise_floor_dbm, -70.0])
        # Second call reuses the entry (same object identity for the dict).
        model.decide_batch(rx, interference)
        assert model._npi_memo[-70.0] == memo_value

    def test_memo_resets_when_noise_floor_changes(self):
        model = SnrThresholdReception()
        model.decide_batch(np.full(4, -60.0), np.full(4, -70.0))
        assert model._npi_memo
        model.noise_floor_dbm = -95.0
        codes = model.decide_batch(np.full(4, -60.0), np.full(4, -70.0))
        assert model._npi_memo[-70.0] == combine_dbm([-95.0, -70.0])
        outcome = model.decide(-60.0, -70.0)
        assert codes[0] == _DECISION_TO_CODE[outcome.decision]

    def test_quiet_channel_uses_quiet_constant(self):
        model = SnrThresholdReception()
        quiet = np.full(20, NO_SIGNAL_DBM)
        codes = model.decide_batch(np.full(20, -80.0), quiet)
        outcome = model.decide(-80.0, NO_SIGNAL_DBM)
        assert set(codes.tolist()) == {_DECISION_TO_CODE[outcome.decision]}
        assert model._npi_memo[NO_SIGNAL_DBM] == combine_dbm(
            [model.noise_floor_dbm, NO_SIGNAL_DBM]
        )
