"""Package metadata and dependency declaration.

``numpy`` powers the vectorized spatial backend of the wireless medium
(``spatial_backend="vectorized"``); the scalar ``grid``/``linear`` backends
run without it, but it is cheap and the struct-of-arrays fast path is the
recommended configuration at scale, so it is a hard dependency of the
installed package.  The import-time gate for environments that run from a
bare checkout without numpy lives in
:func:`repro.sim.position_store.require_numpy`.
"""

from setuptools import find_packages, setup

setup(
    name="repro-vanet",
    version="0.6.0",
    description=(
        "Discrete-event VANET routing testbed reproducing the taxonomy and "
        "experiments of Yan, Mitton & Li (ICDCS Workshops 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "numpy",
    ],
    entry_points={
        "console_scripts": [
            "repro-vanet = repro.cli:main",
        ],
    },
)
