"""Constant-bit-rate unicast flows (the classic ``FlowSpec`` traffic)."""

from __future__ import annotations

import random
import warnings
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.workloads.base import Workload
from repro.workloads.registry import register_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import BuiltScenario
    from repro.harness.scenario import Scenario


@register_workload("cbr")
class CbrWorkload(Workload):
    """Constant-bit-rate unicast flows between random (or pinned) vehicle pairs.

    This is the pre-registry traffic model, byte-for-byte: explicit
    ``Scenario.flows`` entries are honoured first; otherwise
    ``Scenario.default_flow_count`` flows are stamped from
    ``Scenario.flow_template``.  Endpoints left unpinned are drawn from the
    ``"traffic"`` stream exactly the way the runner's retired
    ``_schedule_flows`` drew them, so default runs reproduce pre-redesign
    results seed for seed.

    Constructor keywords (all optional) override the scenario's template:
    ``flow_count``, ``start_time_s``, ``interval_s``, ``packet_count``,
    ``size_bytes``.
    """

    def __init__(
        self,
        flow_count: Optional[int] = None,
        start_time_s: Optional[float] = None,
        interval_s: Optional[float] = None,
        packet_count: Optional[int] = None,
        size_bytes: Optional[int] = None,
    ) -> None:
        self.flow_count = flow_count
        self.start_time_s = start_time_s
        self.interval_s = interval_s
        self.packet_count = packet_count
        self.size_bytes = size_bytes

    def _specs(self, scenario: "Scenario") -> List:
        from repro.harness.scenario import FlowSpec

        specs = list(scenario.flows)
        if not specs:
            template = scenario.flow_template
            count = self.flow_count if self.flow_count is not None else scenario.default_flow_count
            specs = [
                FlowSpec(
                    start_time_s=self.start_time_s
                    if self.start_time_s is not None
                    else template.start_time_s,
                    interval_s=self.interval_s
                    if self.interval_s is not None
                    else template.interval_s,
                    packet_count=self.packet_count
                    if self.packet_count is not None
                    else template.packet_count,
                    size_bytes=self.size_bytes
                    if self.size_bytes is not None
                    else template.size_bytes,
                )
                for _ in range(count)
            ]
        return specs

    def build(
        self, scenario: "Scenario", built: "BuiltScenario", rng: random.Random
    ) -> List[Dict[str, float]]:
        flows: List[Dict[str, float]] = []
        vehicles = built.vehicle_nodes
        if len(vehicles) < 2:
            return flows
        sends = []
        for flow_id, spec in enumerate(self._specs(scenario), start=1):
            # Endpoints are resolved before the degenerate-start check so a
            # skipped flow still consumes exactly the draws the legacy
            # scheduler consumed -- later unpinned flows keep their pairs.
            source_index = spec.source_index
            destination_index = spec.destination_index
            if source_index is None or destination_index is None:
                source_index, destination_index = self.pick_pair(rng, len(vehicles))
            if spec.start_time_s > scenario.duration_s:
                # The scheduling loop below sends nothing once send_time
                # exceeds the duration (a start exactly *at* the duration
                # still sends one packet, as the legacy scheduler did), so a
                # flow starting past it contributes zero packets; keeping it
                # registered would silently pad the flow table with dead
                # entries.
                warnings.warn(
                    f"flow {flow_id} starts at {spec.start_time_s:.1f}s, past the "
                    f"scenario duration ({scenario.duration_s:.1f}s); it sends "
                    "nothing and is excluded from flow accounting",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            source = vehicles[source_index % len(vehicles)]
            destination = vehicles[destination_index % len(vehicles)]
            built.stats.register_flow(flow_id, source.node_id, destination.node_id)
            flows.append(
                {
                    "flow_id": flow_id,
                    "source": source.node_id,
                    "destination": destination.node_id,
                }
            )
            for packet_index in range(spec.packet_count):
                send_time = spec.start_time_s + packet_index * spec.interval_s
                if send_time > scenario.duration_s:
                    break
                sends.append(
                    (
                        send_time,
                        self.send_unicast,
                        (
                            built,
                            source,
                            destination,
                            spec.size_bytes,
                            flow_id,
                            packet_index + 1,
                        ),
                        0,
                    )
                )
        # One bulk queue insert for the whole traffic matrix; push order
        # matches the legacy per-packet loop, so the trace is unchanged.
        built.sim.schedule_at_many(sends)
        return flows
