"""Manhattan-grid urban mobility.

Vehicles travel along the streets of a regular grid and choose a new
direction at every intersection (straight / left / right with configurable
probabilities).  This is the classic urban model used by the geographic and
infrastructure categories of the survey (CarNet grids, zone routing, RSUs at
intersections).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geometry import Vec2
from repro.mobility.vehicle import VehicleState

#: The four axis-aligned travel directions (dx, dy).
_DIRECTIONS: Tuple[Tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))


@dataclass
class ManhattanConfig:
    """Grid geometry and driver behaviour.

    Attributes:
        blocks_x: Number of city blocks along x.
        blocks_y: Number of city blocks along y.
        block_size_m: Side length of one block (street spacing).
        speed_mean_mps: Mean desired speed (urban, ~50 km/h by default).
        speed_stddev_mps: Standard deviation of desired speeds.
        min_speed_mps: Lower clamp for speeds.
        p_straight: Probability of continuing straight at an intersection.
        p_turn: Probability of turning (split evenly left/right); the
            remaining ``1 - p_straight - p_turn`` probability mass is a
            U-turn (and a U-turn is also forced at dead ends).
        speed_relaxation: First-order relaxation rate of speed toward the
            desired speed (1/s), adds mild speed fluctuation.
    """

    blocks_x: int = 4
    blocks_y: int = 4
    block_size_m: float = 200.0
    speed_mean_mps: float = 13.9
    speed_stddev_mps: float = 2.0
    min_speed_mps: float = 5.0
    p_straight: float = 0.5
    p_turn: float = 0.5
    speed_relaxation: float = 0.5

    @property
    def width_m(self) -> float:
        """Extent of the grid along x."""
        return self.blocks_x * self.block_size_m

    @property
    def height_m(self) -> float:
        """Extent of the grid along y."""
        return self.blocks_y * self.block_size_m


class ManhattanMobility:
    """Vehicles on a regular street grid with random turns at intersections."""

    def __init__(
        self,
        config: Optional[ManhattanConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config if config is not None else ManhattanConfig()
        if rng is None:
            # No fixed-seed fallback: scenario.seed must reach every turn
            # decision (see the PR 2 random-waypoint regression).
            raise ValueError(
                "ManhattanMobility needs the simulator's seeded 'mobility' "
                "stream (rng=sim.rng.stream('mobility'))"
            )
        self._rng = rng
        self.vehicles: List[VehicleState] = []
        self._directions: dict[int, Tuple[int, int]] = {}
        self._next_vid = 0
        self.time = 0.0

    # ----------------------------------------------------------------- fleet
    def add_vehicle(
        self,
        position: Optional[Vec2] = None,
        speed: Optional[float] = None,
    ) -> VehicleState:
        """Add a vehicle; a random intersection and direction are used by default."""
        cfg = self.config
        if position is None:
            ix = self._rng.randint(0, cfg.blocks_x)
            iy = self._rng.randint(0, cfg.blocks_y)
            position = Vec2(ix * cfg.block_size_m, iy * cfg.block_size_m)
        desired = max(
            cfg.min_speed_mps, self._rng.gauss(cfg.speed_mean_mps, cfg.speed_stddev_mps)
        )
        if speed is None:
            speed = desired
        valid = self._valid_directions(position)
        direction = self._rng.choice(valid) if valid else self._rng.choice(_DIRECTIONS)
        vehicle = VehicleState(
            vid=self._next_vid,
            position=position,
            speed=speed,
            desired_speed=desired,
            heading=math.atan2(direction[1], direction[0]),
            lane=-1,
        )
        self._directions[vehicle.vid] = direction
        self._next_vid += 1
        self.vehicles.append(vehicle)
        return vehicle

    # ------------------------------------------------------------------ step
    def step(self, dt: float, now: float = 0.0) -> None:
        """Advance every vehicle by ``dt`` seconds."""
        self.time = now
        for vehicle in self.vehicles:
            self._step_vehicle(vehicle, dt)

    # -------------------------------------------------------------- internals
    def _step_vehicle(self, vehicle: VehicleState, dt: float) -> None:
        cfg = self.config
        # Mild speed fluctuation toward the desired speed.
        vehicle.speed += (
            cfg.speed_relaxation * (vehicle.desired_speed - vehicle.speed) * dt
            + self._rng.gauss(0.0, 0.2) * dt
        )
        vehicle.speed = max(cfg.min_speed_mps * 0.5, vehicle.speed)
        remaining = vehicle.speed * dt
        # A vehicle may cross more than one intersection in a long step.
        for _ in range(8):
            if remaining <= 1e-9:
                break
            direction = self._directions[vehicle.vid]
            distance_to_node = self._distance_to_next_intersection(vehicle.position, direction)
            if remaining < distance_to_node:
                vehicle.position = vehicle.position + Vec2(
                    direction[0] * remaining, direction[1] * remaining
                )
                remaining = 0.0
            else:
                vehicle.position = vehicle.position + Vec2(
                    direction[0] * distance_to_node, direction[1] * distance_to_node
                )
                remaining -= distance_to_node
                self._choose_direction(vehicle)
        direction = self._directions[vehicle.vid]
        vehicle.heading = math.atan2(direction[1], direction[0])
        vehicle.route_progress += vehicle.speed * dt

    def _distance_to_next_intersection(
        self, position: Vec2, direction: Tuple[int, int]
    ) -> float:
        block = self.config.block_size_m
        if direction[0] > 0:
            coordinate, limit = position.x, self.config.width_m
        elif direction[0] < 0:
            coordinate, limit = -position.x, 0.0
        elif direction[1] > 0:
            coordinate, limit = position.y, self.config.height_m
        else:
            coordinate, limit = -position.y, 0.0
        del limit
        # Distance to the next multiple of the block size strictly ahead.
        offset = coordinate % block
        distance = block - offset
        if distance < 1e-9:
            distance = block
        return distance

    def _valid_directions(self, position: Vec2) -> List[Tuple[int, int]]:
        cfg = self.config
        valid: List[Tuple[int, int]] = []
        eps = 1e-6
        for dx, dy in _DIRECTIONS:
            nx = position.x + dx * eps
            ny = position.y + dy * eps
            if -eps <= nx <= cfg.width_m + eps and -eps <= ny <= cfg.height_m + eps:
                # Vehicles may only travel along streets: movement in x requires
                # sitting on a horizontal street (y multiple of block) and vice versa.
                on_horizontal = abs(position.y % cfg.block_size_m) < 1e-6 or abs(
                    cfg.block_size_m - (position.y % cfg.block_size_m)
                ) < 1e-6
                on_vertical = abs(position.x % cfg.block_size_m) < 1e-6 or abs(
                    cfg.block_size_m - (position.x % cfg.block_size_m)
                ) < 1e-6
                if dx != 0 and not on_horizontal:
                    continue
                if dy != 0 and not on_vertical:
                    continue
                if (dx > 0 and position.x >= cfg.width_m - eps) or (
                    dx < 0 and position.x <= eps
                ):
                    continue
                if (dy > 0 and position.y >= cfg.height_m - eps) or (
                    dy < 0 and position.y <= eps
                ):
                    continue
                valid.append((dx, dy))
        return valid

    def _choose_direction(self, vehicle: VehicleState) -> None:
        cfg = self.config
        current = self._directions[vehicle.vid]
        options = self._valid_directions(vehicle.position)
        if not options:
            # Completely boxed in (should not happen on a grid): turn around.
            self._directions[vehicle.vid] = (-current[0], -current[1])
            return
        straight = current if current in options else None
        reverse = (-current[0], -current[1])
        turns = [d for d in options if d != straight and d != reverse]
        draw = self._rng.random()
        if straight is not None and draw < cfg.p_straight:
            chosen = straight
        elif turns and draw < cfg.p_straight + cfg.p_turn:
            chosen = self._rng.choice(turns)
        elif reverse in options and draw >= cfg.p_straight + cfg.p_turn:
            # The residual 1 - p_straight - p_turn probability mass is a
            # U-turn; it must not silently fall through to a turn.
            chosen = reverse
        elif turns:
            chosen = self._rng.choice(turns)
        elif straight is not None:
            chosen = straight
        else:
            chosen = reverse if reverse in options else self._rng.choice(options)
        self._directions[vehicle.vid] = chosen
