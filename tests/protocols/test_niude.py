"""Tests for the NiuDe (DeReQ) QoS routing protocol."""

import pytest

from repro.geometry import Vec2
from repro.protocols.probability import NiuDeConfig, NiuDeProtocol
from tests.helpers import build_static_network, line_positions, run_data_flow

SPACING = 200.0


class TestNiuDeMetric:
    def _protocol(self, config=None) -> NiuDeProtocol:
        sim, network, stats, nodes = build_static_network(
            line_positions(2, SPACING), protocol="NiuDe", protocol_config=config
        )
        return nodes[0].protocol

    def test_metric_is_a_probability(self):
        protocol = self._protocol()
        value = protocol.link_metric(Vec2(100, 0), Vec2(30, 0), Vec2(0, 0), Vec2(-30, 0), {})
        assert 0.0 <= value <= 1.0

    def test_co_moving_link_more_reliable_than_opposing(self):
        protocol = self._protocol(NiuDeConfig(qos_horizon_s=20.0))
        same = protocol.link_metric(Vec2(200, 0), Vec2(30, 0), Vec2(0, 0), Vec2(30, 0), {})
        opposite = protocol.link_metric(Vec2(200, 0), Vec2(30, 0), Vec2(0, 0), Vec2(-30, 0), {})
        assert same > opposite

    def test_path_reliability_is_a_product(self):
        protocol = self._protocol()
        assert protocol.initial_metric() == 1.0
        assert protocol.accumulate_metric(0.9, 0.5) == pytest.approx(0.45)

    def test_delay_budget_penalises_long_paths(self):
        config = NiuDeConfig(max_delay_s=0.05, per_hop_delay_s=0.02)
        protocol = self._protocol(config)
        short_path = [1, 2, 3]          # 2 hops -> 0.04 s, within budget
        long_path = [1, 2, 3, 4, 5]     # 4 hops -> 0.08 s, over budget
        assert protocol.path_score(0.8, short_path) > protocol.path_score(0.99, long_path)
        assert protocol.estimated_path_delay(long_path) == pytest.approx(0.08)

    def test_route_lifetime_scales_with_reliability(self):
        protocol = self._protocol(NiuDeConfig(qos_horizon_s=10.0))
        assert protocol._route_lifetime_from_metric(0.9) == pytest.approx(9.0)
        assert protocol._route_lifetime_from_metric(0.05) >= 0.5


class TestNiuDeEndToEnd:
    def test_delivery_on_a_static_line(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(5, SPACING), protocol="NiuDe"
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_registered_in_probability_category(self):
        from repro.core.taxonomy import Category, global_registry

        assert global_registry.category_of("NiuDe") is Category.PROBABILITY
