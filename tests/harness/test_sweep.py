"""Tests for the replication-aware parallel sweep layer."""

import json
import multiprocessing
import pickle
import sys
import time

import pytest

from repro.harness.reporting import (
    rows_from_json,
    rows_to_json,
    sweep_from_json,
    sweep_to_csv,
    sweep_to_json,
)
from repro.harness.runner import RunRecord
from repro.harness.scenario import Scenario, highway_scenario
from repro.harness.sweep import (
    MetricAggregate,
    ReplicatedResult,
    SweepCell,
    SweepResult,
    aggregate_records,
    build_matrix,
    execute_cells,
    run_cell,
    sweep_replications,
    t_critical_95,
)
from repro.mobility.generator import TrafficDensity
from repro.store.schema import KNOWN_RECORD_SCHEMA_VERSIONS, RECORD_SCHEMA_VERSION

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="process-pool tests assume a POSIX fork context"
)


def _tiny_scenario(name: str = "tiny") -> Scenario:
    return highway_scenario(
        TrafficDensity.SPARSE,
        name=name,
        duration_s=6.0,
        max_vehicles=15,
        default_flow_count=2,
    )


def _record(scenario="s", protocol="P", seed=1, **metrics):
    return RunRecord(
        scenario_name=scenario, protocol=protocol, seed=seed, summary=dict(metrics)
    )


# ----------------------------------------------------------------- workers
def _double(value: int) -> int:
    """Module-level so it can be pickled into pool workers."""
    return value * 2


def _sleep_cell(seconds: float) -> float:
    """Module-level sleep worker used by the wall-clock speedup test."""
    time.sleep(seconds)
    return seconds


class TestMatrix:
    def test_matrix_is_scenario_major_then_protocol_then_seed(self):
        cells = build_matrix(
            [_tiny_scenario("a"), _tiny_scenario("b")], ["P1", "P2"], [1, 2]
        )
        assert len(cells) == 8
        assert [(c.scenario.name, c.protocol, c.scenario.seed) for c in cells[:4]] == [
            ("a", "P1", 1),
            ("a", "P1", 2),
            ("a", "P2", 1),
            ("a", "P2", 2),
        ]

    def test_matrix_overrides_scenario_seed(self):
        base = _tiny_scenario().with_overrides(seed=999)
        cells = build_matrix([base], ["P"], [5, 6])
        assert [c.scenario.seed for c in cells] == [5, 6]
        assert base.seed == 999  # the input scenario is untouched

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            build_matrix([_tiny_scenario()], ["P"], [])

    def test_duplicate_seeds_rejected(self):
        """A repeated seed reruns an identical deterministic cell, faking
        replications with zero added variance."""
        with pytest.raises(ValueError, match="unique"):
            build_matrix([_tiny_scenario()], ["P"], [5, 5])

    def test_duplicate_scenario_names_rejected(self):
        """Aggregation keys on the scenario name; two scenarios sharing one
        would be merged into a single corrupted cell."""
        with pytest.raises(ValueError, match="unique"):
            build_matrix([_tiny_scenario("dup"), _tiny_scenario("dup")], ["P"], [1])

    def test_cells_are_picklable(self):
        cells = build_matrix([_tiny_scenario()], ["Greedy"], [1])
        clone = pickle.loads(pickle.dumps(cells[0]))
        assert isinstance(clone, SweepCell)
        assert clone.scenario.name == cells[0].scenario.name

    def test_workload_axis_expands_between_protocol_and_seed(self):
        cells = build_matrix(
            [_tiny_scenario()], ["P1", "P2"], [1, 2], workloads=["cbr", "safety-beacon"]
        )
        assert len(cells) == 8
        assert [(c.protocol, c.scenario.workload, c.scenario.seed) for c in cells[:4]] == [
            ("P1", "cbr", 1),
            ("P1", "cbr", 2),
            ("P1", "safety-beacon", 1),
            ("P1", "safety-beacon", 2),
        ]

    def test_without_workload_axis_scenario_workload_is_kept(self):
        base = _tiny_scenario().with_overrides(workload="poisson")
        cells = build_matrix([base], ["P"], [1])
        assert cells[0].scenario.workload == "poisson"

    def test_duplicate_workloads_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            build_matrix([_tiny_scenario()], ["P"], [1], workloads=["cbr", "cbr"])

    def test_workload_axis_resets_foreign_workload_params(self):
        """The scenario's own workload_params belong to its workload; axis
        cells naming other kinds must not inherit them (they would be passed
        as unknown constructor keywords)."""
        base = _tiny_scenario().with_overrides(
            workload="safety-beacon", workload_params={"interval_s": 0.1}
        )
        cells = build_matrix([base], ["P"], [1], workloads=["cbr", "v2i"])
        assert all(c.scenario.workload_params == {} for c in cells)
        # Without the axis the parameters survive untouched.
        (kept,) = build_matrix([base], ["P"], [1])
        assert kept.scenario.workload_params == {"interval_s": 0.1}

    def test_radio_axis_expands_between_workload_and_seed(self):
        cells = build_matrix(
            [_tiny_scenario()],
            ["P1"],
            [1, 2],
            workloads=["cbr", "safety-beacon"],
            radios=["ideal-disk-250m", "dsrc-urban-nlos"],
        )
        assert len(cells) == 8
        combos = [
            (c.scenario.workload, c.scenario.radio_stack, c.scenario.seed) for c in cells
        ]
        assert combos[:4] == [
            ("cbr", "ideal-disk-250m", 1),
            ("cbr", "ideal-disk-250m", 2),
            ("cbr", "dsrc-urban-nlos", 1),
            ("cbr", "dsrc-urban-nlos", 2),
        ]
        assert combos[4][0] == "safety-beacon"

    def test_duplicate_radios_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            build_matrix(
                [_tiny_scenario()], ["P"], [1], radios=["nakagami", "nakagami"]
            )

    def test_radio_axis_resets_foreign_radio_params(self):
        """Same reset logic as the workload axis: radio_params parameterise
        the scenario's own stack, not the axis entries."""
        base = _tiny_scenario().with_overrides(
            radio_stack="nakagami", radio_params={"m": 1.0}
        )
        cells = build_matrix(
            [base], ["P"], [1], radios=["ideal-disk-250m", "dsrc-highway-los"]
        )
        assert all(c.scenario.radio_params == {} for c in cells)
        # Without the axis the scenario keeps its own stack and parameters.
        (kept,) = build_matrix([base], ["P"], [1])
        assert kept.scenario.radio_stack == "nakagami"
        assert kept.scenario.radio_params == {"m": 1.0}


class TestExecuteCells:
    def test_serial_execution_preserves_order(self):
        assert execute_cells([3, 1, 2], _double, workers=1) == [6, 2, 4]

    def test_parallel_execution_matches_serial(self):
        items = list(range(10))
        assert execute_cells(items, _double, workers=4) == execute_cells(
            items, _double, workers=1
        )

    def test_four_workers_give_2x_speedup_on_four_cells(self):
        """Acceptance: wall-clock speedup >= 2x at 4 workers on a 4-cell matrix.

        The cells sleep rather than spin so the test measures executor
        concurrency (the property under test) instead of core count, and the
        0.5 s cells leave ~1 s of pool-startup/scheduling headroom inside
        the 2x bound on a loaded CI runner.  The fork context makes worker
        startup cheap and lets the pool pickle this test module's worker on
        platforms whose default start method is spawn/forkserver.
        """
        fork = multiprocessing.get_context("fork")
        cells = [0.5] * 4
        started = time.perf_counter()
        execute_cells(cells, _sleep_cell, workers=1)
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        execute_cells(cells, _sleep_cell, workers=4, mp_context=fork)
        parallel_s = time.perf_counter() - started
        assert serial_s / parallel_s >= 2.0


class TestAggregation:
    def test_t_critical_values(self):
        assert t_critical_95(1) == 0.0
        assert t_critical_95(2) == pytest.approx(12.706)
        assert t_critical_95(4) == pytest.approx(3.182)
        assert t_critical_95(1000) == pytest.approx(1.960)

    def test_metric_aggregate_against_hand_computed_values(self):
        # values 1, 2, 3: mean 2, sample stddev 1, CI95 = 4.303 * 1 / sqrt(3)
        aggregate = MetricAggregate.of([1.0, 2.0, 3.0])
        assert aggregate.n == 3
        assert aggregate.mean == pytest.approx(2.0)
        assert aggregate.stddev == pytest.approx(1.0)
        assert aggregate.ci95 == pytest.approx(4.303 / 3**0.5, rel=1e-6)

    def test_single_sample_has_zero_spread(self):
        aggregate = MetricAggregate.of([0.75])
        assert aggregate.mean == pytest.approx(0.75)
        assert aggregate.stddev == 0.0
        assert aggregate.ci95 == 0.0

    def test_empty_sample(self):
        assert MetricAggregate.of([]) == MetricAggregate(0.0, 0.0, 0.0, 0)

    def test_aggregate_records_groups_by_cell(self):
        records = [
            _record(protocol="A", seed=1, delivery_ratio=0.4),
            _record(protocol="A", seed=2, delivery_ratio=0.6),
            _record(protocol="B", seed=1, delivery_ratio=0.9),
        ]
        replicated = aggregate_records(records)
        assert [(r.protocol, r.seeds) for r in replicated] == [("A", (1, 2)), ("B", (1,))]
        a = replicated[0]
        assert a.metric("delivery_ratio").mean == pytest.approx(0.5)
        assert a.metric("delivery_ratio").n == 2
        assert a.replications == 2

    def test_metrics_present_in_only_some_seeds_use_available_values(self):
        first = _record(seed=1, delivery_ratio=0.4)
        second = RunRecord(
            scenario_name="s",
            protocol="P",
            seed=2,
            summary={"delivery_ratio": 0.6},
            extra={"path_stretch": 1.5},
        )
        (replicated,) = aggregate_records([first, second])
        assert replicated.metric("path_stretch").n == 1
        assert replicated.metric("path_stretch").mean == pytest.approx(1.5)

    def test_row_flattens_mean_and_ci(self):
        (replicated,) = aggregate_records(
            [_record(seed=s, delivery_ratio=v) for s, v in ((1, 0.4), (2, 0.6))]
        )
        row = replicated.row(["delivery_ratio"])
        assert row["scenario"] == "s"
        assert row["replications"] == 2
        assert row["delivery_ratio_mean"] == pytest.approx(0.5)
        assert row["delivery_ratio_ci95"] > 0.0
        assert row["delivery_ratio_n"] == 2

    def test_row_exposes_per_metric_sample_size(self):
        """A metric absent from some seeds must not masquerade as aggregated
        over all replications."""
        first = _record(seed=1, delivery_ratio=0.4)
        second = RunRecord(
            scenario_name="s",
            protocol="P",
            seed=2,
            summary={"delivery_ratio": 0.6},
            extra={"path_stretch": 1.5},
        )
        (replicated,) = aggregate_records([first, second])
        row = replicated.row(["path_stretch"])
        assert row["replications"] == 2
        assert row["path_stretch_n"] == 1


class TestSweepReplications:
    def test_parallel_and_serial_sweeps_are_byte_identical(self):
        """Acceptance: workers=4 and workers=1 must aggregate identically."""
        scenarios = [_tiny_scenario()]
        protocols = ["Greedy", "Flooding"]
        seeds = [1, 2]
        serial = sweep_replications(scenarios, protocols, seeds, workers=1)
        parallel = sweep_replications(scenarios, protocols, seeds, workers=4)
        serial_json = json.dumps(
            [r.to_dict() for r in serial.replicated], sort_keys=True
        )
        parallel_json = json.dumps(
            [r.to_dict() for r in parallel.replicated], sort_keys=True
        )
        assert serial_json == parallel_json
        # Per-run records agree as well, apart from host wall-clock timing.
        strip = lambda record: dict(record.to_dict(), wall_clock_s=0.0)  # noqa: E731
        assert list(map(strip, serial.records)) == list(map(strip, parallel.records))

    def test_sweep_runs_every_cell_and_aggregates_seeds(self):
        result = sweep_replications([_tiny_scenario()], ["Greedy"], [1, 2, 3])
        assert [r.seed for r in result.records] == [1, 2, 3]
        (replicated,) = result.replicated
        assert replicated.seeds == (1, 2, 3)
        assert replicated.metric("delivery_ratio").n == 3

    def test_run_cell_uses_a_fresh_runner(self):
        cell = build_matrix([_tiny_scenario()], ["Greedy"], [1])[0]
        assert run_cell(cell).summary == run_cell(cell).summary

    def test_workload_axis_aggregates_per_workload_cell(self):
        result = sweep_replications(
            [_tiny_scenario()], ["Greedy"], [1, 2], workloads=["cbr", "safety-beacon"]
        )
        assert len(result.records) == 4
        assert [(r.workload, r.seed) for r in result.records] == [
            ("cbr", 1), ("cbr", 2), ("safety-beacon", 1), ("safety-beacon", 2),
        ]
        assert [(r.workload, r.seeds) for r in result.replicated] == [
            ("cbr", (1, 2)), ("safety-beacon", (1, 2)),
        ]
        for row in result.rows(["delivery_ratio"]):
            assert row["workload"] in ("cbr", "safety-beacon")

    def test_radio_axis_aggregates_per_radio_cell(self):
        result = sweep_replications(
            [_tiny_scenario()],
            ["Greedy"],
            [1, 2],
            radios=["ideal-disk-250m", "dsrc-congested"],
        )
        assert len(result.records) == 4
        assert [(r.radio, r.seed) for r in result.records] == [
            ("ideal-disk-250m", 1), ("ideal-disk-250m", 2),
            ("dsrc-congested", 1), ("dsrc-congested", 2),
        ]
        assert [(r.radio, r.seeds) for r in result.replicated] == [
            ("ideal-disk-250m", (1, 2)), ("dsrc-congested", (1, 2)),
        ]
        for row in result.rows(["delivery_ratio"]):
            assert row["radio"] in ("ideal-disk-250m", "dsrc-congested")

    def test_parallel_and_serial_radio_sweeps_are_byte_identical(self):
        """The PR 2 equivalence guarantee extends to non-default radios: the
        random channel models (shadowing, fading, probabilistic reception)
        must draw only from per-run seeded streams, never from schedule- or
        process-dependent state."""
        scenarios = [_tiny_scenario()]
        serial = sweep_replications(
            scenarios, ["Greedy"], [1, 2], workers=1,
            radios=["dsrc-urban-nlos", "nakagami"],
        )
        parallel = sweep_replications(
            scenarios, ["Greedy"], [1, 2], workers=2,
            radios=["dsrc-urban-nlos", "nakagami"],
        )
        strip = lambda record: dict(record.to_dict(), wall_clock_s=0.0)  # noqa: E731
        assert list(map(strip, serial.records)) == list(map(strip, parallel.records))
        assert [r.to_dict() for r in serial.replicated] == [
            r.to_dict() for r in parallel.replicated
        ]

    def test_parallel_and_serial_workload_sweeps_are_byte_identical(self):
        """The PR 2 equivalence guarantee extends to non-cbr workloads: the
        workload axis must not introduce schedule-dependent randomness."""
        scenarios = [_tiny_scenario().with_overrides(rsu_spacing_m=800.0)]
        serial = sweep_replications(
            scenarios, ["Greedy"], [1, 2], workers=1, workloads=["safety-beacon", "v2i"]
        )
        parallel = sweep_replications(
            scenarios, ["Greedy"], [1, 2], workers=2, workloads=["safety-beacon", "v2i"]
        )
        strip = lambda record: dict(record.to_dict(), wall_clock_s=0.0)  # noqa: E731
        assert list(map(strip, serial.records)) == list(map(strip, parallel.records))
        assert [r.to_dict() for r in serial.replicated] == [
            r.to_dict() for r in parallel.replicated
        ]


class TestPersistence:
    def _sweep_result(self):
        records = [
            _record(seed=1, delivery_ratio=0.4, mean_delay_s=0.2),
            _record(seed=2, delivery_ratio=0.6, mean_delay_s=0.4),
        ]
        return SweepResult(records=records, replicated=aggregate_records(records))

    def test_sweep_json_round_trip(self, tmp_path):
        result = self._sweep_result()
        path = tmp_path / "sweep.json"
        sweep_to_json(path, result)
        loaded = sweep_from_json(path)
        assert loaded.records == result.records
        assert loaded.replicated == result.replicated

    def test_sweep_csv_contains_aggregate_columns(self, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(path, self._sweep_result(), metric_names=["delivery_ratio"])
        header, row = path.read_text().strip().splitlines()
        assert header == (
            "scenario,protocol,workload,radio,replications,"
            "delivery_ratio_mean,delivery_ratio_ci95,delivery_ratio_n"
        )
        assert row.startswith("s,P,cbr,ideal-disk-250m,2,0.5")

    def test_rows_json_round_trip(self, tmp_path):
        rows = [{"vehicles": 100, "speedup": 5.9}, {"vehicles": 400, "speedup": 6.2}]
        path = tmp_path / "rows.json"
        rows_to_json(path, rows, metadata={"benchmark": "medium_scaling"})
        assert rows_from_json(path) == rows
        payload = json.loads(path.read_text())
        assert payload["metadata"]["benchmark"] == "medium_scaling"

    def test_replicated_result_dict_round_trip(self):
        (replicated,) = aggregate_records(
            [_record(seed=1, delivery_ratio=0.5), _record(seed=2, delivery_ratio=0.7)]
        )
        assert ReplicatedResult.from_dict(replicated.to_dict()) == replicated

    def test_records_are_picklable(self):
        record = _record(delivery_ratio=0.5)
        assert pickle.loads(pickle.dumps(record)) == record


class TestSchemaVersioning:
    """Persisted payloads carry an explicit schema version; readers are picky."""

    def test_record_payload_is_stamped(self):
        payload = _record(delivery_ratio=0.5).to_dict()
        assert payload["schema_version"] == RECORD_SCHEMA_VERSION

    def test_sweep_payload_is_stamped(self, tmp_path):
        records = [_record(seed=1, delivery_ratio=0.4)]
        result = SweepResult(records=records, replicated=aggregate_records(records))
        path = tmp_path / "sweep.json"
        sweep_to_json(path, result)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == RECORD_SCHEMA_VERSION
        assert payload["records"][0]["schema_version"] == RECORD_SCHEMA_VERSION

    def test_record_from_dict_rejects_unknown_version(self):
        payload = dict(_record().to_dict(), schema_version=99)
        with pytest.raises(ValueError, match="schema_version 99"):
            RunRecord.from_dict(payload)

    def test_record_from_dict_rejects_non_integer_version(self):
        payload = dict(_record().to_dict(), schema_version="two")
        with pytest.raises(ValueError, match="non-integer"):
            RunRecord.from_dict(payload)

    def test_unstamped_legacy_record_still_loads(self):
        payload = _record(delivery_ratio=0.5).to_dict()
        del payload["schema_version"]
        assert RunRecord.from_dict(payload) == _record(delivery_ratio=0.5)

    def test_sweep_from_json_rejects_unknown_version(self, tmp_path):
        records = [_record(seed=1)]
        result = SweepResult(records=records, replicated=aggregate_records(records))
        path = tmp_path / "sweep.json"
        sweep_to_json(path, result)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="sweep artifact has schema_version 99"):
            sweep_from_json(path)

    def test_error_names_the_versions_this_build_reads(self):
        with pytest.raises(ValueError) as excinfo:
            RunRecord.from_dict(dict(_record().to_dict(), schema_version=99))
        message = str(excinfo.value)
        for version in KNOWN_RECORD_SCHEMA_VERSIONS:
            assert str(version) in message
