"""Static-analysis devtools: the determinism & registry-contract linter.

The platform's core promise -- byte-identical traces across spatial
backends, serial-vs-parallel sweeps, and radio presets -- rests on a small
set of authoring-time invariants (all randomness flows from
:mod:`repro.sim.rng`, dBm<->mW conversions stay on the libm bit-exactness
path, no ambient wall-clock or environment state in the simulation core,
every pluggable component is registered).  Historically those invariants
were tribal knowledge enforced by regression tests after the fact; this
package makes them machine-checked at authoring time.

The linter is an AST pass over plain source text (stdlib :mod:`ast`, no
third-party dependencies) with a pluggable rule registry mirroring the
protocol / scenario / workload / radio registries:

>>> from repro.devtools import lint_paths
>>> report = lint_paths(["src/repro"])
>>> report.clean
True

Run it from the command line as ``python -m repro.devtools.lint src/repro``
or via the CLI verbs ``repro-vanet lint`` / ``repro-vanet list-lint-rules``.
Violations that are genuinely inert are suppressed per line with a
justified pragma::

    rng = random.Random(0)  # repro-lint: ok RNG-001 -- catalogue listing only

See the README's "Static analysis" section for the rule catalogue.
"""

from __future__ import annotations

from repro.devtools.base import LintRule, ParsedModule, ProjectContext
from repro.devtools.engine import LintReport, lint_paths, lint_sources
from repro.devtools.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.devtools.registry import (
    LINT_RULES,
    available_lint_rules,
    register_lint_rule,
    rule_rows,
    unregister_lint_rule,
)

__all__ = [
    "Finding",
    "LINT_RULES",
    "LintReport",
    "LintRule",
    "ParsedModule",
    "ProjectContext",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "available_lint_rules",
    "lint_paths",
    "lint_sources",
    "register_lint_rule",
    "rule_rows",
    "unregister_lint_rule",
]
