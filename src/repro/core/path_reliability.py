"""Composition of link metrics into path metrics.

Two composition rules recur throughout the survey:

* The lifetime of a path is the *minimum* lifetime of its links
  (Sec. IV.A.1) -- selecting the best path is therefore a widest
  (maximum-bottleneck) path problem.
* The reliability of a path is the *product* of its links' availability
  probabilities (Sec. VII) -- selecting the best path is a shortest-path
  problem on ``-log`` probabilities.

Both selections are implemented here on top of ``networkx`` so every
probability/mobility protocol and the benchmarks share one implementation.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

LinkKey = Tuple[Hashable, Hashable]


def path_lifetime(link_lifetimes: Sequence[float]) -> float:
    """Path lifetime = minimum link lifetime (0 for an empty path)."""
    if not link_lifetimes:
        return 0.0
    return min(link_lifetimes)


def path_reliability(link_probabilities: Sequence[float]) -> float:
    """Path reliability = product of link availability probabilities."""
    result = 1.0
    for probability in link_probabilities:
        if probability < 0.0 or probability > 1.0:
            raise ValueError(f"link probability {probability} outside [0, 1]")
        result *= probability
    return result


def _build_graph(
    links: Dict[LinkKey, float],
) -> nx.Graph:
    graph = nx.Graph()
    for (a, b), value in links.items():
        graph.add_edge(a, b, value=value)
    return graph


def widest_lifetime_path(
    links: Dict[LinkKey, float], source: Hashable, destination: Hashable
) -> Tuple[List[Hashable], float]:
    """Path maximising the minimum link lifetime.

    Args:
        links: Mapping of (node, node) to the link's (predicted) lifetime.
        source: Path start node.
        destination: Path end node.

    Returns:
        ``(path, bottleneck_lifetime)``.  Raises ``nx.NetworkXNoPath`` when
        the destination is unreachable.
    """
    graph = _build_graph(links)
    if source not in graph or destination not in graph:
        raise nx.NetworkXNoPath(f"no path between {source} and {destination}")
    # Binary search over distinct lifetimes would be faster asymptotically;
    # a modified Dijkstra (maximise the minimum) is simpler and fast enough.
    best_bottleneck: Dict[Hashable, float] = {source: math.inf}
    predecessor: Dict[Hashable, Hashable] = {}
    import heapq

    heap: List[Tuple[float, Hashable]] = [(-math.inf, source)]
    visited: set = set()
    while heap:
        negative_bottleneck, node = heapq.heappop(heap)
        bottleneck = -negative_bottleneck
        if node in visited:
            continue
        visited.add(node)
        if node == destination:
            break
        for neighbour in graph.neighbors(node):
            if neighbour in visited:
                continue
            lifetime = graph.edges[node, neighbour]["value"]
            candidate = min(bottleneck, lifetime)
            if candidate > best_bottleneck.get(neighbour, -math.inf):
                best_bottleneck[neighbour] = candidate
                predecessor[neighbour] = node
                heapq.heappush(heap, (-candidate, neighbour))
    if destination not in best_bottleneck:
        raise nx.NetworkXNoPath(f"no path between {source} and {destination}")
    path = [destination]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    return path, best_bottleneck[destination]


def most_reliable_path(
    links: Dict[LinkKey, float], source: Hashable, destination: Hashable
) -> Tuple[List[Hashable], float]:
    """Path maximising the product of link probabilities.

    Args:
        links: Mapping of (node, node) to the link availability probability.
        source: Path start node.
        destination: Path end node.

    Returns:
        ``(path, reliability)``.  Raises ``nx.NetworkXNoPath`` when no path
        with strictly positive reliability exists.
    """
    graph = nx.Graph()
    for (a, b), probability in links.items():
        if probability < 0.0 or probability > 1.0:
            raise ValueError(f"link probability {probability} outside [0, 1]")
        if probability <= 0.0:
            continue
        graph.add_edge(a, b, weight=-math.log(probability))
    if source not in graph or destination not in graph:
        raise nx.NetworkXNoPath(f"no path between {source} and {destination}")
    path = nx.shortest_path(graph, source, destination, weight="weight")
    cost = nx.shortest_path_length(graph, source, destination, weight="weight")
    return list(path), math.exp(-cost)


def minimum_delay_path_with_reliability(
    delay_links: Dict[LinkKey, float],
    reliability_links: Dict[LinkKey, float],
    source: Hashable,
    destination: Hashable,
    min_reliability: float,
) -> Optional[Tuple[List[Hashable], float, float]]:
    """Smallest-delay path whose reliability meets a threshold (GVGrid-style QoS).

    Enumerate paths in increasing delay order (via Yen's algorithm as
    provided by networkx ``shortest_simple_paths``) and return the first one
    whose reliability is at least ``min_reliability``.  Returns ``None`` when
    no such path exists among the first 50 candidates.
    """
    graph = nx.Graph()
    for (a, b), delay in delay_links.items():
        graph.add_edge(a, b, delay=delay)
    if source not in graph or destination not in graph:
        return None

    def reliability_of(path: List[Hashable]) -> float:
        probabilities = []
        for a, b in zip(path, path[1:]):
            probability = reliability_links.get((a, b), reliability_links.get((b, a), 0.0))
            probabilities.append(probability)
        return path_reliability(probabilities)

    try:
        candidates: Iterable[List[Hashable]] = nx.shortest_simple_paths(
            graph, source, destination, weight="delay"
        )
    except nx.NetworkXNoPath:
        return None
    for index, path in enumerate(candidates):
        if index >= 50:
            break
        reliability = reliability_of(list(path))
        if reliability >= min_reliability:
            delay = sum(
                graph.edges[a, b]["delay"] for a, b in zip(path, path[1:])
            )
            return list(path), delay, reliability
    return None
