"""Greedy geographic forwarding (Gong [23], Lochert [24]; GPSR-style).

Each vehicle beacons its position; data packets are forwarded to the
neighbour that is geographically closest to the destination ("vehicles
transmit packets aggressively toward the destination").  Following the
predictive-directional variant of Gong et al., the next-hop score can also
reward neighbours moving toward the destination, which "helps to select
long-lived links".  When no neighbour makes progress (a local maximum) the
packet is either briefly carried (store-carry-forward recovery) or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.taxonomy import Category, register_protocol
from repro.geometry import Vec2
from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import DuplicateCache
from repro.protocols.location import LocationService
from repro.protocols.neighbors import BeaconService, NeighborEntry
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import Packet


@dataclass
class GreedyConfig(ProtocolConfig):
    """Greedy forwarding parameters.

    Attributes:
        direction_weight: Weight of the "neighbour moving toward the
            destination" bonus (0 = plain greedy, GPSR-style).
        carry_on_local_maximum: Whether packets stuck at a local maximum are
            carried and retried instead of dropped.
        carry_timeout_s: How long a stuck packet may be carried.
        carry_retry_interval_s: How often carried packets are retried.
    """

    direction_weight: float = 0.2
    carry_on_local_maximum: bool = True
    carry_timeout_s: float = 10.0
    carry_retry_interval_s: float = 1.0
    #: Neighbours estimated to be farther than this are not used as next hops
    #: (edge-of-range candidates are likely to have drifted out of range since
    #: their last beacon).
    max_neighbor_distance_m: float = 230.0


@register_protocol(
    "Greedy",
    Category.GEOGRAPHIC,
    "Greedy position-based forwarding with a predictive-direction bonus and "
    "store-carry recovery at local maxima.",
    paper_reference="[23][24], Sec. VI.B",
)
class GreedyProtocol(RoutingProtocol):
    """Greedy geographic forwarding."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[GreedyConfig] = None,
        location_service: Optional[LocationService] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else GreedyConfig())
        self.location = (
            location_service if location_service is not None else LocationService(network)
        )
        self.beacons = BeaconService(
            self,
            interval_s=self.config.hello_interval_s,
            timeout_s=self.config.neighbor_timeout_s,
        )
        self._seen = DuplicateCache(lifetime_s=30.0)
        self._carried: List[Tuple[float, Packet]] = []
        self._carry_task = None

    # ------------------------------------------------------------------ setup
    def start(self) -> None:
        """Start beaconing and, if enabled, the carried-packet retry loop."""
        super().start()
        self.beacons.start()
        cfg: GreedyConfig = self.config  # type: ignore[assignment]
        if cfg.carry_on_local_maximum:
            self._carry_task = self.sim.schedule_periodic(
                cfg.carry_retry_interval_s,
                self._retry_carried,
                start_delay=cfg.carry_retry_interval_s,
                jitter=0.2,
                rng_stream=f"greedy-carry-{self.node.node_id}",
            )

    def stop(self) -> None:
        """Stop timers."""
        super().stop()
        self.beacons.stop()
        if self._carry_task is not None:
            self._carry_task.cancel()
            self._carry_task = None

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Forward greedily toward the destination's position."""
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        self._seen.seen((packet.flow_key, self.node.node_id), self.now)
        self._forward(packet)

    # -------------------------------------------------------------- reception
    def handle_packet(self, packet: Packet, sender_id: int) -> None:
        """Handle beacons and data."""
        if packet.ptype == "HELLO":
            self.beacons.handle_beacon(packet, sender_id)
            return
        if not packet.is_data:
            return
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if self._seen.seen((packet.flow_key, self.node.node_id), self.now):
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        self._forward(packet.forwarded())

    # -------------------------------------------------------------- internals
    def select_next_hop(
        self, destination: int, destination_position: Vec2
    ) -> Optional[int]:
        """Best next hop by greedy progress plus the directional bonus."""
        cfg: GreedyConfig = self.config  # type: ignore[assignment]
        neighbors = self.beacons.neighbors()
        by_id = {entry.node_id: entry for entry in neighbors}
        if destination in by_id:
            return destination
        own_distance = self.node.position.distance_to(destination_position)
        best_id: Optional[int] = None
        best_score = 0.0
        for entry in neighbors:
            # Dead-reckon the neighbour forward from its last beacon so the
            # decision uses where it is now, not where it was up to a beacon
            # interval ago (at highway speeds that is tens of metres).
            neighbor_position = entry.predicted_position(self.now)
            if self.node.position.distance_to(neighbor_position) > cfg.max_neighbor_distance_m:
                continue
            progress = own_distance - neighbor_position.distance_to(destination_position)
            if progress <= 0:
                continue
            score = progress
            if cfg.direction_weight > 0 and entry.speed > 0.1:
                toward = (destination_position - neighbor_position).normalized()
                alignment = entry.velocity.normalized().dot(toward)
                score *= 1.0 + cfg.direction_weight * max(0.0, alignment)
            if score > best_score:
                best_score = score
                best_id = entry.node_id
        return best_id

    def _forward(self, packet: Packet) -> None:
        cfg: GreedyConfig = self.config  # type: ignore[assignment]
        destination_position = self.location.position_of(packet.destination)
        if destination_position is None:
            self.stats.no_route_drop()
            return
        next_hop = self.select_next_hop(packet.destination, destination_position)
        if next_hop is not None:
            self.unicast(packet, next_hop)
            return
        if cfg.carry_on_local_maximum:
            self.stats.store_carry()
            self._carried.append((self.now, packet))
        else:
            self.stats.no_route_drop()

    def _retry_carried(self) -> None:
        if not self._carried:
            return
        cfg: GreedyConfig = self.config  # type: ignore[assignment]
        still_carried: List[Tuple[float, Packet]] = []
        for carried_at, packet in self._carried:
            if self.now - carried_at > cfg.carry_timeout_s:
                self.stats.buffer_drop()
                continue
            destination_position = self.location.position_of(packet.destination)
            if destination_position is None:
                self.stats.no_route_drop()
                continue
            next_hop = self.select_next_hop(packet.destination, destination_position)
            if next_hop is not None:
                self.unicast(packet, next_hop)
            else:
                still_carried.append((carried_at, packet))
        self._carried = still_carried
