"""ExperimentStore unit tests: append/read, crash signatures, integrity."""

import json

import pytest

from repro.harness.runner import RunRecord
from repro.store.schema import RECORD_SCHEMA_VERSION
from repro.store.store import (
    MANIFEST_FILE,
    RECORDS_FILE,
    ExperimentStore,
    read_record_log,
    union_stores,
)


def _record(seed=1, protocol="P", **metrics):
    return RunRecord(
        scenario_name="s", protocol=protocol, seed=seed, summary=dict(metrics)
    )


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k1", _record(seed=1, delivery_ratio=0.5))
        store.append("k2", _record(seed=2, delivery_ratio=0.75))
        store.close()
        index = ExperimentStore(tmp_path / "store").load_index()
        assert list(index) == ["k1", "k2"]
        assert index["k1"] == _record(seed=1, delivery_ratio=0.5)

    def test_each_append_is_one_line(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k1", _record(seed=1))
        store.append("k2", _record(seed=2))
        store.close()
        lines = (tmp_path / "store" / RECORDS_FILE).read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["key"].startswith("k") for line in lines)

    def test_duplicate_key_last_write_wins(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k", _record(delivery_ratio=0.1))
        store.append("k", _record(delivery_ratio=0.9))
        store.close()
        index = store.load_index()
        assert len(index) == 1
        assert index["k"].summary["delivery_ratio"] == 0.9

    def test_empty_store(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        assert store.load_index() == {}
        assert len(store) == 0
        assert store.verify().ok

    def test_context_manager_closes(self, tmp_path):
        with ExperimentStore(tmp_path / "store") as store:
            store.append("k", _record())
        assert store._append_handle is None


class TestCrashSignatures:
    def test_truncated_tail_is_skipped(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k1", _record(seed=1))
        store.append("k2", _record(seed=2))
        store.close()
        path = tmp_path / "store" / RECORDS_FILE
        text = path.read_text()
        path.write_text(text + text[-40:].rstrip("\n"))  # half-written line
        index = store.load_index()
        assert list(index) == ["k1", "k2"]
        report = store.verify()
        assert report.ok  # a truncated tail is the expected crash signature
        assert report.truncated_tail

    def test_malformed_interior_line_is_reported(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k1", _record(seed=1))
        store.append("k2", _record(seed=2))
        store.close()
        path = tmp_path / "store" / RECORDS_FILE
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], "{not json", lines[1]]) + "\n")
        assert list(store.load_index()) == ["k1", "k2"]  # reads still work
        report = store.verify()
        assert not report.ok
        assert report.malformed_lines == [2]

    def test_unknown_schema_version_raises_on_read(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k1", _record())
        store.close()
        path = tmp_path / "store" / RECORDS_FILE
        entry = json.loads(path.read_text())
        entry["record"]["schema_version"] = 99
        path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(ValueError, match="schema_version 99"):
            store.load_index()
        report = store.verify()  # verify reports instead of raising
        assert not report.ok

    def test_unstamped_record_reads_as_v1(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k1", _record())
        store.close()
        path = tmp_path / "store" / RECORDS_FILE
        entry = json.loads(path.read_text())
        del entry["record"]["schema_version"]
        path.write_text(json.dumps(entry) + "\n")
        assert list(store.load_index()) == ["k1"]
        assert store.verify().schema_versions == {1: 1}


class TestManifest:
    def test_round_trip_and_stamp(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.write_manifest({"code_version": "abc", "matrix": {"total_cells": 4}})
        manifest = store.read_manifest()
        assert manifest["schema_version"] == RECORD_SCHEMA_VERSION
        assert manifest["code_version"] == "abc"

    def test_missing_manifest_is_none(self, tmp_path):
        assert ExperimentStore(tmp_path / "store").read_manifest() is None

    def test_no_tmp_file_left_behind(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.write_manifest({})
        assert sorted(p.name for p in store.path.iterdir()) == [MANIFEST_FILE]

    def test_unknown_manifest_version_raises(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.write_manifest({})
        payload = json.loads(store.manifest_path.read_text())
        payload["schema_version"] = 99
        store.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema_version 99"):
            store.read_manifest()


class TestContentDigest:
    def test_order_independent(self, tmp_path):
        a = ExperimentStore(tmp_path / "a")
        a.append("k1", _record(seed=1))
        a.append("k2", _record(seed=2))
        b = ExperimentStore(tmp_path / "b")
        b.append("k2", _record(seed=2))
        b.append("k1", _record(seed=1))
        assert a.content_digest() == b.content_digest()

    def test_wall_clock_ignored_by_default(self, tmp_path):
        a = ExperimentStore(tmp_path / "a")
        a.append("k", RunRecord("s", "P", 1, {}, wall_clock_s=1.0))
        b = ExperimentStore(tmp_path / "b")
        b.append("k", RunRecord("s", "P", 1, {}, wall_clock_s=9.0))
        assert a.content_digest() == b.content_digest()
        assert a.content_digest(include_wall_clock=True) != b.content_digest(
            include_wall_clock=True
        )

    def test_content_changes_digest(self, tmp_path):
        a = ExperimentStore(tmp_path / "a")
        a.append("k", _record(delivery_ratio=0.5))
        b = ExperimentStore(tmp_path / "b")
        b.append("k", _record(delivery_ratio=0.6))
        assert a.content_digest() != b.content_digest()


class TestModuleHelpers:
    def test_read_record_log_accepts_dir_and_file(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.append("k1", _record(seed=1))
        store.close()
        from_dir = read_record_log(tmp_path / "store")
        from_file = read_record_log(tmp_path / "store" / RECORDS_FILE)
        assert from_dir == from_file
        assert [key for key, _ in from_dir] == ["k1"]

    def test_read_record_log_rejects_other_files(self, tmp_path):
        other = tmp_path / "other.json"
        other.write_text("{}")
        with pytest.raises(ValueError, match="neither a store directory"):
            read_record_log(other)

    def test_union_stores_merges_missing_keys(self, tmp_path):
        a = ExperimentStore(tmp_path / "a")
        a.append("k1", _record(seed=1))
        b = ExperimentStore(tmp_path / "b")
        b.append("k2", _record(seed=2))
        b.append("k1", _record(seed=1, delivery_ratio=0.0))  # loser: k1 exists
        target = ExperimentStore(tmp_path / "u")
        target.append("k1", _record(seed=1))
        copied = union_stores(target, [a, b])
        assert copied == 1
        index = target.load_index()
        assert sorted(index) == ["k1", "k2"]
        assert "delivery_ratio" not in index["k1"].summary

    def test_parquet_export_requires_pyarrow(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            store = ExperimentStore(tmp_path / "store")
            store.append("k", _record())
            with pytest.raises(RuntimeError, match="requires pyarrow"):
                store.export_parquet()
        else:
            store = ExperimentStore(tmp_path / "store")
            store.append("k", _record(delivery_ratio=0.5))
            target = store.export_parquet()
            assert target.exists()


class TestImportOrder:
    def test_store_imports_before_harness(self):
        """Regression: importing the store first must not hit the
        store -> runner -> harness -> sweep -> store import cycle."""
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "from repro.store.store import ExperimentStore, union_stores\n"
            "from repro.store import cell_key\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": str(src)},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
