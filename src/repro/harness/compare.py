"""Category-level comparison (the measured counterpart of the paper's Table I)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.metrics import PAPER_TABLE_I
from repro.core.taxonomy import Category, global_registry
from repro.harness.runner import RunRecord, RunResult

#: Comparison helpers accept both the rich in-process result and the slim
#: picklable record produced by the parallel sweep layer; they only touch the
#: fields the two types share (scenario_name, protocol, summary, extra).
AnyResult = Union[RunResult, RunRecord]

#: The representative protocol the Table I benchmark runs for each category.
DEFAULT_REPRESENTATIVES: Dict[Category, str] = {
    Category.CONNECTIVITY: "AODV",
    Category.MOBILITY: "PBR",
    Category.INFRASTRUCTURE: "RSU-Relay",
    Category.GEOGRAPHIC: "Greedy",
    Category.PROBABILITY: "Yan-TBP",
}


def category_representatives(
    overrides: Optional[Dict[Category, str]] = None,
) -> Dict[Category, str]:
    """The protocol run for each category (defaults plus optional overrides)."""
    chosen = dict(DEFAULT_REPRESENTATIVES)
    if overrides:
        chosen.update(overrides)
    return chosen


def category_of_protocol(protocol_name: str) -> Category:
    """Taxonomy category of a protocol name."""
    return global_registry.category_of(protocol_name)


def category_comparison(results: Iterable[AnyResult]) -> List[Dict[str, object]]:
    """Aggregate run results into one row per (scenario, category).

    Multiple protocols of the same category in the same scenario are averaged.
    Each row also carries the paper's qualitative pros/cons so reports can
    print the claim next to the measurement.
    """
    grouped: Dict[tuple, List[AnyResult]] = {}
    for result in results:
        category = category_of_protocol(result.protocol)
        grouped.setdefault((result.scenario_name, category), []).append(result)
    rows: List[Dict[str, object]] = []
    for (scenario_name, category), bucket in sorted(
        grouped.items(), key=lambda item: (item[0][0], item[0][1].value)
    ):
        profile = PAPER_TABLE_I[category]
        def mean(metric: str) -> float:
            values = [r.summary.get(metric, 0.0) for r in bucket]
            return sum(values) / len(values)

        rows.append(
            {
                "scenario": scenario_name,
                "category": category.value,
                "protocols": ", ".join(sorted({r.protocol for r in bucket})),
                "delivery_ratio": mean("delivery_ratio"),
                "mean_delay_s": mean("mean_delay_s"),
                "overhead_ratio": mean("overhead_ratio"),
                "transmissions_per_delivery": mean("transmissions_per_delivery"),
                "mean_route_lifetime_s": mean("mean_route_lifetime_s"),
                "mac_collisions": mean("mac_collisions"),
                "path_stretch": sum(r.extra.get("path_stretch", 0.0) for r in bucket)
                / len(bucket),
                "paper_pros": ", ".join(profile.pros),
                "paper_cons": ", ".join(profile.cons),
            }
        )
    return rows


def best_in_metric(
    results: Sequence[AnyResult], metric: str, largest: bool = True
) -> Optional[AnyResult]:
    """The run with the best value of ``metric`` (None for an empty sequence)."""
    if not results:
        return None
    key = lambda r: r.summary.get(metric, 0.0)  # noqa: E731 - tiny comparator
    return max(results, key=key) if largest else min(results, key=key)
