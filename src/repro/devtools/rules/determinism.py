"""DET-001 / DET-002: no ambient state or unordered iteration in the core.

DET-001 flags wall-clock and environment reads (``time.time``,
``datetime.now``, ``os.environ`` / ``os.getenv``) inside the simulation
core: anything the event loop or a protocol reads from the host machine
makes two runs of the same seed diverge.  Wall-clock *measurement* of a
finished run (``wall_clock_s`` in the harness layer) is out of scope --
the rule only covers the deterministic-core packages.

DET-002 flags iteration over syntactically-unordered collections (set
literals, ``set(...)`` / ``frozenset(...)`` calls, set-algebra method
results) in the same packages.  Set iteration order depends on insertion
history and -- for strings -- ``PYTHONHASHSEED``; feeding it into event
scheduling or trace emission is a cross-process determinism hazard.
Wrapping the expression in ``sorted(...)`` satisfies the rule.  The check
is syntactic: it cannot see a set behind a plain variable name, so it
enforces the *authoring idiom* (build ordered sequences at the source).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Tuple

from repro.devtools.astutils import dotted_name
from repro.devtools.base import LintRule, ParsedModule
from repro.devtools.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.devtools.registry import register_lint_rule

#: The deterministic core: packages where a run's behaviour must be a pure
#: function of (scenario, seed).  The harness layer (wall-clock timing,
#: worker-count env vars) is intentionally outside it.
DETERMINISTIC_CORE_PREFIXES: Tuple[str, ...] = (
    "sim/",
    "protocols/",
    "workloads/",
    "mobility/",
    "radio/",
    "roadnet/",
)

#: Calls that read ambient wall-clock state.
_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Set-algebra methods whose results iterate in hash order.
_SET_ALGEBRA_METHODS: FrozenSet[str] = frozenset(
    {"difference", "intersection", "symmetric_difference", "union"}
)


def _in_core(module: ParsedModule) -> bool:
    return module.relpath.startswith(DETERMINISTIC_CORE_PREFIXES)


@register_lint_rule("DET-001")
class AmbientStateRule(LintRule):
    """Wall-clock or environment reads inside the deterministic core."""

    severity = SEVERITY_ERROR
    rationale = (
        "time.time/datetime.now/os.environ inside sim//protocols//workloads/ "
        "make a run depend on the host instead of (scenario, seed)"
    )
    historical_bug = (
        "the seed's PeriodicTask jitter debugging relied on wall-clock prints "
        "that masked the off-centre jitter distribution fixed in PR 1"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if not _in_core(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                qualified = dotted_name(node.func, module.imports)
                if qualified in _CLOCK_CALLS:
                    yield self.report(
                        module,
                        node,
                        f"{qualified}() reads the wall clock inside the "
                        "deterministic core; simulation time is sim.now, "
                        "wall-clock measurement belongs in the harness",
                    )
                elif qualified == "os.getenv":
                    yield self.report(
                        module,
                        node,
                        "os.getenv() inside the deterministic core makes run "
                        "behaviour depend on the host environment; thread "
                        "configuration through Scenario fields instead",
                    )
            elif isinstance(node, ast.Attribute):
                if dotted_name(node, module.imports) == "os.environ":
                    yield self.report(
                        module,
                        node,
                        "os.environ read inside the deterministic core; "
                        "thread configuration through Scenario fields instead",
                    )


@register_lint_rule("DET-002")
class UnorderedIterationRule(LintRule):
    """Iteration over syntactically-unordered sets in the core."""

    severity = SEVERITY_WARNING
    rationale = (
        "set iteration order depends on insertion history and PYTHONHASHSEED; "
        "feeding it into scheduling or trace emission forks runs -- iterate "
        "sorted(...) or an insertion-ordered sequence"
    )
    historical_bug = (
        "PR 4's frozen event-burst scopes originally iterated a raw receiver "
        "set, reordering app-layer sends between otherwise identical runs"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if not _in_core(module):
            return
        for node in ast.walk(module.tree):
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                reason = self._unordered_reason(iterable)
                if reason is not None:
                    yield self.report(
                        module,
                        iterable,
                        f"iteration over {reason} visits elements in hash "
                        "order; wrap it in sorted(...) or build an ordered "
                        "sequence at the source",
                    )

    @staticmethod
    def _unordered_reason(node: ast.expr) -> "str | None":
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a {func.id}(...) result"
            if isinstance(func, ast.Attribute) and func.attr in _SET_ALGEBRA_METHODS:
                return f"a .{func.attr}(...) result"
        return None
