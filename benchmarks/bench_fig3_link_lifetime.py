"""E3 -- Fig. 3: the lifetime of a communication link (Eqns. 1-4).

Fig. 3 sketches two vehicles whose link breaks when their separation reaches
the communication range under different speed/acceleration combinations.
This benchmark regenerates the quantitative counterpart: analytic lifetimes
from Eqn. 4 across sweeps of relative speed, initial gap and acceleration,
validated against a brute-force kinematic simulation, plus the lifetimes
actually measured between moving IDM vehicles on the highway model.

Expected shape: lifetime falls monotonically with relative speed, rises with
a smaller initial gap, acceleration shortens it further, and the analytic
value matches the simulated breakage time.
"""

from __future__ import annotations

import math

from repro.core.link_lifetime import LinkLifetimePredictor, link_lifetime_1d
from repro.geometry import Vec2
from repro.harness.sweep import MetricAggregate
from repro.mobility.generator import TrafficDensity, make_highway_scenario

from benchmarks.common import FIGURE_SEEDS, report, run_once

RANGE_M = 250.0


def _simulated_breakage(d0: float, dv: float, da: float, dt: float = 0.001) -> float:
    """Brute-force integration of the separation until it exceeds the range."""
    t, separation, speed = 0.0, d0, dv
    while abs(separation) <= RANGE_M and t < 600.0:
        separation += speed * dt + 0.5 * da * dt * dt
        speed += da * dt
        t += dt
    return t


def _analytic_sweep():
    rows = []
    for dv in (1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0):
        for d0 in (0.0, 100.0, 200.0):
            for da in (0.0, 0.5):
                analytic = link_lifetime_1d(d0, dv, da, RANGE_M)
                simulated = _simulated_breakage(d0, dv, da)
                rows.append(
                    {
                        "initial_gap_m": d0,
                        "relative_speed_mps": dv,
                        "relative_accel_mps2": da,
                        "analytic_lifetime_s": analytic,
                        "simulated_lifetime_s": simulated,
                        "abs_error_s": abs(analytic - simulated),
                    }
                )
    return rows


def _measured_highway_lifetimes(seed: int = 5):
    """Observed link durations between IDM vehicles, same vs. opposite direction."""
    highway = make_highway_scenario(TrafficDensity.NORMAL, seed=seed, max_vehicles=60)
    predictor = LinkLifetimePredictor(RANGE_M)
    vehicles = highway.vehicles
    # Track link up/down transitions over 120 s of mobility.
    active: dict = {}
    durations_same: list = []
    durations_opposite: list = []
    dt, steps = 0.5, 240
    for step in range(steps):
        highway.step(dt, now=step * dt)
        for i, a in enumerate(vehicles):
            for b in vehicles[i + 1 :]:
                key = (a.vid, b.vid)
                connected = a.position.distance_to(b.position) <= RANGE_M
                if connected and key not in active:
                    active[key] = step * dt
                elif not connected and key in active:
                    duration = step * dt - active.pop(key)
                    same_dir = abs(math.cos(a.heading - b.heading)) > 0.5 and math.cos(
                        a.heading - b.heading
                    ) > 0
                    (durations_same if same_dir else durations_opposite).append(duration)
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    return {
        "same_direction_links_observed": len(durations_same),
        "same_direction_mean_lifetime_s": mean(durations_same),
        "opposite_direction_links_observed": len(durations_opposite),
        "opposite_direction_mean_lifetime_s": mean(durations_opposite),
    }


def test_fig3_link_lifetime_model(benchmark):
    """Analytic lifetimes (Eqn. 4) vs. simulated breakage, plus highway measurements."""
    rows = run_once(benchmark, _analytic_sweep)
    report(
        "fig3_link_lifetime",
        rows,
        title="Fig. 3 -- link lifetime vs. relative speed / gap / acceleration",
    )

    # Analytic solution matches brute-force kinematics everywhere.
    for row in rows:
        if math.isfinite(row["analytic_lifetime_s"]):
            assert row["abs_error_s"] < 0.05, row

    # Lifetime is monotonically decreasing in relative speed (zero gap, no accel).
    base = [r for r in rows if r["initial_gap_m"] == 0.0 and r["relative_accel_mps2"] == 0.0]
    base.sort(key=lambda r: r["relative_speed_mps"])
    lifetimes = [r["analytic_lifetime_s"] for r in base]
    assert lifetimes == sorted(lifetimes, reverse=True)

    # Acceleration can only shorten the lifetime (same speed and gap).
    for dv in (2.0, 10.0):
        no_acc = next(
            r for r in rows
            if r["relative_speed_mps"] == dv and r["initial_gap_m"] == 0.0
            and r["relative_accel_mps2"] == 0.0
        )
        with_acc = next(
            r for r in rows
            if r["relative_speed_mps"] == dv and r["initial_gap_m"] == 0.0
            and r["relative_accel_mps2"] == 0.5
        )
        assert with_acc["analytic_lifetime_s"] <= no_acc["analytic_lifetime_s"]

    # The measured counterpart is stochastic (IDM populations differ per
    # seed), so it is replicated over FIGURE_SEEDS and reported as mean with
    # a 95% confidence interval per metric.
    per_seed = [_measured_highway_lifetimes(seed) for seed in FIGURE_SEEDS]
    measured_row = {}
    for key in per_seed[0]:
        aggregate = MetricAggregate.of([run[key] for run in per_seed])
        measured_row[f"{key}_mean"] = aggregate.mean
        measured_row[f"{key}_ci95"] = aggregate.ci95
    report(
        "fig3_highway_measured",
        [measured_row],
        title=(
            "Fig. 3 (measured) -- observed link durations on the IDM highway "
            f"(mean +- 95% CI over {len(FIGURE_SEEDS)} seeds)"
        ),
    )
    # Same-direction links live longer than opposite-direction links, the
    # relationship both Fig. 3 and Sec. IV.A build on.
    assert (
        measured_row["same_direction_mean_lifetime_s_mean"]
        > measured_row["opposite_direction_mean_lifetime_s_mean"]
    )
