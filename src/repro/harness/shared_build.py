"""Shared-memory staging of built mobility for parallel sweeps.

A sweep matrix multiplies one scenario by protocols, workloads, radios,
backends and seeds -- yet every cell sharing a (scenario core, seed) pair
rebuilds the *identical* mobility substrate from scratch in its worker
process: road graph, vehicle placement, desired speeds, all of it.  For
city-scale scenarios that build dwarfs the pickled cell description the
pool ships.

This module stages each distinct build exactly once in the parent and
publishes it through :mod:`multiprocessing.shared_memory`:

* :func:`mobility_build_key` -- the canonical "scenario core" key: every
  field that cannot influence :func:`~repro.harness.scenarios.build_mobility`
  (protocol, workload, radio, backend, naming, traffic shims) is neutralised,
  so cells differing only along those axes share one staged build.  The seed
  stays in the key: different seeds are different substrates.
* :class:`MobilityArena` -- parent-side staging.  Per distinct key it derives
  the ``"mobility"`` stream exactly as ``Simulator`` would, runs the build,
  and writes one shared segment: a small header, the pickled
  ``(BuiltMobility, mobility_rng)`` pair (one dump, so the model's internal
  rng references survive), and 8-byte-aligned float64 time-zero columns
  (``xs | ys | vxs | vys`` in vehicle order) for the vectorized backend's
  :meth:`~repro.sim.position_store.PositionStore.load_columns`.
* :func:`load_prebuilt` -- worker-side mapping.  Attaches the segment once
  per process (cached), unpickles a *fresh* model per cell (cells must not
  share mutable state), and wraps the column region in read-only numpy views
  -- the raw bytes are never copied out of the segment.
* :class:`StagedCell` / :func:`run_staged_cell` -- the picklable cell
  wrapper and pool worker the sweep layer fans out.

Byte-equality: the staged rng is the same stream object the build advanced,
adopted into the worker's ``RandomStreams`` under ``"mobility"`` before
first use -- so every post-build draw continues exactly where a monolithic
build would.  The staged columns hold the same floats the registration pull
writes, so loading them is bitwise a no-op.  Serial and parallel staged
sweeps therefore reproduce the unstaged sweep record for record.

Lifecycle: the parent unlinks every segment in ``finally``; workers that
attach must immediately detach the segment from their resource tracker
(Python 3.11 registers shared memory on *attach* as well as create, and
would otherwise unlink the parent's segment when the worker exits).  If the
parent itself dies before unlinking, its own resource tracker reaps the
leaked segments -- crashes do not strand ``/dev/shm`` entries.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.scenario import FlowSpec, RadioConfig, Scenario
from repro.harness.scenarios import BuiltMobility, build_mobility
from repro.sim.rng import RandomStreams

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

try:  # numpy is optional: grid-backend sweeps stage without columns
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Segment layout: ``(payload_length, column_rows)`` header, then the pickle
#: payload, then (8-byte aligned) four float64 columns of ``column_rows``.
_HEADER = struct.Struct("<QQ")


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def mobility_build_key(scenario: Scenario) -> str:
    """Canonical key of the mobility substrate a scenario builds.

    Neutralises every field :func:`~repro.harness.scenarios.build_mobility`
    cannot observe (verified: no scenario builder reads them), so sweep
    cells that differ only by protocol, workload, radio, spatial backend,
    bus designation, traffic shims or report naming map to the same staged
    build.  Everything else -- kind, density, geometry configs,
    ``max_vehicles``, ``rsu_spacing_m``, ``mobility_step_s`` and crucially
    the ``seed`` -- stays in the key via the dataclass ``repr``.
    """
    core = replace(
        scenario,
        name="",
        workload="cbr",
        workload_params={},
        radio_stack=None,
        radio_params={},
        radio=RadioConfig(),
        spatial_backend="grid",
        bus_count=0,
        flows=[],
        default_flow_count=0,
        flow_template=FlowSpec(),
    )
    return repr(core)


@dataclass(frozen=True)
class ArenaTicket:
    """Picklable pointer to one staged build inside a shared segment."""

    shm_name: str
    rows: int
    columns_offset: int


class PrebuiltMobility:
    """One cell's private copy of a staged build (worker side).

    ``built`` and ``mobility_rng`` come out of a single pickle load, so the
    rng the mobility model captured internally and this top-level handle are
    the same object -- exactly the aliasing the monolithic build produces.
    ``columns`` is ``(xs, ys, vxs, vys)`` read-only views into the shared
    segment (``None`` when numpy is unavailable).
    """

    __slots__ = ("built", "mobility_rng", "columns")

    def __init__(self, built: BuiltMobility, mobility_rng, columns) -> None:
        self.built = built
        self.mobility_rng = mobility_rng
        self.columns = columns


class MobilityArena:
    """Parent-side staging area: one shared segment per distinct build."""

    def __init__(self) -> None:
        if shared_memory is None:  # pragma: no cover - CPython always has it
            raise RuntimeError(
                "shared-memory staging requires multiprocessing.shared_memory"
            )
        self._segments: Dict[str, Tuple["shared_memory.SharedMemory", ArenaTicket]] = {}

    def stage(self, scenario: Scenario) -> ArenaTicket:
        """Build (once) and publish the scenario's mobility substrate."""
        key = mobility_build_key(scenario)
        entry = self._segments.get(key)
        if entry is not None:
            return entry[1]
        # Identical derivation to Simulator(seed).rng.stream("mobility"):
        # streams are independent of creation order, so building here leaves
        # the worker's other streams ("radio", "traffic", ...) untouched.
        rng = RandomStreams(scenario.seed).stream("mobility")
        built = build_mobility(scenario, rng)
        payload = pickle.dumps((built, rng), protocol=pickle.HIGHEST_PROTOCOL)
        states = list(built.mobility.vehicles)
        rows = len(states) if np is not None else 0
        columns_offset = _align8(_HEADER.size + len(payload))
        total = columns_offset + 4 * rows * 8
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            _HEADER.pack_into(shm.buf, 0, len(payload), rows)
            shm.buf[_HEADER.size : _HEADER.size + len(payload)] = payload
            if rows:
                # Time-zero kinematic columns in vehicle (= registration)
                # order: the very floats the runner's registration pull
                # writes into a worker's PositionStore.
                for index, values in enumerate(
                    (
                        [s.position.x for s in states],
                        [s.position.y for s in states],
                        [s.velocity.x for s in states],
                        [s.velocity.y for s in states],
                    )
                ):
                    column = np.frombuffer(
                        shm.buf,
                        dtype=np.float64,
                        count=rows,
                        offset=columns_offset + index * rows * 8,
                    )
                    column[:] = values
                    del column  # release the buffer export before close()
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        ticket = ArenaTicket(shm.name, rows, columns_offset)
        _TRACKER_SHARED.add(shm.name)
        self._segments[key] = (shm, ticket)
        return ticket

    def close(self) -> None:
        """Unlink every staged segment (idempotent)."""
        for shm, _ in self._segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - live exports keep it open
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
            _TRACKER_SHARED.discard(shm.name)
        self._segments.clear()

    def __enter__(self) -> "MobilityArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Worker-process cache of attached segments: one attach per segment per
#: process, however many cells map it.
_ATTACHED: Dict[str, "shared_memory.SharedMemory"] = {}

#: Segments created by an arena whose tracker this process shares.  A
#: serial sweep attaches in the creating process itself, and fork-context
#: workers inherit both this set and the parent's resource-tracker
#: connection -- in both cases the attach-time registration is idempotent
#: (the tracker cache is a set) and must NOT be unregistered, or the
#: parent's own unlink bookkeeping breaks.  Spawn-context workers
#: re-import this module (empty set) and run their *own* tracker, where
#: the attach registration must be dropped or the worker's exit would
#: unlink the parent's live segment.
_TRACKER_SHARED: set = set()


def _attach(shm_name: str) -> "shared_memory.SharedMemory":
    shm = _ATTACHED.get(shm_name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=shm_name)
        if shm_name not in _TRACKER_SHARED:
            try:
                # CPython 3.8+ registers shared memory with the resource
                # tracker on attach as well as create; in a process with its
                # own tracker that registration would unlink the parent's
                # segment when this worker exits.  The parent owns the
                # lifecycle, so detach.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker impl variance
                pass
        _ATTACHED[shm_name] = shm
    return shm


def detach_all() -> None:
    """Close this process's cached attachments (sweep teardown)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view still references it
            pass
    _ATTACHED.clear()


def load_prebuilt(ticket: ArenaTicket) -> PrebuiltMobility:
    """Map a staged build: fresh model per call, zero-copy column views."""
    shm = _attach(ticket.shm_name)
    buf = shm.buf
    payload_length, rows = _HEADER.unpack_from(buf, 0)
    built, rng = pickle.loads(
        bytes(buf[_HEADER.size : _HEADER.size + payload_length])
    )
    columns = None
    if rows and np is not None:
        views = []
        for index in range(4):
            view = np.frombuffer(
                buf,
                dtype=np.float64,
                count=rows,
                offset=ticket.columns_offset + index * rows * 8,
            )
            view.setflags(write=False)
            views.append(view)
        columns = tuple(views)
    return PrebuiltMobility(built, rng, columns)


@dataclass(frozen=True)
class StagedCell:
    """A sweep cell plus the ticket of its staged mobility build."""

    cell: "object"  # repro.harness.sweep.SweepCell (untyped: no import cycle)
    ticket: ArenaTicket


def run_staged_cell(staged: StagedCell) -> RunRecord:
    """Pool worker: run one cell against its staged mobility build.

    Module-level (picklable) twin of :func:`repro.harness.sweep.run_cell`;
    the only difference is that the runner adopts the staged build instead
    of rebuilding mobility, which the byte-equality suite pins as
    record-identical.
    """
    cell = staged.cell
    runner = ExperimentRunner()
    result = runner.run(
        cell.scenario,
        cell.protocol,
        protocol_config=cell.protocol_config,
        prebuilt=load_prebuilt(staged.ticket),
    )
    return result.to_record()
