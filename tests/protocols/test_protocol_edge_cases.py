"""Additional protocol edge-case tests (maintenance, failure handling, configs)."""

import pytest

from repro.protocols.connectivity import AodvConfig
from repro.protocols.infrastructure import RsuRelayConfig
from repro.sim.packet import BROADCAST
from tests.helpers import build_static_network, line_positions, run_data_flow

SPACING = 200.0


class TestAodvMaintenance:
    def test_rerr_invalidates_routes_through_broken_link(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(4, SPACING), protocol="AODV"
        )
        network.start()
        # Stop well before the route lifetime expires so the route is still installed.
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=3, start=2.0, until=8.0)
        # Simulate a RERR from node 1 reporting node 3 unreachable.
        source_protocol = nodes[0].protocol
        route_before = source_protocol.routes.get(nodes[3].node_id, sim.now)
        assert route_before is not None
        rerr = nodes[1].protocol.make_control("RERR", unreachable=[nodes[3].node_id])
        source_protocol.handle_packet(rerr, nodes[1].node_id)
        assert source_protocol.routes.get(nodes[3].node_id, sim.now) is None

    def test_sending_to_self_delivers_locally(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(2, SPACING), protocol="AODV"
        )
        network.start()
        stats.register_flow(1, nodes[0].node_id, nodes[0].node_id)
        sim.schedule_at(
            1.0, lambda: nodes[0].protocol.send_data(nodes[0].node_id, flow_id=1, seq=1)
        )
        sim.run(until=3.0)
        assert stats.flows[1].delivered == 1
        assert stats.data_transmissions == 0

    def test_route_expiry_forces_rediscovery(self):
        config = AodvConfig(route_lifetime_s=2.0)
        sim, network, stats, nodes = build_static_network(
            line_positions(3, SPACING), protocol="AODV", protocol_config=config
        )
        network.start()
        # Two bursts separated by more than the route lifetime.
        run_data_flow(sim, stats, nodes[0], nodes[2], packets=2, start=2.0, interval=0.5, until=10.0)
        run_data_flow(
            sim, stats, nodes[0], nodes[2], packets=2, start=12.0, interval=0.5, until=20.0, flow_id=2
        )
        assert stats.route_discoveries_started >= 2
        assert stats.delivery_ratio >= 0.75


class TestDsdvBehaviour:
    def test_sequence_numbers_prevent_stale_overwrites(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(3, SPACING), protocol="DSDV"
        )
        network.start()
        sim.run(until=8.0)
        middle = nodes[1].protocol
        # The middle node knows both neighbours with direct (1-hop) routes.
        for other in (nodes[0], nodes[2]):
            route = middle.routes.get(other.node_id, sim.now)
            assert route is not None
            assert route.hop_count == 1

    def test_far_node_route_has_larger_metric(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(4, SPACING), protocol="DSDV"
        )
        network.start()
        sim.run(until=12.0)
        first = nodes[0].protocol
        near = first.routes.get(nodes[1].node_id, sim.now)
        far = first.routes.get(nodes[3].node_id, sim.now)
        assert near is not None and far is not None
        assert far.hop_count > near.hop_count


class TestRsuRelayHandoff:
    def test_overlapping_rsus_both_learn_a_valid_serving_rsu(self):
        sim, network, stats, nodes = build_static_network(
            [(100, 0)], protocol="RSU-Relay", rsu_positions=[(100, 30), (150, 30)]
        )
        network.start()
        sim.run(until=4.0)
        rsu_a, rsu_b = network.rsus
        rsu_ids = {rsu_a.node_id, rsu_b.node_id}
        serving_a = rsu_a.protocol.registry.get(nodes[0].node_id)
        serving_b = rsu_b.protocol.registry.get(nodes[0].node_id)
        assert serving_a is not None and serving_b is not None
        # Each RSU's registry points at an RSU that can actually reach the
        # vehicle (either of the two overlapping ones is acceptable), and the
        # hysteresis keeps the registrations from ping-ponging (bounded
        # backbone traffic is asserted separately below).
        assert serving_a[0] in rsu_ids
        assert serving_b[0] in rsu_ids

    def test_backbone_register_messages_are_bounded(self):
        config = RsuRelayConfig(registration_lifetime_s=6.0)
        sim, network, stats, nodes = build_static_network(
            [(100, 0)], protocol="RSU-Relay", protocol_config=config,
            rsu_positions=[(100, 30), (150, 30)],
        )
        network.start()
        sim.run(until=12.0)
        # With hysteresis, (re-)registrations happen every few seconds rather
        # than on every beacon: well under one per beacon interval.
        assert stats.backbone_transmissions <= 12


class TestBroadcastDataHandling:
    @pytest.mark.parametrize("protocol", ["Flooding", "Biswas"])
    def test_broadcast_flows_reach_far_nodes(self, protocol):
        sim, network, stats, nodes = build_static_network(
            line_positions(4, SPACING), protocol=protocol
        )
        network.start()
        stats.register_flow(1, nodes[0].node_id, BROADCAST)
        sim.schedule_at(1.0, lambda: nodes[0].protocol.send_data(BROADCAST, flow_id=1, seq=1))
        sim.run(until=10.0)
        # Every node transmitted the broadcast once (possibly a couple of
        # Biswas retransmissions on top).
        assert stats.data_transmissions >= len(nodes) - 1
