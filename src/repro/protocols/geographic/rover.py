"""ROVER: RObust VEhicular Routing (Kihl et al., paper ref. [25]).

ROVER is the survey's example of a *reactive geographic* protocol: "zones are
defined on the basis of positions ... The protocol broadcasts control
packets, similar to AODV, among zones to find a routing path.  Once the
routing path is found, data packets are unicasted along the single path."
In other words: AODV-style discovery, but the RREQ flood is confined to the
geographic zone that is actually relevant (here, the corridor between the
source and the destination), and data follows the discovered route unicast.

The implementation therefore reuses the AODV machinery and adds the zone
filter to RREQ forwarding; the zone is stamped into the request by the
origin using the location service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.taxonomy import Category, register_protocol
from repro.geometry import Vec2
from repro.protocols.connectivity.aodv import AodvConfig, AodvProtocol
from repro.protocols.location import LocationService
from repro.roadnet.zones import CorridorZone
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import Packet


@dataclass
class RoverConfig(AodvConfig):
    """ROVER parameters.

    Attributes:
        zone_width_m: Half-width of the discovery corridor around the
            source-destination line (the "zone of relevance").
    """

    zone_width_m: float = 400.0


@register_protocol(
    "ROVER",
    Category.GEOGRAPHIC,
    "Reactive zone routing: AODV-style discovery confined to the source-destination "
    "zone, unicast data on the discovered path.",
    paper_reference="[25], Sec. VI.B",
)
class RoverProtocol(AodvProtocol):
    """Zone-confined reactive routing."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[RoverConfig] = None,
        location_service: Optional[LocationService] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else RoverConfig())
        self.location = (
            location_service if location_service is not None else LocationService(network)
        )

    # ------------------------------------------------------------- discovery
    def _start_discovery(self, destination: int, retries: int) -> None:
        """As AODV, but stamp the discovery zone into the request."""
        cfg: RoverConfig = self.config  # type: ignore[assignment]
        destination_position = self.location.position_of(destination)
        self._rreq_id += 1
        self._sequence += 1
        self._discoveries[destination] = {"started": self.now, "retries": retries}
        self.stats.route_discovery_started()
        headers = dict(
            rreq_id=self._rreq_id,
            origin=self.node.node_id,
            origin_seq=self._sequence,
            target=destination,
            hop_count=0,
        )
        if destination_position is not None:
            headers.update(
                zone_src_x=self.node.position.x,
                zone_src_y=self.node.position.y,
                zone_dst_x=destination_position.x,
                zone_dst_y=destination_position.y,
            )
        rreq = self.make_control("RREQ", size_bytes=cfg.rreq_size_bytes, **headers)
        self._rreq_cache.seen((self.node.node_id, self._rreq_id), self.now)
        self.broadcast(rreq)
        self.sim.schedule(
            cfg.discovery_timeout_s, self._discovery_timeout, destination, self._rreq_id
        )

    def _discovery_zone(self, packet: Packet) -> Optional[CorridorZone]:
        headers = packet.headers
        if "zone_src_x" not in headers:
            return None
        cfg: RoverConfig = self.config  # type: ignore[assignment]
        return CorridorZone(
            start=Vec2(headers["zone_src_x"], headers["zone_src_y"]),
            end=Vec2(headers["zone_dst_x"], headers["zone_dst_y"]),
            width=cfg.zone_width_m,
        )

    def _handle_rreq(self, packet: Packet, sender_id: int) -> None:
        """Drop requests overheard outside the discovery zone, else behave as AODV."""
        zone = self._discovery_zone(packet)
        if (
            zone is not None
            and packet.headers.get("target") != self.node.node_id
            and not zone.contains(self.node.position)
        ):
            return
        super()._handle_rreq(packet, sender_id)
