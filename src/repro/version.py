"""Package version, kept in a dedicated module so it can be imported cheaply."""

__version__ = "1.0.0"
