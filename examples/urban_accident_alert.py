"""Urban accident alert: zone dissemination vs. flooding on a city grid.

One of the paper's motivating safety applications is informing nearby drivers
of an accident.  The natural mechanism is geographic: the alert only matters
inside a zone around the incident, so zone-restricted flooding (Sec. VI,
Bronsted et al.) reaches the relevant vehicles at a fraction of the cost of
blind flooding.  This example builds a Manhattan downtown, places an accident
reporter and several interested vehicles, and compares Zone, Grid-Gateway and
Flooding dissemination; it also shows the effect of adding RSUs at
intersections (Sec. V) for the same workload.

Run with::

    python examples/urban_accident_alert.py
"""

from __future__ import annotations

from repro.harness import ExperimentRunner, format_table
from repro.harness.scenario import FlowSpec, manhattan_scenario
from repro.mobility.generator import TrafficDensity

PROTOCOLS = ["Zone", "Grid-Gateway", "Flooding", "RSU-Relay"]


def build_scenario(rsu_spacing=None):
    """An accident reporter streaming alerts to four interested vehicles downtown."""
    scenario = manhattan_scenario(
        TrafficDensity.NORMAL,
        name="accident-alert",
        duration_s=30.0,
        max_vehicles=70,
        seed=23,
        rsu_spacing_m=rsu_spacing,
    )
    reporter_index = 3
    scenario.flows = [
        FlowSpec(
            source_index=reporter_index,
            destination_index=15 + 7 * i,
            start_time_s=5.0,
            interval_s=1.0,
            packet_count=20,
            size_bytes=256,
        )
        for i in range(4)
    ]
    return scenario


def main() -> None:
    runner = ExperimentRunner()
    rows = []
    for protocol in PROTOCOLS:
        rsu_spacing = 400.0 if protocol == "RSU-Relay" else None
        scenario = build_scenario(rsu_spacing)
        print(f"Disseminating accident alerts with {protocol}"
              + (" (RSUs at intersections)" if rsu_spacing else "") + "...")
        result = runner.run(scenario, protocol)
        summary = result.summary
        delivered = max(1.0, summary["data_delivered"])
        rows.append(
            {
                "protocol": protocol,
                "rsus": result.rsu_count,
                "delivery_ratio": summary["delivery_ratio"],
                "mean_delay_s": summary["mean_delay_s"],
                "data_tx_per_alert": summary["data_transmissions"] / delivered,
                "beacon_tx": summary["beacon_transmissions"],
                "backbone_tx": summary["backbone_transmissions"],
            }
        )
    print()
    print(format_table(rows, title="Accident alerts on a 4x4-block downtown grid"))
    print()
    print("Zone routing keeps the alert inside the corridor between reporter and")
    print("receiver, so it needs a fraction of flooding's transmissions; RSUs add a")
    print("wired shortcut at the cost of deployed hardware and backbone traffic.")


if __name__ == "__main__":
    main()
