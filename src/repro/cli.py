"""Command-line interface: run scenarios and sweeps without writing Python.

Installed as the ``repro-vanet`` console script (see ``pyproject.toml``), but
also runnable as ``python -m repro.cli``.  Four subcommands:

``run``
    Run one protocol through one scenario and print the metric summary.
``compare``
    Run several protocols through the same scenario and print a comparison
    table (optionally written to CSV).
``sweep``
    Run a protocol x seed replication matrix over the scenario, optionally
    across worker processes, and print per-cell mean / 95% CI aggregates
    (optionally persisted to CSV and JSON).
``protocols``
    List the implemented protocols and their taxonomy categories.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.taxonomy import global_registry
from repro.harness.reporting import format_table, rows_to_csv, sweep_to_json
from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import FlowSpec, Scenario, highway_scenario, manhattan_scenario
from repro.harness.sweep import HEADLINE_METRICS, sweep_protocols, sweep_replications
from repro.mobility.generator import TrafficDensity
from repro.protocols.registry import available_protocols

#: Columns shown by the ``run`` and ``compare`` subcommands.
SUMMARY_COLUMNS = [
    "protocol",
    "delivery_ratio",
    "mean_delay_s",
    "mean_hops",
    "control_transmissions",
    "beacon_transmissions",
    "discovery_transmissions",
    "data_transmissions",
    "mac_collisions",
    "backbone_transmissions",
]


def _build_scenario(args: argparse.Namespace) -> Scenario:
    density = TrafficDensity(args.density)
    make = highway_scenario if args.kind == "highway" else manhattan_scenario
    scenario = make(
        density,
        duration_s=args.duration,
        max_vehicles=args.max_vehicles,
        default_flow_count=args.flows,
        seed=args.seed,
        rsu_spacing_m=args.rsu_spacing,
        bus_count=args.buses,
        flow_template=FlowSpec(
            start_time_s=args.warmup,
            interval_s=args.packet_interval,
            packet_count=args.packets_per_flow,
        ),
    )
    return scenario


def _add_scenario_arguments(parser: argparse.ArgumentParser, include_seed: bool = True) -> None:
    parser.add_argument(
        "--kind", choices=["highway", "manhattan"], default="highway",
        help="mobility scenario (default: highway)",
    )
    parser.add_argument(
        "--density", choices=[d.value for d in TrafficDensity], default="normal",
        help="traffic density regime (default: normal)",
    )
    parser.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    parser.add_argument("--max-vehicles", type=int, default=100, help="vehicle population cap")
    parser.add_argument("--flows", type=int, default=5, help="number of random unicast flows")
    parser.add_argument("--packets-per-flow", type=int, default=20, help="packets per flow")
    parser.add_argument("--packet-interval", type=float, default=1.0, help="seconds between packets")
    parser.add_argument("--warmup", type=float, default=5.0, help="flow start time (seconds)")
    if include_seed:
        parser.add_argument("--seed", type=int, default=1, help="master random seed")
    parser.add_argument(
        "--rsu-spacing", type=float, default=None,
        help="distance between road-side units in metres (default: no RSUs)",
    )
    parser.add_argument("--buses", type=int, default=0, help="vehicles designated as buses")
    parser.add_argument("--csv", type=str, default=None, help="write the result rows to this CSV file")


def _result_row(result) -> dict:
    row = {"protocol": result.protocol}
    row.update({key: result.summary.get(key, 0.0) for key in SUMMARY_COLUMNS if key != "protocol"})
    row["path_stretch"] = result.extra.get("path_stretch", 0.0)
    return row


def _command_run(args: argparse.Namespace) -> int:
    if args.protocol not in available_protocols():
        print(f"unknown protocol {args.protocol!r}", file=sys.stderr)
        print(f"available: {', '.join(available_protocols())}", file=sys.stderr)
        return 2
    scenario = _build_scenario(args)
    runner = ExperimentRunner()
    result = runner.run(scenario, args.protocol)
    rows = [_result_row(result)]
    print(format_table(rows, title=f"{args.protocol} on {scenario.name}"))
    if args.csv:
        rows_to_csv(args.csv, rows)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    unknown = [p for p in args.protocols if p not in available_protocols()]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    scenario = _build_scenario(args)
    results = sweep_protocols(scenario, args.protocols, runner=ExperimentRunner())
    rows = [_result_row(result) for result in results]
    print(format_table(rows, title=f"Comparison on {scenario.name}"))
    if args.csv:
        rows_to_csv(args.csv, rows)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    unknown = [p for p in args.protocols if p not in available_protocols()]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    scenario = _build_scenario(args)
    try:
        result = sweep_replications(
            [scenario],
            args.protocols,
            seeds=args.seeds,
            workers=args.workers,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = result.rows(HEADLINE_METRICS)
    title = (
        f"Sweep on {scenario.name}: {len(args.protocols)} protocol(s) x "
        f"{len(args.seeds)} seed(s), workers={args.workers}"
    )
    print(format_table(rows, title=title))
    if args.csv:
        rows_to_csv(args.csv, rows)
    if args.json:
        sweep_to_json(args.json, result)
    return 0


def _command_protocols(_: argparse.Namespace) -> int:
    rows = global_registry.as_table()
    print(format_table(rows, columns=["category", "protocol", "reference", "description"]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-vanet",
        description="VANET reliable-routing reproduction: run simulations from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one protocol through one scenario")
    run_parser.add_argument("protocol", help="protocol name (see the 'protocols' subcommand)")
    _add_scenario_arguments(run_parser)
    run_parser.set_defaults(func=_command_run)

    compare_parser = subparsers.add_parser(
        "compare", help="run several protocols through the same scenario"
    )
    compare_parser.add_argument("protocols", nargs="+", help="protocol names")
    _add_scenario_arguments(compare_parser)
    compare_parser.set_defaults(func=_command_compare)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a protocol x seed replication matrix (optionally in parallel)",
    )
    sweep_parser.add_argument("protocols", nargs="+", help="protocol names")
    # The sweep replaces the single --seed with an explicit --seeds list (one
    # run per seed); offering both would let --seed be silently ignored.
    _add_scenario_arguments(sweep_parser, include_seed=False)
    sweep_parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3],
        help="replication seeds, one run per (protocol, seed) (default: 1 2 3)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 1 runs serially in-process (default: 1)",
    )
    sweep_parser.add_argument(
        "--json", type=str, default=None,
        help="write the full sweep (per-run records + aggregates) to this JSON file",
    )
    # ``seed=1`` only placates _build_scenario; build_matrix overrides every
    # cell's seed with a value from --seeds.
    sweep_parser.set_defaults(func=_command_sweep, seed=1)

    protocols_parser = subparsers.add_parser("protocols", help="list implemented protocols")
    protocols_parser.set_defaults(func=_command_protocols)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
