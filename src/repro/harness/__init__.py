"""Experiment harness: scenarios, runners, sweeps and reporting.

The benchmarks in ``benchmarks/`` are thin wrappers around this package:
each defines a scenario (or a sweep of scenarios), runs one or more protocols
through :class:`~repro.harness.runner.ExperimentRunner` — or, for replicated
matrices, through :func:`~repro.harness.sweep.sweep_replications` — and
prints the rows of the corresponding figure or table of the paper.
"""

from repro.harness.compare import category_comparison, category_representatives
from repro.harness.reporting import (
    format_table,
    rows_from_json,
    rows_to_csv,
    rows_to_json,
    sweep_from_json,
    sweep_to_csv,
    sweep_to_json,
)
from repro.harness.runner import ExperimentRunner, RunRecord, RunResult
from repro.harness.scenario import (
    DEFAULT_FLOW_COUNT,
    FlowSpec,
    RadioConfig,
    Scenario,
    city_scenario,
    highway_scenario,
    manhattan_scenario,
    trace_scenario,
)
from repro.radio import (
    DEFAULT_RADIO,
    RadioStack,
    available_radio_presets,
    available_radios,
    radio_from_name,
    register_radio,
    register_radio_preset,
)
from repro.workloads import (
    Workload,
    available_workload_presets,
    available_workloads,
    register_workload,
    register_workload_preset,
    workload_from_name,
)
from repro.harness.scenarios import (
    BuiltMobility,
    available_presets,
    available_scenario_kinds,
    build_mobility,
    preset_rows,
    register_preset,
    register_scenario,
    scenario_from_name,
)
from repro.harness.sweep import (
    MetricAggregate,
    ReplicatedResult,
    SweepCell,
    SweepResult,
    aggregate_records,
    build_matrix,
    execute_cells,
    sweep_densities,
    sweep_protocols,
    sweep_replications,
    sweep_scenarios,
)

__all__ = [
    "category_comparison",
    "category_representatives",
    "format_table",
    "rows_from_json",
    "rows_to_csv",
    "rows_to_json",
    "sweep_from_json",
    "sweep_to_csv",
    "sweep_to_json",
    "ExperimentRunner",
    "RunRecord",
    "RunResult",
    "DEFAULT_FLOW_COUNT",
    "FlowSpec",
    "Workload",
    "available_workload_presets",
    "available_workloads",
    "register_workload",
    "register_workload_preset",
    "workload_from_name",
    "RadioConfig",
    "DEFAULT_RADIO",
    "RadioStack",
    "available_radio_presets",
    "available_radios",
    "radio_from_name",
    "register_radio",
    "register_radio_preset",
    "Scenario",
    "city_scenario",
    "highway_scenario",
    "manhattan_scenario",
    "trace_scenario",
    "BuiltMobility",
    "available_presets",
    "available_scenario_kinds",
    "build_mobility",
    "preset_rows",
    "register_preset",
    "register_scenario",
    "scenario_from_name",
    "MetricAggregate",
    "ReplicatedResult",
    "SweepCell",
    "SweepResult",
    "aggregate_records",
    "build_matrix",
    "execute_cells",
    "sweep_densities",
    "sweep_protocols",
    "sweep_replications",
    "sweep_scenarios",
]
