"""Tests for the probability-model-based protocols (Yan-TBP, CAR, REAR, GVGrid)."""

import pytest

from repro.geometry import Vec2
from repro.protocols.probability import (
    CarConfig,
    CarProtocol,
    GvGridProtocol,
    RearConfig,
    RearProtocol,
    YanTbpConfig,
)
from repro.protocols.neighbors import NeighborEntry
from repro.roadnet.grid import build_highway_graph
from tests.helpers import build_static_network, line_positions, run_data_flow

SPACING = 200.0


def _line_network(count, protocol, **kwargs):
    sim, network, stats, nodes = build_static_network(
        line_positions(count, SPACING), protocol=protocol, **kwargs
    )
    network.start()
    return sim, network, stats, nodes


class TestYanTbp:
    def test_delivery_via_selective_probing(self):
        sim, network, stats, nodes = _line_network(5, "Yan-TBP")
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_probing_cheaper_than_flooded_discovery(self):
        """The defining property: probes do not flood the whole network."""
        positions = line_positions(5, SPACING) + [
            (200.0, 200.0),
            (400.0, 200.0),
            (600.0, 200.0),
            (800.0, 200.0),
        ]

        def discovery_cost(protocol):
            sim, network, stats, nodes = build_static_network(positions, protocol=protocol)
            network.start()
            run_data_flow(sim, stats, nodes[0], nodes[4], packets=3, start=2.0, until=20.0)
            return stats.discovery_transmissions, stats.delivery_ratio

        probe_cost, probe_pdr = discovery_cost("Yan-TBP")
        flood_cost, flood_pdr = discovery_cost("AODV")
        assert probe_pdr >= 0.6
        assert probe_cost < flood_cost

    def test_tickets_bound_probe_fanout(self):
        config = YanTbpConfig(tickets=1, max_fanout=1)
        sim, network, stats, nodes = build_static_network(
            line_positions(4, SPACING), protocol="Yan-TBP", protocol_config=config
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=1, start=2.0, until=10.0)
        probes = stats.control_by_type.get("MREQ", 0)
        # One ticket -> a single probe chain of at most 3 links (per retry).
        assert probes <= 3 * 3

    def test_stable_neighbor_ranking_prefers_progress(self):
        sim, network, stats, nodes = _line_network(3, "Yan-TBP")
        sim.run(until=3.0)
        protocol = nodes[1].protocol
        toward = nodes[2].position
        ranked = protocol._stable_neighbors(exclude=[], toward=toward)
        assert ranked
        assert ranked[0].node_id == nodes[2].node_id


class TestRear:
    def test_receipt_probability_decreases_with_distance(self):
        sim, network, stats, nodes = _line_network(2, "REAR")
        protocol: RearProtocol = nodes[0].protocol
        assert protocol.receipt_probability(50.0) > protocol.receipt_probability(400.0)
        assert 0.0 <= protocol.receipt_probability(1000.0) <= 1.0

    def test_neighbor_score_prefers_reliable_links(self):
        sim, network, stats, nodes = _line_network(2, "REAR")
        protocol: RearProtocol = nodes[0].protocol
        destination_position = Vec2(1000, 0)
        near = NeighborEntry(7, Vec2(80, 0), Vec2(0, 0), last_seen=0.0)
        far = NeighborEntry(8, Vec2(220, 0), Vec2(0, 0), last_seen=0.0)
        near_score = protocol.neighbor_score(near, 9, destination_position, progress_m=80.0)
        far_score = protocol.neighbor_score(far, 9, destination_position, progress_m=220.0)
        assert near_score > far_score

    def test_delivery_on_static_line(self):
        sim, network, stats, nodes = _line_network(4, "REAR")
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8


class TestGvGrid:
    def test_link_reliability_higher_for_co_moving_neighbours(self):
        from repro.protocols.probability import GvGridConfig

        # A 20 s QoS horizon makes the difference visible: an opposite-direction
        # neighbour drifts ~1 km relative in that time and the link cannot survive.
        config = GvGridConfig(qos_horizon_s=20.0)
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0)], protocol="GVGrid", velocities=[(25, 0), (25, 0)],
            protocol_config=config,
        )
        protocol: GvGridProtocol = nodes[0].protocol
        same = NeighborEntry(5, Vec2(100, 0), Vec2(25, 0), last_seen=0.0)
        opposite = NeighborEntry(6, Vec2(100, 0), Vec2(-25, 0), last_seen=0.0)
        assert protocol.link_reliability(same) > protocol.link_reliability(opposite)
        assert protocol.link_reliability(opposite) < 0.5

    def test_score_rewards_cell_progress(self):
        sim, network, stats, nodes = _line_network(2, "GVGrid")
        protocol: GvGridProtocol = nodes[0].protocol
        destination_position = Vec2(1000, 0)
        advancing = NeighborEntry(5, Vec2(200, 0), Vec2(0, 0), last_seen=0.0)
        lateral = NeighborEntry(6, Vec2(10, 100), Vec2(0, 0), last_seen=0.0)
        advancing_score = protocol.neighbor_score(advancing, 9, destination_position, 200.0)
        lateral_score = protocol.neighbor_score(lateral, 9, destination_position, 5.0)
        assert advancing_score > lateral_score

    def test_delivery_on_static_line(self):
        sim, network, stats, nodes = _line_network(4, "GVGrid")
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8


class TestCar:
    def test_delivery_with_road_graph_anchors(self):
        graph = build_highway_graph(1000.0, interchange_spacing_m=500.0)
        sim, network, stats, nodes = build_static_network(
            line_positions(5, SPACING), protocol="CAR", road_graph=graph
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_delivery_without_road_graph_falls_back_to_greedy(self):
        sim, network, stats, nodes = _line_network(4, "CAR")
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_segment_connectivity_reflects_density(self):
        graph = build_highway_graph(1000.0, interchange_spacing_m=1000.0)
        # Densely populated segment.
        sim, network, stats, nodes = build_static_network(
            line_positions(12, 80.0), protocol="CAR", road_graph=graph
        )
        dense_protocol: CarProtocol = nodes[0].protocol
        a, b = graph.intersections[0], graph.intersections[1]
        dense_connectivity = dense_protocol.segment_connectivity(a, b)
        # Sparsely populated segment.
        sim2, network2, stats2, nodes2 = build_static_network(
            [(0, 0), (900, 0)], protocol="CAR", road_graph=build_highway_graph(1000.0, 1000.0)
        )
        sparse_protocol: CarProtocol = nodes2[0].protocol
        graph2 = sparse_protocol.road_graph
        sparse_connectivity = sparse_protocol.segment_connectivity(
            graph2.intersections[0], graph2.intersections[1]
        )
        assert dense_connectivity > sparse_connectivity

    def test_assumed_density_used_when_measurement_disabled(self):
        graph = build_highway_graph(1000.0, interchange_spacing_m=1000.0)
        config = CarConfig(use_measured_density=False, assumed_density_veh_per_km=50.0)
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (900, 0)], protocol="CAR", protocol_config=config, road_graph=graph
        )
        protocol: CarProtocol = nodes[0].protocol
        a, b = graph.intersections[0], graph.intersections[1]
        # Despite the segment being almost empty, the assumed density yields
        # a high connectivity estimate (the calibration-mismatch ablation).
        assert protocol.segment_connectivity(a, b) > 0.5
