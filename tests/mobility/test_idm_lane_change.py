"""Tests for the IDM car-following law and MOBIL lane changes."""

import math

import pytest

from repro.mobility.idm import IdmParameters, desired_gap, free_flow_acceleration, idm_acceleration
from repro.mobility.lane_change import MobilParameters, should_change_lane
from repro.mobility.vehicle import VehicleState
from repro.geometry import Vec2


class TestIdm:
    def test_free_road_accelerates_toward_desired_speed(self):
        acc = idm_acceleration(speed=10.0, desired_speed=30.0, gap=math.inf, approach_rate=0.0)
        assert acc > 0

    def test_at_desired_speed_no_acceleration(self):
        acc = free_flow_acceleration(30.0, 30.0)
        assert acc == pytest.approx(0.0, abs=1e-9)

    def test_above_desired_speed_decelerates(self):
        assert free_flow_acceleration(35.0, 30.0) < 0

    def test_small_gap_forces_braking(self):
        acc = idm_acceleration(speed=30.0, desired_speed=30.0, gap=5.0, approach_rate=0.0)
        assert acc < -1.0

    def test_closing_fast_brakes_harder_than_steady(self):
        steady = idm_acceleration(20.0, 30.0, gap=40.0, approach_rate=0.0)
        closing = idm_acceleration(20.0, 30.0, gap=40.0, approach_rate=10.0)
        assert closing < steady

    def test_braking_is_bounded(self):
        params = IdmParameters()
        acc = idm_acceleration(40.0, 30.0, gap=0.5, approach_rate=20.0, params=params)
        assert acc >= -2.5 * params.comfortable_deceleration

    def test_desired_gap_grows_with_speed(self):
        params = IdmParameters()
        assert desired_gap(30.0, 0.0, params) > desired_gap(10.0, 0.0, params)

    def test_desired_gap_at_standstill_is_minimum_gap(self):
        params = IdmParameters()
        assert desired_gap(0.0, 0.0, params) == pytest.approx(params.minimum_gap)


def _vehicle(vid, x, speed, desired=30.0, lane=0):
    state = VehicleState(vid=vid, speed=speed, desired_speed=desired, lane=lane)
    state.position = Vec2(x, 0.0)
    return state


class TestMobil:
    def test_change_when_stuck_behind_slow_leader_and_target_free(self):
        vehicle = _vehicle(1, 0.0, 25.0, desired=33.0)
        slow_leader = _vehicle(2, 30.0, 15.0)
        assert should_change_lane(vehicle, slow_leader, None, None)

    def test_no_change_when_current_lane_is_free(self):
        vehicle = _vehicle(1, 0.0, 30.0, desired=30.0)
        assert not should_change_lane(vehicle, None, None, None)

    def test_unsafe_change_rejected_for_close_follower(self):
        vehicle = _vehicle(1, 0.0, 20.0, desired=33.0)
        slow_leader = _vehicle(2, 25.0, 10.0)
        fast_follower = _vehicle(3, -6.0, 35.0, desired=35.0)
        assert not should_change_lane(vehicle, slow_leader, None, fast_follower)

    def test_change_rejected_when_target_lane_is_worse(self):
        vehicle = _vehicle(1, 0.0, 25.0, desired=33.0)
        current_leader = _vehicle(2, 120.0, 30.0)
        target_leader = _vehicle(3, 10.0, 10.0)
        assert not should_change_lane(vehicle, current_leader, target_leader, None)

    def test_politeness_blocks_selfish_change(self):
        # The gain from escaping a mildly slower leader is modest, while the
        # new follower would have to brake noticeably: a selfish driver still
        # changes, a fully polite one does not.
        vehicle = _vehicle(1, 0.0, 25.0, desired=33.0)
        slow_leader = _vehicle(2, 80.0, 22.0)
        target_follower = _vehicle(3, -70.0, 30.0, desired=33.0)
        selfish = MobilParameters(politeness=0.0, changing_threshold=0.05)
        polite = MobilParameters(politeness=1.0, changing_threshold=0.05)
        selfish_decision = should_change_lane(
            vehicle, slow_leader, None, target_follower, mobil=selfish
        )
        polite_decision = should_change_lane(
            vehicle, slow_leader, None, target_follower, mobil=polite
        )
        assert selfish_decision and not polite_decision
