"""Monitor/probe registry -- the fifth string-keyed registry.

Passive observability probes that subscribe to the sim core's event tap
(:mod:`repro.sim.tap`), stream JSONL telemetry mid-run, and contribute
summary metrics to run records.  Importing this package registers the
built-in monitor kinds and presets, the same way :mod:`repro.workloads`
registers its traffic models.
"""

from repro.monitors import (  # noqa: F401  (imported for registration)
    heatmap,
    invariant,
    latency,
    timeseries,
)
from repro.monitors.base import Monitor
from repro.monitors.heatmap import TransmissionHeatmapMonitor
from repro.monitors.invariant import ConservationInvariantMonitor, InvariantViolationError
from repro.monitors.latency import LatencyDistributionMonitor
from repro.monitors.registry import (
    MONITOR_PRESETS,
    MONITOR_TYPES,
    MonitorPreset,
    available_monitor_presets,
    available_monitors,
    monitor_from_name,
    monitor_preset_rows,
    monitor_rows,
    register_monitor,
    register_monitor_preset,
    unregister_monitor,
    unregister_monitor_preset,
)
from repro.monitors.sketch import QuantileSketch
from repro.monitors.telemetry import (
    KNOWN_TELEMETRY_SCHEMA_VERSIONS,
    TELEMETRY_FIELDS,
    TELEMETRY_SCHEMA_VERSION,
    BufferSink,
    CallbackSink,
    JsonlFileSink,
    TelemetrySink,
    check_telemetry_schema_version,
    resolve_sink,
    telemetry_line,
)
from repro.monitors.timeseries import TimeSeriesMonitor

__all__ = [
    "Monitor",
    "MonitorPreset",
    "MONITOR_TYPES",
    "MONITOR_PRESETS",
    "register_monitor",
    "register_monitor_preset",
    "unregister_monitor",
    "unregister_monitor_preset",
    "available_monitors",
    "available_monitor_presets",
    "monitor_from_name",
    "monitor_rows",
    "monitor_preset_rows",
    "QuantileSketch",
    "LatencyDistributionMonitor",
    "TimeSeriesMonitor",
    "TransmissionHeatmapMonitor",
    "ConservationInvariantMonitor",
    "InvariantViolationError",
    "TELEMETRY_SCHEMA_VERSION",
    "TELEMETRY_FIELDS",
    "KNOWN_TELEMETRY_SCHEMA_VERSIONS",
    "check_telemetry_schema_version",
    "telemetry_line",
    "TelemetrySink",
    "JsonlFileSink",
    "BufferSink",
    "CallbackSink",
    "resolve_sink",
]
