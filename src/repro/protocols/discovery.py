"""Shared machinery for on-demand route discovery.

AODV, DSR and all the mobility/probability protocols that do on-demand
discovery need the same three pieces of bookkeeping: a duplicate cache for
flooded request identifiers, a table of discovered routes, and a buffer of
data packets waiting for a route.  Implementing them once keeps the protocol
classes focused on their actual routing metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.sim.packet import Packet


class DuplicateCache:
    """Remember identifiers (e.g. ``(origin, rreq_id)``) with time-based expiry."""

    def __init__(self, lifetime_s: float = 30.0, max_entries: int = 4096) -> None:
        self.lifetime_s = lifetime_s
        self.max_entries = max_entries
        self._entries: Dict[Hashable, float] = {}

    def seen(self, key: Hashable, now: float) -> bool:
        """True when ``key`` was recorded less than ``lifetime_s`` ago.

        The key is recorded as seen either way, so the typical usage is a
        single ``if cache.seen(key, now): return`` guard.
        """
        expiry = self._entries.get(key)
        already = expiry is not None and expiry > now
        self._entries[key] = now + self.lifetime_s
        if len(self._entries) > self.max_entries:
            self._evict(now)
        return already

    def _evict(self, now: float) -> None:
        live = {key: expiry for key, expiry in self._entries.items() if expiry > now}
        if len(live) > self.max_entries:
            # Keep the newest half when even live entries overflow.
            ordered = sorted(live.items(), key=lambda item: item[1], reverse=True)
            live = dict(ordered[: self.max_entries // 2])
        self._entries = live

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class RouteEntry:
    """One route in a routing table."""

    destination: int
    next_hop: int
    hop_count: int
    expiry: float
    sequence: int = 0
    metric: float = 0.0
    path: List[int] = field(default_factory=list)
    established_at: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def is_valid(self, now: float) -> bool:
        """True while the route has not expired."""
        return now < self.expiry


class RouteTable:
    """Destination-indexed routing table with expiry."""

    def __init__(self) -> None:
        self._routes: Dict[int, RouteEntry] = {}

    def get(self, destination: int, now: float) -> Optional[RouteEntry]:
        """Valid route toward ``destination``, or None."""
        entry = self._routes.get(destination)
        if entry is None or not entry.is_valid(now):
            return None
        return entry

    def put(self, entry: RouteEntry) -> None:
        """Insert or replace the route toward ``entry.destination``."""
        self._routes[entry.destination] = entry

    def update_if_better(self, entry: RouteEntry, now: float) -> bool:
        """Install ``entry`` if it is fresher or better than the current route.

        "Better" means: newer sequence number, or equal sequence number with a
        smaller hop count; an expired current route is always replaced.
        """
        current = self._routes.get(entry.destination)
        if current is None or not current.is_valid(now):
            self._routes[entry.destination] = entry
            return True
        if entry.sequence > current.sequence:
            self._routes[entry.destination] = entry
            return True
        if entry.sequence == current.sequence and entry.hop_count < current.hop_count:
            self._routes[entry.destination] = entry
            return True
        return False

    def invalidate(self, destination: int) -> None:
        """Remove the route toward ``destination``."""
        self._routes.pop(destination, None)

    def invalidate_via(self, next_hop: int) -> List[int]:
        """Remove every route that uses ``next_hop``; returns affected destinations."""
        affected = [
            destination
            for destination, entry in self._routes.items()
            if entry.next_hop == next_hop
        ]
        for destination in affected:
            del self._routes[destination]
        return affected

    def destinations(self, now: float) -> List[int]:
        """Destinations with currently valid routes."""
        return [d for d, entry in self._routes.items() if entry.is_valid(now)]

    def all_entries(self) -> List[RouteEntry]:
        """Every entry, valid or not (used by proactive protocols)."""
        return list(self._routes.values())

    def __len__(self) -> int:
        return len(self._routes)


class PendingPacketBuffer:
    """Data packets waiting for a route, grouped by destination."""

    def __init__(self, capacity_per_destination: int = 16, max_age_s: float = 10.0) -> None:
        self.capacity_per_destination = capacity_per_destination
        self.max_age_s = max_age_s
        self._buffers: Dict[int, List[Tuple[float, Packet]]] = {}

    def add(self, packet: Packet, now: float) -> bool:
        """Buffer a packet; returns False (drop) when the buffer is full."""
        queue = self._buffers.setdefault(packet.destination, [])
        self._expire(queue, now)
        if len(queue) >= self.capacity_per_destination:
            return False
        queue.append((now, packet))
        return True

    def pop_all(self, destination: int, now: float) -> List[Packet]:
        """Remove and return all non-expired packets buffered for ``destination``."""
        queue = self._buffers.pop(destination, [])
        self._expire(queue, now)
        return [packet for _, packet in queue]

    def pending_destinations(self) -> List[int]:
        """Destinations that currently have buffered packets."""
        return [destination for destination, queue in self._buffers.items() if queue]

    def has_pending(self, destination: int) -> bool:
        """True when packets are buffered for ``destination``."""
        return bool(self._buffers.get(destination))

    def drop_all(self, destination: int) -> int:
        """Discard everything buffered for ``destination``; returns the count."""
        queue = self._buffers.pop(destination, [])
        return len(queue)

    def _expire(self, queue: List[Tuple[float, Packet]], now: float) -> None:
        queue[:] = [(t, p) for t, p in queue if now - t <= self.max_age_s]

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._buffers.values())
