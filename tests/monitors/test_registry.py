"""Monitor registry contract: kinds, presets, name resolution."""

from __future__ import annotations

import pytest

from repro.monitors import (
    MONITOR_PRESETS,
    MONITOR_TYPES,
    ConservationInvariantMonitor,
    LatencyDistributionMonitor,
    Monitor,
    TimeSeriesMonitor,
    TransmissionHeatmapMonitor,
    available_monitor_presets,
    available_monitors,
    monitor_from_name,
    monitor_preset_rows,
    monitor_rows,
    register_monitor,
    register_monitor_preset,
    unregister_monitor,
    unregister_monitor_preset,
)


def test_builtin_kinds_registered():
    assert set(available_monitors()) >= {
        "latency-dist",
        "timeseries",
        "heatmap",
        "invariant",
    }
    assert MONITOR_TYPES["latency-dist"] is LatencyDistributionMonitor
    assert MONITOR_TYPES["timeseries"] is TimeSeriesMonitor
    assert MONITOR_TYPES["heatmap"] is TransmissionHeatmapMonitor
    assert MONITOR_TYPES["invariant"] is ConservationInvariantMonitor


def test_builtin_presets_registered():
    assert set(available_monitor_presets()) >= {
        "latency-dist-fine",
        "timeseries-1s",
        "timeseries-100ms",
        "heatmap-250m",
        "heatmap-1km",
        "invariant-strict",
    }


def test_monitor_from_name_kind_and_overrides():
    monitor = monitor_from_name("timeseries", bucket_s=0.25)
    assert isinstance(monitor, TimeSeriesMonitor)
    assert monitor.bucket_s == 0.25


def test_monitor_from_name_preset_defaults_and_overrides():
    preset = monitor_from_name("invariant-strict")
    assert isinstance(preset, ConservationInvariantMonitor)
    assert preset.checkpoint_interval_s == 1.0
    overridden = monitor_from_name("invariant-strict", checkpoint_interval_s=0.5)
    assert overridden.checkpoint_interval_s == 0.5


def test_monitor_from_name_preset_wins_over_kind():
    # Same precedence rule as the workload/radio registries.
    fine = monitor_from_name("latency-dist-fine")
    assert fine.sketch.bin_ratio == 1.01
    plain = monitor_from_name("latency-dist")
    assert plain.sketch.bin_ratio == 1.05


def test_monitor_from_name_unknown_is_actionable():
    with pytest.raises(KeyError, match="unknown monitor 'nope'"):
        monitor_from_name("nope")


def test_register_monitor_rejects_duplicates_and_sets_name():
    @register_monitor("test-probe")
    class TestProbe(Monitor):
        pass

    try:
        assert TestProbe.monitor_name == "test-probe"
        assert isinstance(monitor_from_name("test-probe"), TestProbe)
        with pytest.raises(ValueError, match="already registered"):
            register_monitor("test-probe")(TestProbe)
    finally:
        unregister_monitor("test-probe")
    assert "test-probe" not in available_monitors()


def test_register_monitor_preset_rejects_duplicates():
    register_monitor_preset(
        "test-probe-preset", TimeSeriesMonitor, "test", kind="timeseries", bucket_s=2.0
    )
    try:
        built = monitor_from_name("test-probe-preset")
        assert built.bucket_s == 2.0
        with pytest.raises(ValueError, match="already registered"):
            register_monitor_preset("test-probe-preset", TimeSeriesMonitor, "test")
    finally:
        unregister_monitor_preset("test-probe-preset")
    assert "test-probe-preset" not in MONITOR_PRESETS


def test_rows_cover_every_registration():
    kind_rows = monitor_rows()
    assert {row["monitor"] for row in kind_rows} == set(available_monitors())
    assert all(row["description"] for row in kind_rows)
    preset_rows = monitor_preset_rows()
    assert {row["preset"] for row in preset_rows} == set(available_monitor_presets())
    assert all(row["monitor"] in available_monitors() for row in preset_rows)
