"""Tests for the link-lifetime model (paper Eqns. 1-4, Fig. 3)."""

import math

import pytest

from repro.core.link_lifetime import (
    LinkLifetimePredictor,
    link_breakage_indicator,
    link_lifetime_1d,
    link_lifetime_2d,
    relative_motion_1d,
    time_to_closest_approach,
)
from repro.geometry import Vec2
from repro.mobility.vehicle import VehicleState


class TestOneDimensionalLifetime:
    def test_receding_at_constant_speed(self):
        # Same position, i pulls ahead at 5 m/s: the link lasts r / dv.
        assert link_lifetime_1d(0.0, 5.0, 0.0, 250.0) == pytest.approx(50.0)

    def test_approaching_then_receding(self):
        # i starts 100 m behind j and closes at 10 m/s: it must cover
        # 100 + 250 = 350 m relative before the link breaks ahead of j.
        assert link_lifetime_1d(-100.0, 10.0, 0.0, 250.0) == pytest.approx(35.0)

    def test_identical_speeds_never_break(self):
        assert link_lifetime_1d(50.0, 0.0, 0.0, 250.0) == math.inf

    def test_already_out_of_range_is_zero(self):
        assert link_lifetime_1d(300.0, 1.0, 0.0, 250.0) == 0.0

    def test_symmetric_in_sign_of_relative_speed(self):
        forward = link_lifetime_1d(0.0, 4.0, 0.0, 250.0)
        backward = link_lifetime_1d(0.0, -4.0, 0.0, 250.0)
        assert forward == pytest.approx(backward)

    def test_lifetime_shrinks_with_relative_speed(self):
        slow = link_lifetime_1d(0.0, 2.0, 0.0, 250.0)
        fast = link_lifetime_1d(0.0, 20.0, 0.0, 250.0)
        assert fast < slow

    def test_acceleration_shortens_lifetime(self):
        without = link_lifetime_1d(0.0, 5.0, 0.0, 250.0)
        with_accel = link_lifetime_1d(0.0, 5.0, 1.0, 250.0)
        assert with_accel < without
        # Closed form: 0.5 t^2 + 5 t - 250 = 0.
        expected = (-5.0 + math.sqrt(25.0 + 2.0 * 250.0)) / 1.0
        assert with_accel == pytest.approx(expected)

    def test_deceleration_reverses_motion_and_breaks_behind(self):
        # i pulls ahead but decelerates relative to j: the separation peaks at
        # 12.5 m, reverses, and the link finally breaks 250 m *behind* j.
        expected = (10.0 + math.sqrt(100.0 + 2000.0)) / 2.0
        assert link_lifetime_1d(0.0, 5.0, -1.0, 250.0) == pytest.approx(expected)

    def test_deceleration_with_saturation_makes_link_permanent(self):
        # Same scenario, but the relative deceleration stops once the speeds
        # equalise (5 s horizon): the separation then stays at 12.5 m forever.
        assert link_lifetime_1d(0.0, 5.0, -1.0, 250.0, speed_limit_duration=5.0) == math.inf

    def test_speed_limit_horizon_switches_to_constant_speed(self):
        # Accelerating apart at 1 m/s^2 for 10 s then constant: compare with
        # naive constant-acceleration solution (which would be shorter).
        limited = link_lifetime_1d(
            0.0, 0.0, 1.0, 250.0, speed_limit_duration=10.0
        )
        unlimited = link_lifetime_1d(0.0, 0.0, 1.0, 250.0)
        assert unlimited < limited
        # After 10 s: moved 50 m, relative speed 10 m/s, 200 m to go -> 30 s total.
        assert limited == pytest.approx(30.0)

    def test_opposite_direction_vehicles_break_quickly(self):
        # Closing/receding at 60 m/s (30 + 30 opposite): under 10 s of contact
        # window when starting at range edge.
        lifetime = link_lifetime_1d(-249.0, 60.0, 0.0, 250.0)
        assert lifetime < 10.0


class TestHelpers:
    def test_relative_motion(self):
        assert relative_motion_1d(30.0, 25.0, 1.0, -1.0) == (5.0, 2.0)

    def test_indicator_sign(self):
        assert link_breakage_indicator(10.0) == 1
        assert link_breakage_indicator(-10.0) == -1

    def test_time_to_closest_approach(self):
        t = time_to_closest_approach(Vec2(0, 0), Vec2(10, 0), Vec2(100, 0), Vec2(0, 0))
        assert t == pytest.approx(10.0)
        # Receding vehicles are closest now.
        t = time_to_closest_approach(Vec2(0, 0), Vec2(-10, 0), Vec2(100, 0), Vec2(0, 0))
        assert t == 0.0


class TestTwoDimensionalLifetime:
    def test_matches_1d_for_collinear_motion(self):
        lifetime_2d = link_lifetime_2d(
            Vec2(0, 0), Vec2(30, 0), Vec2(100, 0), Vec2(25, 0), 250.0
        )
        lifetime_1d = link_lifetime_1d(-100.0, 5.0, 0.0, 250.0)
        assert lifetime_2d == pytest.approx(lifetime_1d)

    def test_perpendicular_crossing(self):
        # Two vehicles crossing at right angles through the same point.
        lifetime = link_lifetime_2d(Vec2(0, 0), Vec2(10, 0), Vec2(0, 0), Vec2(0, 10), 250.0)
        # Separation grows as sqrt(2) * 10 * t -> breaks at 250 / 14.14.
        assert lifetime == pytest.approx(250.0 / (10.0 * math.sqrt(2.0)))

    def test_stationary_pair_never_breaks(self):
        assert link_lifetime_2d(Vec2(0, 0), Vec2(0, 0), Vec2(50, 0), Vec2(0, 0)) == math.inf

    def test_out_of_range_pair_is_zero(self):
        assert link_lifetime_2d(Vec2(0, 0), Vec2(1, 0), Vec2(500, 0), Vec2(0, 0), 250.0) == 0.0


class TestPredictor:
    def _vehicle(self, x, y, speed, heading):
        return VehicleState(vid=0, position=Vec2(x, y), speed=speed, heading=heading)

    def test_same_direction_outlives_opposite_direction(self):
        predictor = LinkLifetimePredictor(250.0)
        a = self._vehicle(0, 0, 30.0, 0.0)
        same = self._vehicle(100, 0, 28.0, 0.0)
        opposite = self._vehicle(100, 0, 28.0, math.pi)
        assert predictor.predict(a, same) > predictor.predict(a, opposite)

    def test_detailed_prediction_reports_indicator(self):
        predictor = LinkLifetimePredictor(250.0)
        follower = self._vehicle(0, 0, 35.0, 0.0)
        leader = self._vehicle(50, 0, 25.0, 0.0)
        detail = predictor.predict_detailed(follower, leader)
        assert detail.lifetime > 0
        assert detail.relative_speed == pytest.approx(10.0)
        # The faster follower ends up ahead when the link finally breaks.
        assert detail.indicator == 1

    def test_path_lifetime_is_minimum(self):
        predictor = LinkLifetimePredictor()
        assert predictor.path_lifetime([12.0, 5.0, 30.0]) == 5.0
        assert predictor.path_lifetime([]) == 0.0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            LinkLifetimePredictor(0.0)

    def test_prediction_matches_simulated_breakage(self):
        """Analytic lifetime agrees with brute-force kinematic simulation."""
        predictor = LinkLifetimePredictor(250.0)
        a = self._vehicle(0, 0, 33.0, 0.0)
        b = self._vehicle(80, 3.5, 26.0, 0.0)
        predicted = predictor.predict(a, b)
        # Integrate positions until the distance exceeds the range.
        dt = 0.01
        t = 0.0
        pos_a, pos_b = a.position, b.position
        while pos_a.distance_to(pos_b) <= 250.0 and t < 500.0:
            pos_a = pos_a + a.velocity * dt
            pos_b = pos_b + b.velocity * dt
            t += dt
        assert predicted == pytest.approx(t, abs=0.1)
