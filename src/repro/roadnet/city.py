"""Synthetic city road networks: an arterial + local-street grid.

The Manhattan grid of :mod:`repro.roadnet.grid` treats every street alike;
real cities do not.  A small set of wide, fast arterial roads carries most of
the through-traffic while a dense mesh of local streets fills the blocks in
between.  :func:`build_city_graph` generates that topology as a plain
:class:`~repro.roadnet.graph.RoadGraph`, so everything that already consumes
road graphs (CAR's connectivity paths, GVGrid, RSU placement, the
graph-walk mobility model) works on city networks unchanged.

The generator is deliberately parameter-light: a regular grid of local
streets with every ``arterial_every``-th street upgraded to an arterial
(more lanes, higher speed limit).  RSUs are deployed either at
arterial/arterial crossings or over the whole area via
:func:`repro.roadnet.rsu_placement.place_on_grid`, matching the paper's
observation that infrastructure is "limited to urban area".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry import Vec2
from repro.roadnet.graph import RoadGraph
from repro.roadnet.grid import intersection_name
from repro.roadnet.rsu_placement import place_on_grid


@dataclass
class CityConfig:
    """Geometry of the synthetic arterial + grid city.

    Attributes:
        blocks_x: Number of city blocks along x.
        blocks_y: Number of city blocks along y.
        block_size_m: Side length of one block (local-street spacing).
        arterial_every: Every ``k``-th street (in both axes) is an arterial;
            0 disables arterials entirely (pure local grid).
        street_lanes / street_speed_mps: Local-street cross-section.
        arterial_lanes / arterial_speed_mps: Arterial cross-section.
        rsu_on_arterials_only: When True, RSU placement is restricted to
            arterial/arterial crossings; otherwise RSUs cover the whole grid.
    """

    blocks_x: int = 10
    blocks_y: int = 10
    block_size_m: float = 200.0
    arterial_every: int = 5
    street_lanes: int = 2
    street_speed_mps: float = 13.9
    arterial_lanes: int = 4
    arterial_speed_mps: float = 19.4
    rsu_on_arterials_only: bool = True

    @property
    def width_m(self) -> float:
        """Extent of the city along x."""
        return self.blocks_x * self.block_size_m

    @property
    def height_m(self) -> float:
        """Extent of the city along y."""
        return self.blocks_y * self.block_size_m

    def is_arterial_line(self, index: int) -> bool:
        """Whether the ``index``-th street (row or column) is an arterial."""
        return self.arterial_every > 0 and index % self.arterial_every == 0

    def total_street_km(self) -> float:
        """Total centre-line length of every street, in kilometres."""
        vertical = (self.blocks_x + 1) * self.height_m
        horizontal = (self.blocks_y + 1) * self.width_m
        return (vertical + horizontal) / 1000.0


def build_city_graph(config: Optional[CityConfig] = None) -> RoadGraph:
    """Build the arterial + local-street road graph of a synthetic city.

    The graph covers ``(blocks_x + 1) x (blocks_y + 1)`` intersections.  A
    road segment inherits the arterial cross-section when the street it lies
    on is an arterial line.
    """
    config = config if config is not None else CityConfig()
    if config.blocks_x < 1 or config.blocks_y < 1:
        raise ValueError("the city needs at least one block in each direction")
    graph = RoadGraph()
    block = config.block_size_m
    for ix in range(config.blocks_x + 1):
        for iy in range(config.blocks_y + 1):
            graph.add_intersection(intersection_name(ix, iy), Vec2(ix * block, iy * block))

    def road_params(line_index: int):
        if config.is_arterial_line(line_index):
            return config.arterial_lanes, config.arterial_speed_mps
        return config.street_lanes, config.street_speed_mps

    for ix in range(config.blocks_x + 1):
        for iy in range(config.blocks_y + 1):
            if ix < config.blocks_x:
                # Horizontal segment: lies on street row ``iy``.
                lanes, speed = road_params(iy)
                graph.add_road(
                    intersection_name(ix, iy),
                    intersection_name(ix + 1, iy),
                    lanes=lanes,
                    speed_limit_mps=speed,
                )
            if iy < config.blocks_y:
                # Vertical segment: lies on street column ``ix``.
                lanes, speed = road_params(ix)
                graph.add_road(
                    intersection_name(ix, iy),
                    intersection_name(ix, iy + 1),
                    lanes=lanes,
                    speed_limit_mps=speed,
                )
    return graph


def arterial_intersections(config: CityConfig) -> List[str]:
    """Names of the intersections where two arterials cross."""
    if config.arterial_every <= 0:
        return []
    return [
        intersection_name(ix, iy)
        for ix in range(config.blocks_x + 1)
        for iy in range(config.blocks_y + 1)
        if config.is_arterial_line(ix) and config.is_arterial_line(iy)
    ]


def place_city_rsus(
    config: CityConfig, graph: RoadGraph, spacing_m: float
) -> List[Vec2]:
    """RSU positions for a city at roughly ``spacing_m`` metre spacing.

    With ``rsu_on_arterials_only`` the units sit on arterial/arterial
    crossings, striding the crossing lattice independently in x and y so the
    realised spacing honours ``spacing_m`` (deployment follows the major
    roads); without it they cover the whole area on a regular grid.
    """
    if spacing_m <= 0 or spacing_m == float("inf"):
        return []
    if config.rsu_on_arterials_only and config.arterial_every > 0:
        arterial_spacing = config.arterial_every * config.block_size_m
        every_k = max(1, int(round(spacing_m / arterial_spacing)))
        arterial_lines_x = [
            ix for ix in range(config.blocks_x + 1) if config.is_arterial_line(ix)
        ]
        arterial_lines_y = [
            iy for iy in range(config.blocks_y + 1) if config.is_arterial_line(iy)
        ]
        return [
            graph.position_of(intersection_name(ix, iy))
            for i, ix in enumerate(arterial_lines_x)
            if i % every_k == 0
            for j, iy in enumerate(arterial_lines_y)
            if j % every_k == 0
        ]
    return place_on_grid(config.width_m, config.height_m, spacing_m)


__all__ = [
    "CityConfig",
    "build_city_graph",
    "arterial_intersections",
    "place_city_rsus",
]
