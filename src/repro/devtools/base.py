"""Rule base class and the parsed-module / project contexts rules see.

Mirrors the shape of :mod:`repro.workloads.base`: the abstract contract
lives here, the string-keyed registry in :mod:`repro.devtools.registry`,
and the concrete rules under :mod:`repro.devtools.rules` register
themselves with the ``@register_lint_rule`` decorator.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Iterator, List

from repro.devtools.astutils import ImportMap
from repro.devtools.findings import SEVERITY_ERROR, Finding


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule.

    Attributes:
        path: The path as given on the command line (for error messages).
        relpath: Package-relative posix path (``mobility/highway.py``);
            rules scope themselves by its prefix and findings report it.
        text: The raw source text.
        tree: The parsed AST.
        imports: Import bindings for dotted-name resolution.
    """

    path: str
    relpath: str
    text: str
    tree: ast.Module
    imports: ImportMap = field(default_factory=ImportMap)

    def finding(
        self, node: ast.AST, rule_id: str, message: str, severity: str
    ) -> Finding:
        """A finding anchored at ``node``'s location in this module."""
        return Finding(
            path=self.relpath,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule_id=rule_id,
            message=message,
            severity=severity,
        )


@dataclass
class ProjectContext:
    """Every module of one lint run, for cross-file (registry) rules."""

    modules: List[ParsedModule]


class LintRule:
    """A single lint rule.

    Subclasses set the class attributes, register via
    ``@register_lint_rule("<ID>")`` (which stamps ``rule_id``), and
    implement :meth:`check_module` for per-file checks and/or
    :meth:`check_project` for cross-file checks.  ``rationale`` is the
    one-line catalogue entry; ``historical_bug`` names the real bug in this
    repository the rule would have caught at authoring time.
    """

    rule_id: ClassVar[str] = ""
    severity: ClassVar[str] = SEVERITY_ERROR
    rationale: ClassVar[str] = ""
    historical_bug: ClassVar[str] = ""

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Per-file findings (default: none)."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Cross-file findings over the whole lint run (default: none)."""
        return iter(())

    def report(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        """Shorthand for a finding of this rule at ``node``."""
        return module.finding(node, self.rule_id, message, self.severity)
