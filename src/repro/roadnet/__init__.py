"""Road networks, zones and road-side-unit placement.

The geographic and infrastructure categories of the survey both rely on maps:
geographic routing partitions roads into zones or grid cells (Fig. 6) and
infrastructure routing deploys RSUs along roads or at intersections (Fig. 5).
This package supplies those structures.
"""

from repro.roadnet.city import (
    CityConfig,
    arterial_intersections,
    build_city_graph,
    place_city_rsus,
)
from repro.roadnet.graph import RoadGraph
from repro.roadnet.grid import build_highway_graph, build_manhattan_graph
from repro.roadnet.rsu_placement import (
    coverage_fraction,
    place_along_highway,
    place_at_intersections,
    place_on_grid,
)
from repro.roadnet.segments import RoadSegment
from repro.roadnet.zones import CorridorZone, GridPartition, RectZone, Zone

__all__ = [
    "CityConfig",
    "arterial_intersections",
    "build_city_graph",
    "place_city_rsus",
    "RoadGraph",
    "build_highway_graph",
    "build_manhattan_graph",
    "coverage_fraction",
    "place_along_highway",
    "place_at_intersections",
    "place_on_grid",
    "RoadSegment",
    "CorridorZone",
    "GridPartition",
    "RectZone",
    "Zone",
]
