"""Struct-of-arrays store for live node kinematic state.

The scalar simulator keeps node state scattered across objects: positions
live in :class:`~repro.mobility.vehicle.VehicleState` instances behind
per-node position providers, transmit powers as plain node attributes.
Every hot-path operation (frame delivery fan-out, carrier sensing,
reachability queries, mobility stepping) therefore walks Python objects one
at a time.

:class:`PositionStore` flips that layout: positions, velocities and transmit
powers live in contiguous float64 numpy arrays, one row per registered node,
with id<->row maps on the side.  The vectorized medium backend
(``spatial_backend="vectorized"``) registers every node here and computes
per-frame physics as array expressions over candidate rows; array-capable
mobility models write whole position arrays through the store per step.

Bit-exactness contract: the store never transforms values -- a row holds
exactly the floats the scalar code would hold, and readers get them back
unchanged (float64 round-trips through numpy arrays bit for bit).  That is
what lets the vectorized backend reproduce the scalar backends' event traces
byte for byte.

This module is the only place the core imports numpy; callers that want a
clear failure when numpy is missing go through :func:`require_numpy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.geometry import Vec2

#: Initial row capacity; grows by doubling, so registration is amortised O(1).
_INITIAL_CAPACITY = 64


def require_numpy(feature: str = 'spatial_backend="vectorized"'):
    """Return the numpy module or fail fast with an actionable error."""
    if np is None:
        raise RuntimeError(
            f"{feature} requires numpy, which is not installed; "
            f"install it (pip install numpy) or use spatial_backend=\"grid\""
        )
    return np


class PositionStore:
    """Contiguous struct-of-arrays state for every registered node.

    Columns (all float64, one row per node):

    * ``xs`` / ``ys`` -- position in metres,
    * ``vxs`` / ``vys`` -- velocity in m/s,
    * ``tx_power_dbm`` -- transmit power.

    Rows are dense: removal swaps the last row into the vacated slot, so the
    live arrays are always ``self.size`` rows with no holes, and array
    expressions never need a liveness mask.  ``row_of`` / ``id_at`` map
    between node ids and row indices.

    A row is either *managed* (an array-capable mobility model writes it in
    bulk each step) or *pulled* (the medium copies the node's scalar
    ``position``/``velocity`` into it on every refresh).  Static rows (RSUs)
    are pulled once at registration and never touched again.
    """

    def __init__(self) -> None:
        require_numpy()
        capacity = _INITIAL_CAPACITY
        self.xs = np.zeros(capacity)
        self.ys = np.zeros(capacity)
        self.vxs = np.zeros(capacity)
        self.vys = np.zeros(capacity)
        self.tx_power_dbm = np.zeros(capacity)
        self.size = 0
        self._row_of: Dict[int, int] = {}
        self._id_at: List[int] = []
        #: Rows bulk-written by a mobility model (skip the scalar pull).
        self._managed: Dict[int, bool] = {}
        #: Rows whose provider never moves (pulled once, never refreshed).
        self._static: Dict[int, bool] = {}
        #: Bumped on any structural or positional change; lets callers cache
        #: derived arrays (e.g. grid cell coordinates) per version.
        self.version = 0
        #: Bumped only when rows are added or removed (row<->id mapping
        #: changed); lets callers cache per-row metadata across position
        #: updates.
        self.structure_version = 0

    # ------------------------------------------------------------- structure
    def _grow(self) -> None:
        capacity = len(self.xs) * 2
        for name in ("xs", "ys", "vxs", "vys", "tx_power_dbm"):
            old = getattr(self, name)
            new = np.zeros(capacity)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)

    def add(
        self,
        node_id: int,
        position: Vec2,
        velocity: Optional[Vec2] = None,
        tx_power_dbm: float = 20.0,
        static: bool = False,
    ) -> int:
        """Append a row for ``node_id`` and return its row index."""
        if node_id in self._row_of:
            raise ValueError(f"node id {node_id} already stored")
        if self.size == len(self.xs):
            self._grow()
        row = self.size
        self.size += 1
        self._row_of[node_id] = row
        self._id_at.append(node_id)
        self.xs[row] = position.x
        self.ys[row] = position.y
        if velocity is not None:
            self.vxs[row] = velocity.x
            self.vys[row] = velocity.y
        else:
            self.vxs[row] = 0.0
            self.vys[row] = 0.0
        self.tx_power_dbm[row] = tx_power_dbm
        self._managed[node_id] = False
        self._static[node_id] = static
        self.version += 1
        self.structure_version += 1
        return row

    def remove(self, node_id: int) -> None:
        """Drop ``node_id``'s row (the last row is swapped into its place)."""
        row = self._row_of.pop(node_id, None)
        if row is None:
            return
        last = self.size - 1
        if row != last:
            moved_id = self._id_at[last]
            for name in ("xs", "ys", "vxs", "vys", "tx_power_dbm"):
                column = getattr(self, name)
                column[row] = column[last]
            self._id_at[row] = moved_id
            self._row_of[moved_id] = row
        self._id_at.pop()
        self.size = last
        self._managed.pop(node_id, None)
        self._static.pop(node_id, None)
        self.version += 1
        self.structure_version += 1

    def __len__(self) -> int:
        return self.size

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._row_of

    def row_of(self, node_id: int) -> int:
        """Row index of ``node_id``."""
        return self._row_of[node_id]

    def id_at(self, row: int) -> int:
        """Node id stored at ``row``."""
        return self._id_at[row]

    def ids(self) -> List[int]:
        """All stored node ids in row order (a copy)."""
        return list(self._id_at)

    def ids_view(self) -> List[int]:
        """The live row->id list itself (callers must not mutate it).

        The vectorized delivery path maps surviving rows back to node ids
        once per frame; indexing the list directly beats a per-row method
        call on that path.
        """
        return self._id_at

    def rows_for(self, node_ids) -> "np.ndarray":
        """Row indices for an iterable of node ids (int64 array, same order)."""
        row_of = self._row_of
        return np.fromiter(
            (row_of[node_id] for node_id in node_ids), dtype=np.int64
        )

    # ------------------------------------------------------------- ownership
    def set_managed(self, node_id: int, managed: bool = True) -> None:
        """Mark ``node_id``'s row as bulk-written by a mobility model."""
        if node_id not in self._row_of:
            raise KeyError(node_id)
        self._managed[node_id] = managed

    def unmanaged_dynamic_ids(self) -> List[int]:
        """Node ids whose rows must be pulled from scalar state on refresh."""
        return [
            node_id
            for node_id in self._id_at
            if not self._managed[node_id] and not self._static[node_id]
        ]

    # ----------------------------------------------------------------- values
    def set_position(self, node_id: int, position: Vec2) -> None:
        """Write one node's position (scalar pull path)."""
        row = self._row_of[node_id]
        self.xs[row] = position.x
        self.ys[row] = position.y

    def set_velocity(self, node_id: int, velocity: Vec2) -> None:
        """Write one node's velocity (scalar pull path)."""
        row = self._row_of[node_id]
        self.vxs[row] = velocity.x
        self.vys[row] = velocity.y

    def set_tx_power(self, node_id: int, tx_power_dbm: float) -> None:
        """Write one node's transmit power."""
        self.tx_power_dbm[self._row_of[node_id]] = tx_power_dbm

    def position_of(self, node_id: int) -> Vec2:
        """Read one node's stored position back as a :class:`Vec2`."""
        row = self._row_of[node_id]
        return Vec2(float(self.xs[row]), float(self.ys[row]))

    def load_columns(self, rows, xs, ys, vxs=None, vys=None) -> None:
        """Bulk-write position (and optionally velocity) columns by row index.

        ``rows`` indexes the target rows; the value arrays align with it
        element for element.  One fancy-indexed assignment per column
        replaces a Python loop of per-node ``set_position`` calls -- the
        shared-memory sweep uses this to splat staged time-zero columns
        (mapped read-only out of a shared segment) straight into a worker's
        store.  Values are copied verbatim (float64 assignment is bitwise),
        so loading columns that equal the rows' current values is exactly a
        no-op apart from the version bump.
        """
        self.xs[rows] = xs
        self.ys[rows] = ys
        if vxs is not None:
            self.vxs[rows] = vxs
        if vys is not None:
            self.vys[rows] = vys
        self.version += 1

    def touch(self) -> None:
        """Record that stored values changed (invalidate derived caches)."""
        self.version += 1


__all__ = ["PositionStore", "require_numpy"]
