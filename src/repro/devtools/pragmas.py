"""Per-line suppression pragmas.

A finding is suppressed by a pragma comment *on the same physical line*,
and every suppression must carry a justification::

    rng = random.Random(0)  # repro-lint: ok RNG-001 -- catalogue listing only

Several rule ids may be suppressed at once (``ok RNG-001,DET-001 -- ...``).
A pragma without a reason, with an unparseable body, or naming an unknown
rule id does not suppress anything -- it is itself reported as a
``LINT-001`` finding, so suppressions can never silently rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

#: Marker that makes a comment a lint pragma.
PRAGMA_MARKER = "repro-lint:"

_BODY_RE = re.compile(
    r"^ok\s+(?P<ids>[A-Z]{2,8}-\d{3}(?:\s*,\s*[A-Z]{2,8}-\d{3})*)"
    r"\s+--\s+(?P<reason>\S.*)$"
)


@dataclass(frozen=True)
class Pragma:
    """A well-formed suppression: rule ids justified on one line."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str

    def suppresses(self, rule_id: str, line: int) -> bool:
        """True when this pragma covers ``rule_id`` on ``line``."""
        return line == self.line and rule_id in self.rule_ids


@dataclass(frozen=True)
class PragmaError:
    """A malformed pragma (reported as a ``LINT-001`` finding)."""

    line: int
    col: int
    message: str


def extract_pragmas(
    text: str, known_rule_ids: Iterable[str]
) -> Tuple[List[Pragma], List[PragmaError]]:
    """All pragmas in ``text``, split into well-formed and malformed.

    Comments are found with :mod:`tokenize` (not substring search), so a
    pragma-shaped string *literal* never suppresses anything.  ``text`` is
    assumed to already parse as Python (the engine lints only files that
    survived :func:`ast.parse`).
    """
    known: Set[str] = set(known_rule_ids)
    pragmas: List[Pragma] = []
    errors: List[PragmaError] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - ast
        return pragmas, errors  # parsed already; tokenize failure is theoretical
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string.lstrip("#").strip()
        marker_at = comment.find(PRAGMA_MARKER)
        if marker_at < 0:
            continue
        line, col = token.start
        body = comment[marker_at + len(PRAGMA_MARKER):].strip()
        match = _BODY_RE.match(body)
        if match is None:
            errors.append(
                PragmaError(
                    line,
                    col,
                    "malformed pragma; expected "
                    "'# repro-lint: ok <RULE-ID>[,<RULE-ID>...] -- <reason>'",
                )
            )
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("ids").split(",")
        )
        unknown = [rule_id for rule_id in rule_ids if rule_id not in known]
        if unknown:
            errors.append(
                PragmaError(
                    line,
                    col,
                    f"pragma names unknown rule id(s): {', '.join(unknown)}",
                )
            )
            continue
        pragmas.append(Pragma(line, rule_ids, match.group("reason").strip()))
    return pragmas, errors
