"""The communication-link lifetime model (paper Sec. IV.A.1, Eqns. 1-4, Fig. 3).

The paper models two vehicles *i* (sender) and *j* (receiver) moving along a
road.  With travelled distances ``S_i(t)`` and ``S_j(t)`` (Eqn. 1) and an
initial separation ``d_0``, the separation at time *t* is

    d_t = S_i(t) - S_j(t) + d_0                                   (Eqn. 2)

The indicator ``I(i, j)`` records which vehicle is ahead when the link breaks
(Eqn. 3), and the link breaks when the separation reaches the communication
range ``r``:

    d_t = r * I(i, j)                                             (Eqn. 4)

For piecewise-constant accelerations the separation is a quadratic in *t*, so
Eqn. 4 can be solved in closed form; that closed form is what this module
provides, together with a 2-D generalisation used on non-straight roads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.geometry import Vec2
from repro.mobility.vehicle import VehicleState

#: Value returned when the link never breaks under the assumed kinematics.
NEVER = math.inf


def relative_motion_1d(
    speed_i: float,
    speed_j: float,
    accel_i: float = 0.0,
    accel_j: float = 0.0,
) -> Tuple[float, float]:
    """Relative speed and acceleration of vehicle *i* with respect to *j*."""
    return speed_i - speed_j, accel_i - accel_j


def link_breakage_indicator(separation_at_break: float) -> int:
    """Eqn. 3: +1 when vehicle *i* is ahead at breakage, -1 otherwise."""
    return 1 if separation_at_break > 0 else -1


def _smallest_positive_root(a: float, b: float, c: float) -> Optional[float]:
    """Smallest strictly positive root of ``a t^2 + b t + c = 0`` (or None)."""
    eps = 1e-12
    roots = []
    if abs(a) < eps:
        if abs(b) < eps:
            return None
        roots.append(-c / b)
    else:
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0:
            return None
        sqrt_d = math.sqrt(discriminant)
        roots.extend([(-b - sqrt_d) / (2.0 * a), (-b + sqrt_d) / (2.0 * a)])
    positive = [t for t in roots if t > eps]
    if not positive:
        return None
    return min(positive)


def link_lifetime_1d(
    initial_separation: float,
    relative_speed: float,
    relative_acceleration: float = 0.0,
    communication_range: float = 250.0,
    speed_limit_duration: Optional[float] = None,
) -> float:
    """Solve Eqn. 4 for 1-D (along-road) motion.

    Args:
        initial_separation: ``d_0``, the signed separation ``x_i - x_j`` at
            time 0 (positive when *i* is ahead of *j*).
        relative_speed: ``v_i - v_j`` at time 0.
        relative_acceleration: ``a_i - a_j`` (assumed constant).
        communication_range: The range ``r`` at which the link breaks.
        speed_limit_duration: Optional horizon after which accelerations are
            assumed to have saturated (vehicles reach the speed limit ``v_m``
            in the paper's scenario II of Fig. 3).  Beyond the horizon the
            motion continues at the speed reached at the horizon.

    Returns:
        The lifetime of the link in seconds; ``math.inf`` when the separation
        never reaches ``r`` under the assumed kinematics; ``0.0`` when the
        vehicles are already out of range.
    """
    r = communication_range
    d0 = initial_separation
    if abs(d0) > r:
        return 0.0
    dv = relative_speed
    da = relative_acceleration

    def lifetime_quadratic(d0_: float, dv_: float, da_: float) -> Optional[float]:
        candidates = []
        for boundary in (r, -r):
            root = _smallest_positive_root(0.5 * da_, dv_, d0_ - boundary)
            if root is not None:
                candidates.append(root)
        if not candidates:
            return None
        return min(candidates)

    if speed_limit_duration is None or da == 0.0:
        result = lifetime_quadratic(d0, dv, da)
        return result if result is not None else NEVER

    # Phase 1: constant relative acceleration until the saturation horizon.
    horizon = max(0.0, speed_limit_duration)
    first = lifetime_quadratic(d0, dv, da)
    if first is not None and first <= horizon:
        return first
    # Phase 2: constant relative speed from the horizon onwards.
    d_at_horizon = d0 + dv * horizon + 0.5 * da * horizon * horizon
    v_at_horizon = dv + da * horizon
    if abs(d_at_horizon) > r:
        return horizon
    second = lifetime_quadratic(d_at_horizon, v_at_horizon, 0.0)
    if second is None:
        return NEVER
    return horizon + second


def link_lifetime_2d(
    position_i: Vec2,
    velocity_i: Vec2,
    position_j: Vec2,
    velocity_j: Vec2,
    communication_range: float = 250.0,
) -> float:
    """Lifetime of a link between two vehicles moving in the plane.

    Assumes constant velocities: the squared separation is a quadratic in
    time, so the first time ``|p_rel + v_rel t| = r`` has a closed form.
    Returns ``math.inf`` when the vehicles never separate beyond ``r`` and
    ``0.0`` when they are already out of range.
    """
    r = communication_range
    p = position_i - position_j
    v = velocity_i - velocity_j
    if p.norm() > r:
        return 0.0
    a = v.norm_sq()
    if a == 0.0:
        return NEVER
    b = 2.0 * p.dot(v)
    c = p.norm_sq() - r * r
    root = _smallest_positive_root(a, b, c)
    return root if root is not None else NEVER


def time_to_closest_approach(
    position_i: Vec2, velocity_i: Vec2, position_j: Vec2, velocity_j: Vec2
) -> float:
    """Time at which two constant-velocity vehicles are closest (>= 0)."""
    p = position_i - position_j
    v = velocity_i - velocity_j
    speed_sq = v.norm_sq()
    if speed_sq == 0.0:
        return 0.0
    return max(0.0, -p.dot(v) / speed_sq)


@dataclass
class LinkLifetimePrediction:
    """A lifetime prediction together with the inputs that produced it."""

    lifetime: float
    separation: float
    relative_speed: float
    indicator: int


class LinkLifetimePredictor:
    """Predict link lifetimes from :class:`VehicleState` pairs.

    This is the primitive the mobility-based protocols (PBR, Taleb, Abedi)
    and the probability-based protocols (Yan, GVGrid) build on.  The
    prediction uses the 2-D constant-velocity model, which degenerates to the
    paper's 1-D model when both vehicles travel along the same road.
    """

    def __init__(self, communication_range: float = 250.0) -> None:
        if communication_range <= 0:
            raise ValueError("communication range must be positive")
        self.communication_range = communication_range

    def predict(self, vehicle_i: VehicleState, vehicle_j: VehicleState) -> float:
        """Predicted lifetime (seconds) of the link between two vehicles."""
        return link_lifetime_2d(
            vehicle_i.position,
            vehicle_i.velocity,
            vehicle_j.position,
            vehicle_j.velocity,
            self.communication_range,
        )

    def predict_detailed(
        self, vehicle_i: VehicleState, vehicle_j: VehicleState
    ) -> LinkLifetimePrediction:
        """Prediction plus the relative-motion quantities of Eqns. 2-3."""
        lifetime = self.predict(vehicle_i, vehicle_j)
        separation_vec = vehicle_i.position - vehicle_j.position
        relative_velocity = vehicle_i.velocity - vehicle_j.velocity
        # Signed separation along vehicle i's heading (the paper's road axis).
        axis = Vec2.from_polar(1.0, vehicle_i.heading)
        separation = separation_vec.dot(axis)
        if math.isfinite(lifetime):
            sep_at_break = separation + relative_velocity.dot(axis) * lifetime
        else:
            sep_at_break = separation
        return LinkLifetimePrediction(
            lifetime=lifetime,
            separation=separation,
            relative_speed=relative_velocity.norm(),
            indicator=link_breakage_indicator(sep_at_break),
        )

    def predict_from_snapshot(
        self,
        position_i: Vec2,
        velocity_i: Vec2,
        position_j: Vec2,
        velocity_j: Vec2,
    ) -> float:
        """Lifetime prediction from raw kinematic snapshots (beacon contents)."""
        return link_lifetime_2d(
            position_i, velocity_i, position_j, velocity_j, self.communication_range
        )

    def path_lifetime(self, link_lifetimes: Sequence[float]) -> float:
        """Lifetime of a routing path: the minimum of its link lifetimes.

        "The lifetime of the routing path is the minimum lifetime of the all
        links involved in the routing path" (Sec. IV.A.1).
        """
        if not link_lifetimes:
            return 0.0
        return min(link_lifetimes)
