"""DisjLi: on-demand node-disjoint multipath routing (Li & Cuthbert, paper ref. [12]).

The survey lists DisjLi under the flooding-based protocols (with a mobility
flavour): a single flooded discovery collects *several node-disjoint paths*,
and the source fails over between them when the active path breaks, instead
of paying for a fresh discovery.  Multipath redundancy is a classic answer to
VANET link fragility, so this implementation rounds out the connectivity
category with it.

Mechanics: the RREQ accumulates the traversed path (like DSR); the
destination collects the copies that arrive within a short window, greedily
selects up to ``max_paths`` node-disjoint ones (shortest first), and returns
one RREP per selected path.  The source stores all of them and moves to the
next path whenever the current one loses its next hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.taxonomy import Category, register_protocol
from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import DuplicateCache, PendingPacketBuffer
from repro.protocols.neighbors import BeaconService
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import Packet


@dataclass
class DisjLiConfig(ProtocolConfig):
    """Node-disjoint multipath parameters.

    Attributes:
        max_paths: Maximum number of node-disjoint paths kept per destination.
        route_lifetime_s: Validity of a discovered path set.
        discovery_timeout_s: Time to wait for replies before retrying.
        max_discovery_retries: Discovery retries before giving up.
        reply_collection_window_s: How long the destination collects RREQs
            before selecting the disjoint path set.
    """

    max_paths: int = 3
    route_lifetime_s: float = 15.0
    discovery_timeout_s: float = 1.2
    max_discovery_retries: int = 2
    reply_collection_window_s: float = 0.08
    rreq_size_bytes: int = 52
    rrep_size_bytes: int = 64
    rreq_forward_jitter_s: float = 0.02


@register_protocol(
    "DisjLi",
    Category.CONNECTIVITY,
    "On-demand node-disjoint multipath routing: one flooded discovery yields several "
    "disjoint paths and the source fails over between them.",
    paper_reference="[12], Sec. III.B",
)
class DisjLiProtocol(RoutingProtocol):
    """Node-disjoint multipath source routing."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[DisjLiConfig] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else DisjLiConfig())
        #: destination -> (list of node-disjoint paths, expiry, active index).
        self._path_sets: Dict[int, Dict[str, object]] = {}
        self.pending = PendingPacketBuffer()
        self._rreq_cache = DuplicateCache(lifetime_s=10.0)
        self._rreq_id = 0
        self._discoveries: Dict[int, Dict[str, float]] = {}
        #: Destination-side: (origin, rreq_id) -> collected candidate paths.
        self._candidates: Dict[Tuple[int, int], List[List[int]]] = {}
        self.beacons = BeaconService(
            self,
            interval_s=self.config.hello_interval_s,
            timeout_s=self.config.neighbor_timeout_s,
        )
        self.failovers = 0

    # ------------------------------------------------------------------ setup
    def start(self) -> None:
        """Start HELLO beaconing (used for next-hop liveness checks)."""
        super().start()
        self.beacons.start()

    def stop(self) -> None:
        """Stop beaconing."""
        super().stop()
        self.beacons.stop()

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Send on the active disjoint path, failing over or discovering as needed."""
        destination = packet.destination
        if destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        path = self._active_path(destination)
        if path is not None:
            packet.headers["src_route"] = list(path)
            packet.headers["route_index"] = 0
            self._forward_on_route(packet)
            return
        if not self.pending.add(packet, self.now):
            self.stats.buffer_drop()
        self._ensure_discovery(destination)

    # -------------------------------------------------------------- reception
    def handle_packet(self, packet: Packet, sender_id: int) -> None:
        """Dispatch on packet type."""
        ptype = packet.ptype
        if ptype == "HELLO":
            self.beacons.handle_beacon(packet, sender_id)
            return
        if ptype == "RREQ":
            self._handle_rreq(packet, sender_id)
        elif ptype == "RREP":
            self._handle_rrep(packet, sender_id)
        elif packet.is_data:
            self._handle_data(packet, sender_id)

    # --------------------------------------------------------------- multipath
    def _active_path(self, destination: int) -> Optional[List[int]]:
        """The currently usable path toward ``destination`` (with failover)."""
        entry = self._path_sets.get(destination)
        if entry is None or entry["expiry"] < self.now:  # type: ignore[operator]
            return None
        paths: List[List[int]] = entry["paths"]  # type: ignore[assignment]
        index = int(entry["active"])  # type: ignore[arg-type]
        while index < len(paths):
            path = paths[index]
            next_hop = path[1] if len(path) > 1 else None
            if next_hop is None or self.beacons.table.contains(next_hop, self.now):
                if index != entry["active"]:
                    entry["active"] = index
                return path
            # The first hop of this path is gone: fail over to the next path.
            self.failovers += 1
            self.stats.route_repair()
            index += 1
        return None

    @staticmethod
    def select_disjoint_paths(candidates: List[List[int]], max_paths: int) -> List[List[int]]:
        """Greedily pick up to ``max_paths`` node-disjoint paths (shortest first).

        Two paths are node-disjoint when they share no intermediate node;
        they necessarily share the two endpoints.
        """
        chosen: List[List[int]] = []
        used_intermediates: set = set()
        for path in sorted(candidates, key=len):
            intermediates = set(path[1:-1])
            if intermediates & used_intermediates:
                continue
            chosen.append(path)
            used_intermediates |= intermediates
            if len(chosen) >= max_paths:
                break
        return chosen

    # -------------------------------------------------------------- discovery
    def _ensure_discovery(self, destination: int) -> None:
        if destination in self._discoveries:
            return
        self._start_discovery(destination, retries=0)

    def _start_discovery(self, destination: int, retries: int) -> None:
        cfg: DisjLiConfig = self.config  # type: ignore[assignment]
        self._rreq_id += 1
        self._discoveries[destination] = {"started": self.now, "retries": retries}
        self.stats.route_discovery_started()
        rreq = self.make_control(
            "RREQ",
            size_bytes=cfg.rreq_size_bytes,
            rreq_id=self._rreq_id,
            origin=self.node.node_id,
            target=destination,
            route=[self.node.node_id],
        )
        self._rreq_cache.seen((self.node.node_id, self._rreq_id), self.now)
        self.broadcast(rreq)
        self.sim.schedule(cfg.discovery_timeout_s, self._discovery_timeout, destination)

    def _discovery_timeout(self, destination: int) -> None:
        cfg: DisjLiConfig = self.config  # type: ignore[assignment]
        state = self._discoveries.get(destination)
        if state is None:
            return
        if self._active_path(destination) is not None:
            self._discoveries.pop(destination, None)
            return
        retries = int(state["retries"])
        if retries < cfg.max_discovery_retries:
            self._start_discovery(destination, retries=retries + 1)
        else:
            self._discoveries.pop(destination, None)
            dropped = self.pending.drop_all(destination)
            for _ in range(dropped):
                self.stats.no_route_drop()

    def _handle_rreq(self, packet: Packet, sender_id: int) -> None:
        cfg: DisjLiConfig = self.config  # type: ignore[assignment]
        headers = packet.headers
        origin = headers["origin"]
        if origin == self.node.node_id:
            return
        route: List[int] = list(headers["route"])
        if self.node.node_id in route:
            return
        route.append(self.node.node_id)
        target = headers["target"]
        if target == self.node.node_id:
            # Collect every arriving copy: disjointness needs alternatives, so
            # the duplicate cache is *not* consulted at the destination.
            key = (origin, headers["rreq_id"])
            candidates = self._candidates.get(key)
            if candidates is None:
                self._candidates[key] = [route]
                self.sim.schedule(cfg.reply_collection_window_s, self._send_replies, key)
            else:
                candidates.append(route)
            return
        if self._rreq_cache.seen((origin, headers["rreq_id"]), self.now):
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        forwarded = packet.forwarded()
        forwarded.headers["route"] = route
        jitter = self.rng.uniform(0.0, cfg.rreq_forward_jitter_s)
        self.sim.schedule(jitter, self.broadcast, forwarded)

    def _send_replies(self, key: Tuple[int, int]) -> None:
        cfg: DisjLiConfig = self.config  # type: ignore[assignment]
        candidates = self._candidates.pop(key, [])
        if not candidates:
            return
        disjoint = self.select_disjoint_paths(candidates, cfg.max_paths)
        origin = key[0]
        for path in disjoint:
            rrep = self.make_control(
                "RREP",
                destination=origin,
                size_bytes=cfg.rrep_size_bytes + 4 * len(path),
                origin=origin,
                target=self.node.node_id,
                route=path,
                route_index=len(path) - 2,
            )
            if len(path) >= 2:
                self.unicast(rrep, path[-2])

    def _handle_rrep(self, packet: Packet, sender_id: int) -> None:
        cfg: DisjLiConfig = self.config  # type: ignore[assignment]
        headers = packet.headers
        origin = headers["origin"]
        route: List[int] = list(headers["route"])
        target = headers["target"]
        if origin == self.node.node_id:
            entry = self._path_sets.setdefault(
                target, {"paths": [], "expiry": 0.0, "active": 0}
            )
            paths: List[List[int]] = entry["paths"]  # type: ignore[assignment]
            if route not in paths:
                paths.append(route)
                paths.sort(key=len)
            entry["expiry"] = self.now + cfg.route_lifetime_s
            entry["active"] = 0
            state = self._discoveries.pop(target, None)
            if state is not None:
                self.stats.route_discovery_completed(self.now - state["started"])
            for data_packet in self.pending.pop_all(target, self.now):
                self.route_data(data_packet)
            return
        index = headers["route_index"]
        if index <= 0 or index >= len(route) or route[index] != self.node.node_id:
            return
        forwarded = packet.forwarded()
        forwarded.headers["route_index"] = index - 1
        self.unicast(forwarded, route[index - 1])

    # ------------------------------------------------------------- forwarding
    def _handle_data(self, packet: Packet, sender_id: int) -> None:
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        route: List[int] = packet.headers.get("src_route", [])
        try:
            index = route.index(self.node.node_id)
        except ValueError:
            return
        forwarded = packet.forwarded()
        forwarded.headers["route_index"] = index
        self._forward_on_route(forwarded)

    def _forward_on_route(self, packet: Packet) -> None:
        route: List[int] = packet.headers["src_route"]
        index = packet.headers.get("route_index", 0)
        if index >= len(route) - 1:
            return
        next_hop = route[index + 1]
        if not self.beacons.table.contains(next_hop, self.now):
            self.stats.link_break()
            # Intermediate nodes cannot fail over (only the source holds the
            # alternate paths); the packet is lost and the source's next
            # packet will switch paths.
            self.stats.no_route_drop()
            return
        packet.headers["route_index"] = index + 1
        self.unicast(packet, next_hop)
