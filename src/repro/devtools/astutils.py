"""Shared AST helpers: import tracking and dotted-name resolution.

The determinism rules all reason about *which module* a call is rooted in
(``random.Random`` vs a local ``rng.random()``, ``np.log10`` vs
``math.log10``).  :class:`ImportMap` records what each local name is bound
to by the module's import statements, and :func:`dotted_name` resolves an
attribute chain back to its fully qualified origin, so rules never
pattern-match on surface spelling alone (``import numpy as np``,
``from random import Random`` and plain ``import random`` all resolve).
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


def _callable_name(node: ast.expr) -> Optional[str]:
    """Trailing name of a called expression (``require_numpy`` for both the
    plain and the attribute-qualified spelling), or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ImportMap:
    """Local name -> fully qualified module/attribute bindings for a module."""

    def __init__(self) -> None:
        self._bindings: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        """Collect every ``import`` / ``from ... import`` binding in ``tree``.

        Also understands the repo's numpy gate: modules that must run
        without numpy bind it as ``np = require_numpy(...)`` (see
        :func:`repro.sim.position_store.require_numpy`) instead of
        importing it, and calls through that binding are numpy calls all
        the same.
        """
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and _callable_name(value.func) == "require_numpy"
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            imports._bindings[target.id] = "numpy"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        imports._bindings[alias.asname] = alias.name
                    else:
                        # ``import x.y`` binds the *top-level* name ``x``.
                        top = alias.name.split(".", 1)[0]
                        imports._bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                # Relative imports resolve inside the package; prefix the
                # dots so they can never collide with stdlib module names.
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname if alias.asname is not None else alias.name
                    imports._bindings[bound] = (
                        f"{prefix}.{alias.name}" if prefix else alias.name
                    )
        return imports

    def resolve(self, name: str) -> Optional[str]:
        """Qualified origin of local ``name``, or None when not import-bound."""
        return self._bindings.get(name)


def dotted_name(node: ast.expr, imports: ImportMap) -> Optional[str]:
    """Fully qualified dotted name of an attribute chain, or None.

    ``np.random.seed`` with ``import numpy as np`` resolves to
    ``numpy.random.seed``; ``Random`` with ``from random import Random``
    resolves to ``random.Random``; a chain rooted at a plain local variable
    (``self._rng.random``) resolves to None, which is how rules distinguish
    module-level RNG state from threaded stream instances.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.resolve(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def constant_str(node: ast.expr) -> Optional[str]:
    """The value of a string-literal node, or None for anything else."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
