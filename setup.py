"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so the package can
be installed in environments without the ``wheel`` package (legacy editable
installs via ``pip install -e . --no-use-pep517`` or ``python setup.py develop``).
"""

from setuptools import setup

setup()
