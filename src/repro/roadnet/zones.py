"""Geographic zones and grid partitions.

Sec. VI of the paper describes geographic routing as partitioning the road
into zones or grid cells (Fig. 6): packets are only forwarded inside the
relevant zone, and within a zone/cell only gateway nodes retransmit.  The
classes here provide those partitions; the protocols in
:mod:`repro.protocols.geographic` consume them.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

from repro.geometry import Vec2, segment_point_distance


class Zone(ABC):
    """A geographic region membership test."""

    @abstractmethod
    def contains(self, position: Vec2) -> bool:
        """True when ``position`` lies inside the zone."""


@dataclass(frozen=True)
class RectZone(Zone):
    """An axis-aligned rectangular zone (e.g. a 500 m section of road)."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def contains(self, position: Vec2) -> bool:
        """Inclusive containment test."""
        return (
            self.x_min <= position.x <= self.x_max
            and self.y_min <= position.y <= self.y_max
        )

    @property
    def center(self) -> Vec2:
        """Centre of the rectangle."""
        return Vec2((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    @property
    def area(self) -> float:
        """Area of the rectangle in square metres."""
        return max(0.0, self.x_max - self.x_min) * max(0.0, self.y_max - self.y_min)

    def expanded(self, margin: float) -> "RectZone":
        """A copy grown by ``margin`` metres on every side."""
        return RectZone(
            self.x_min - margin, self.y_min - margin, self.x_max + margin, self.y_max + margin
        )


@dataclass(frozen=True)
class CorridorZone(Zone):
    """The set of points within ``width`` metres of the source-destination line.

    Zone routing (Bronsted et al., Sec. VI.B) restricts forwarding to a
    corridor between the communicating endpoints; this class is that
    corridor.
    """

    start: Vec2
    end: Vec2
    width: float

    def contains(self, position: Vec2) -> bool:
        """True when the point is within ``width`` of the start-end segment."""
        return segment_point_distance(self.start, self.end, position) <= self.width


class GridPartition:
    """A regular square-cell partition of the plane (CarNet / GVGrid grids)."""

    def __init__(self, cell_size: float, origin: Vec2 = Vec2(0.0, 0.0)) -> None:
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size = cell_size
        self.origin = origin

    def cell_of(self, position: Vec2) -> Tuple[int, int]:
        """Integer cell coordinates containing ``position``."""
        return (
            math.floor((position.x - self.origin.x) / self.cell_size),
            math.floor((position.y - self.origin.y) / self.cell_size),
        )

    def cell_center(self, cell: Tuple[int, int]) -> Vec2:
        """Centre of a cell."""
        return Vec2(
            self.origin.x + (cell[0] + 0.5) * self.cell_size,
            self.origin.y + (cell[1] + 0.5) * self.cell_size,
        )

    def cell_zone(self, cell: Tuple[int, int]) -> RectZone:
        """The rectangular zone covered by a cell."""
        x0 = self.origin.x + cell[0] * self.cell_size
        y0 = self.origin.y + cell[1] * self.cell_size
        return RectZone(x0, y0, x0 + self.cell_size, y0 + self.cell_size)

    def same_cell(self, a: Vec2, b: Vec2) -> bool:
        """True when both positions fall in the same cell."""
        return self.cell_of(a) == self.cell_of(b)

    def cell_distance(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        """Chebyshev distance between two cells."""
        return max(abs(a[0] - b[0]), abs(a[1] - b[1]))

    def cells_between(self, start: Vec2, end: Vec2) -> list[Tuple[int, int]]:
        """Cells crossed by the straight line from ``start`` to ``end``.

        Sampled at quarter-cell resolution, which is sufficient for routing
        (the protocols only need a corridor of candidate cells).
        """
        distance = start.distance_to(end)
        if distance == 0:
            return [self.cell_of(start)]
        steps = max(1, int(distance / (self.cell_size / 4.0)))
        seen: list[Tuple[int, int]] = []
        for i in range(steps + 1):
            alpha = i / steps
            point = start + (end - start) * alpha
            cell = self.cell_of(point)
            if not seen or seen[-1] != cell:
                if cell not in seen:
                    seen.append(cell)
        return seen
