"""Tests for the shared protocol machinery (beacons, discovery state, location, registry)."""

import random

import pytest

from repro.geometry import Vec2
from repro.protocols.discovery import (
    DuplicateCache,
    PendingPacketBuffer,
    RouteEntry,
    RouteTable,
)
from repro.protocols.location import LocationService
from repro.protocols.neighbors import NeighborEntry, NeighborTable
from repro.protocols.registry import available_protocols, make_protocol_factory
from repro.core.taxonomy import global_registry
from repro.sim.packet import make_data_packet
from tests.helpers import build_static_network, line_positions


class TestDuplicateCache:
    def test_first_sighting_is_not_seen(self):
        cache = DuplicateCache()
        assert not cache.seen(("a", 1), now=0.0)
        assert cache.seen(("a", 1), now=1.0)

    def test_entries_expire(self):
        cache = DuplicateCache(lifetime_s=5.0)
        cache.seen("x", now=0.0)
        assert not cache.seen("x", now=10.0)

    def test_eviction_keeps_cache_bounded(self):
        cache = DuplicateCache(lifetime_s=100.0, max_entries=50)
        for i in range(500):
            cache.seen(i, now=float(i))
        assert len(cache) <= 51


class TestRouteTable:
    def test_put_get_and_expiry(self):
        table = RouteTable()
        table.put(RouteEntry(destination=9, next_hop=2, hop_count=3, expiry=10.0))
        assert table.get(9, now=5.0) is not None
        assert table.get(9, now=15.0) is None

    def test_update_if_better_prefers_fresher_sequence(self):
        table = RouteTable()
        table.put(RouteEntry(9, next_hop=2, hop_count=3, expiry=100.0, sequence=4))
        worse = RouteEntry(9, next_hop=3, hop_count=1, expiry=100.0, sequence=2)
        better = RouteEntry(9, next_hop=4, hop_count=5, expiry=100.0, sequence=6)
        assert not table.update_if_better(worse, now=0.0)
        assert table.update_if_better(better, now=0.0)
        assert table.get(9, 0.0).next_hop == 4

    def test_update_if_better_prefers_shorter_at_equal_sequence(self):
        table = RouteTable()
        table.put(RouteEntry(9, next_hop=2, hop_count=3, expiry=100.0, sequence=4))
        shorter = RouteEntry(9, next_hop=7, hop_count=2, expiry=100.0, sequence=4)
        assert table.update_if_better(shorter, now=0.0)
        assert table.get(9, 0.0).next_hop == 7

    def test_invalidate_via_next_hop(self):
        table = RouteTable()
        table.put(RouteEntry(1, next_hop=5, hop_count=1, expiry=100.0))
        table.put(RouteEntry(2, next_hop=5, hop_count=2, expiry=100.0))
        table.put(RouteEntry(3, next_hop=6, hop_count=1, expiry=100.0))
        affected = table.invalidate_via(5)
        assert sorted(affected) == [1, 2]
        assert table.get(3, 0.0) is not None

    def test_destinations_listing(self):
        table = RouteTable()
        table.put(RouteEntry(1, next_hop=5, hop_count=1, expiry=100.0))
        table.put(RouteEntry(2, next_hop=5, hop_count=1, expiry=0.5))
        assert table.destinations(now=1.0) == [1]


class TestPendingPacketBuffer:
    def test_add_and_pop(self):
        buffer = PendingPacketBuffer()
        packet = make_data_packet("p", 1, 9)
        assert buffer.add(packet, now=0.0)
        assert buffer.has_pending(9)
        popped = buffer.pop_all(9, now=1.0)
        assert [p.uid for p in popped] == [packet.uid]
        assert not buffer.has_pending(9)

    def test_capacity_limit(self):
        buffer = PendingPacketBuffer(capacity_per_destination=2)
        results = [buffer.add(make_data_packet("p", 1, 9), 0.0) for _ in range(4)]
        assert results == [True, True, False, False]

    def test_old_packets_expire(self):
        buffer = PendingPacketBuffer(max_age_s=5.0)
        buffer.add(make_data_packet("p", 1, 9), now=0.0)
        assert buffer.pop_all(9, now=10.0) == []

    def test_drop_all_counts(self):
        buffer = PendingPacketBuffer()
        for _ in range(3):
            buffer.add(make_data_packet("p", 1, 9), 0.0)
        assert buffer.drop_all(9) == 3


class TestNeighborTable:
    def _entry(self, node_id, last_seen, x=0.0):
        return NeighborEntry(node_id, Vec2(x, 0), Vec2(10, 0), last_seen=last_seen)

    def test_update_and_freshness(self):
        table = NeighborTable(timeout_s=3.0)
        table.update(self._entry(1, last_seen=0.0))
        assert table.contains(1, now=2.0)
        assert not table.contains(1, now=5.0)

    def test_purge_removes_stale_entries(self):
        table = NeighborTable(timeout_s=3.0)
        table.update(self._entry(1, last_seen=0.0))
        table.update(self._entry(2, last_seen=9.0))
        fresh = table.neighbors(now=10.0)
        assert [entry.node_id for entry in fresh] == [2]

    def test_predicted_position_dead_reckons(self):
        entry = NeighborEntry(1, Vec2(100, 0), Vec2(20, 0), last_seen=5.0)
        predicted = entry.predicted_position(now=7.0)
        assert predicted.x == pytest.approx(140.0)

    def test_remove(self):
        table = NeighborTable()
        table.update(self._entry(1, 0.0))
        table.remove(1)
        assert table.get(1) is None


class TestLocationService:
    def test_oracle_returns_exact_positions(self):
        sim, network, stats, nodes = build_static_network(line_positions(3, 100))
        service = LocationService(network)
        assert service.position_of(nodes[1].node_id) == Vec2(100, 0)
        assert service.distance_between(nodes[0].node_id, nodes[2].node_id) == pytest.approx(200.0)

    def test_unknown_node_returns_none(self):
        sim, network, stats, nodes = build_static_network([(0, 0)])
        service = LocationService(network)
        assert service.position_of(9999) is None

    def test_noise_and_staleness_perturb_position(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0)], velocities=[(20, 0)]
        )
        exact = LocationService(network)
        stale = LocationService(network, staleness_s=2.0)
        sim.schedule(5.0, lambda: None)
        sim.run()
        true_position = nodes[0].position
        assert exact.position_of(nodes[0].node_id) == true_position
        rewound = stale.position_of(nodes[0].node_id)
        assert rewound.x == pytest.approx(true_position.x - 40.0)
        noisy = LocationService(
            network, position_error_std_m=10.0, rng=random.Random(7)
        )
        assert noisy.position_of(nodes[0].node_id) != true_position


class TestRegistry:
    def test_every_registered_protocol_has_a_factory(self):
        assert set(available_protocols()) == {
            info.name for info in global_registry.protocols
        }

    def test_factory_builds_attached_protocol(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (100, 0)])
        factory = make_protocol_factory("AODV")
        protocol = factory(nodes[0])
        assert protocol.node is nodes[0]
        assert protocol.protocol_name == "AODV"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            make_protocol_factory("NotARealProtocol")

    def test_every_factory_instantiates(self):
        for name in available_protocols():
            sim, network, stats, nodes = build_static_network([(0, 0), (100, 0)], protocol=name)
            assert nodes[0].protocol is not None
            assert nodes[0].protocol.protocol_name == name
