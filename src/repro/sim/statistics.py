"""Metric collection.

The benchmarks regenerate the paper's Table I, which compares the five
protocol categories on reliability, overhead and applicability.  The
collector therefore tracks, per simulation run:

* per-flow packet delivery ratio, end-to-end delay and hop count,
* control-packet overhead (packets and bytes, plus the normalised overhead
  ratio used throughout the VANET literature),
* MAC/PHY losses (collisions, weak signal, queue drops) -- the mechanism
  behind the "broadcast storm" cost of connectivity-based routing,
* route-discovery latency and route lifetime -- the mobility/probability
  category metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.tap import EventTap


@dataclass
class FlowStats:
    """Per-application-flow accounting.

    ``mode`` selects the delivery semantics: ``"unicast"`` flows (the
    default) count one expected delivery per packet sent, while
    ``"broadcast"`` flows (safety beacons, geo-scoped warnings) count per
    receiver -- each sent packet *offers* as many deliveries as there are
    intended receivers at the send instant, and each unique
    (receiver, packet) reception counts one delivery, so the ratio reads as
    reachability rather than end-to-end success.
    """

    flow_id: int
    source: int
    destination: int
    sent: int = 0
    delivered: int = 0
    duplicates: int = 0
    mode: str = "unicast"
    #: Expected delivery opportunities: equals ``sent`` for unicast flows,
    #: and the sum of per-packet intended-receiver counts for broadcast.
    offered: int = 0
    delays: List[float] = field(default_factory=list)
    hop_counts: List[int] = field(default_factory=list)
    #: Unicast dedup: one ``Packet.flow_key`` per delivered packet (bounded
    #: by the flow's packet count, and consumed by the path-stretch metric).
    _delivered_seqs: Set[Tuple] = field(default_factory=set)
    #: Broadcast dedup: per in-flight packet, the receivers already counted.
    #: Entries are dropped by :meth:`retire` once a packet can no longer be
    #: received (the workload knows the linger bound), so a city-scale 10 Hz
    #: beacon run holds a sliding window of beacons instead of one
    #: (receiver, packet) tuple per delivery for the whole run.
    _receivers_by_key: Dict[Tuple, Set[int]] = field(default_factory=dict)

    @property
    def effective_offered(self) -> int:
        """The delivery-ratio denominator of this flow.

        Broadcast flows use ``offered`` exactly: a send with zero in-range
        receivers physically offers nothing, so it must not add phantom
        opportunities to the reachability denominator.  Unicast flows fall
        back to ``sent`` when ``offered`` is zero (hand-built records that
        never went through :meth:`StatsCollector.data_originated`).
        """
        if self.mode == "broadcast":
            return self.offered
        return self.offered if self.offered else self.sent

    @property
    def delivery_ratio(self) -> float:
        """Fraction of offered deliveries that happened.

        For unicast flows ``offered == sent``, so this is the classic packet
        delivery ratio; for broadcast flows it is per-receiver reachability.
        """
        denominator = self.effective_offered
        if denominator == 0:
            return 0.0
        return self.delivered / denominator

    @property
    def mean_delay(self) -> float:
        """Mean end-to-end delay of delivered packets (0 if none delivered)."""
        if not self.delays:
            return 0.0
        return sum(self.delays) / len(self.delays)

    @property
    def mean_hops(self) -> float:
        """Mean hop count of delivered packets (0 if none delivered)."""
        if not self.hop_counts:
            return 0.0
        return sum(self.hop_counts) / len(self.hop_counts)

    @property
    def delivered_keys(self) -> Set[Tuple]:
        """End-to-end identities (``Packet.flow_key``) of delivered packets.

        For broadcast flows only packets whose dedup entry has not been
        retired yet are reported (the consumer of this property -- the
        path-stretch metric -- only samples unicast flows, which never
        retire).
        """
        if self.mode == "broadcast":
            return set(self._receivers_by_key)
        return set(self._delivered_seqs)

    @property
    def dedup_entries(self) -> int:
        """Number of (receiver, packet) dedup tuples currently held.

        Memory diagnostic: for broadcast flows this must stay bounded by the
        in-flight packet window, not grow with every delivery of the run.
        """
        if self.mode == "broadcast":
            return sum(len(receivers) for receivers in self._receivers_by_key.values())
        return len(self._delivered_seqs)

    def retire(self, key: Tuple) -> None:
        """Drop the dedup state of one packet identity (``Packet.flow_key``).

        Called by broadcast workloads once a packet can no longer be
        received (its scope linger expired); a reception arriving after
        retirement would be counted again, so the caller must only retire
        keys it also stops matching deliveries for.
        """
        self._receivers_by_key.pop(key, None)


class StatsCollector:
    """Accumulates counters for one simulation run."""

    def __init__(self) -> None:
        #: Optional monitor event tap (:class:`repro.sim.tap.EventTap`).
        #: ``None`` for unmonitored runs, so every emission site below pays
        #: only an attribute load and a truthy check.
        self.tap: Optional["EventTap"] = None
        self.flows: Dict[int, FlowStats] = {}
        # Transmission counters (every frame handed to the channel).
        self.data_transmissions = 0
        self.control_transmissions = 0
        self.control_bytes = 0
        self.data_bytes = 0
        self.control_by_type: Dict[str, int] = {}
        # Loss counters.
        self.mac_collisions = 0
        self.phy_weak_signal = 0
        self.mac_queue_drops = 0
        self.ttl_drops = 0
        self.no_route_drops = 0
        self.buffer_drops = 0
        # Routing-layer events.
        self.route_discoveries_started = 0
        self.route_discoveries_completed = 0
        self.route_discovery_latencies: List[float] = []
        self.link_breaks = 0
        self.route_repairs = 0
        self.route_lifetimes: List[float] = []
        # Wired backbone usage (infrastructure category).
        self.backbone_transmissions = 0
        self.store_carry_events = 0

    # ------------------------------------------------------------------ flows
    def register_flow(
        self, flow_id: int, source: int, destination: int, mode: str = "unicast"
    ) -> FlowStats:
        """Create (or return) the accounting record for a flow.

        ``mode`` is ``"unicast"`` (default) or ``"broadcast"``; see
        :class:`FlowStats` for the delivery semantics it selects.
        """
        if flow_id not in self.flows:
            self.flows[flow_id] = FlowStats(flow_id, source, destination, mode=mode)
        return self.flows[flow_id]

    def data_originated(
        self, packet: Packet, expected_receivers: Optional[int] = None
    ) -> None:
        """Record that an application originated a data packet.

        ``expected_receivers`` is the number of intended receivers of this
        packet (broadcast workloads pass the in-scope population at the send
        instant); unicast senders omit it and offer exactly one delivery.
        """
        if packet.flow_id is None:
            return
        flow = self.register_flow(packet.flow_id, packet.source, packet.destination)
        flow.sent += 1
        offered = expected_receivers if expected_receivers is not None else 1
        flow.offered += offered
        if self.tap is not None:
            self.tap.packet_originated(packet, flow, offered)

    def data_delivered(
        self, packet: Packet, now: float, receiver: Optional[int] = None
    ) -> bool:
        """Record a data packet arriving at its final destination.

        ``receiver`` identifies the delivering node; broadcast flows dedupe
        per (receiver, packet) so every distinct receiver of the same packet
        counts one delivery.

        Returns:
            True when this was a *new* delivery, False for duplicates (and
            for packets outside flow accounting) -- so callers can gate
            once-per-delivery reactions (e.g. the application-layer delivery
            hook) without re-implementing the dedup.
        """
        if packet.flow_id is None:
            return False
        flow = self.register_flow(packet.flow_id, packet.source, packet.destination)
        key = packet.flow_key
        delay = max(0.0, now - packet.created_at)
        if flow.mode == "broadcast" and receiver is not None:
            # Broadcast dedup is per (receiver, packet), grouped by packet so
            # retire() can drop a whole packet's entries once it leaves
            # flight (bounding the table by the in-flight window).
            receivers = flow._receivers_by_key.setdefault(key, set())
            if receiver in receivers:
                flow.duplicates += 1
                if self.tap is not None:
                    self.tap.packet_delivered(packet, flow, receiver, False, delay)
                return False
            receivers.add(receiver)
        else:
            if key in flow._delivered_seqs:
                flow.duplicates += 1
                if self.tap is not None:
                    self.tap.packet_delivered(packet, flow, receiver, False, delay)
                return False
            flow._delivered_seqs.add(key)
        flow.delivered += 1
        flow.delays.append(delay)
        # ``hop_count`` is incremented by every *forwarder*; the originator's
        # own transmission is the first link, so the traversed link count is
        # one more than the forward count.
        flow.hop_counts.append(packet.hop_count + 1)
        if self.tap is not None:
            self.tap.packet_delivered(packet, flow, receiver, True, delay)
        return True

    def packet_retired(self, flow_id: int, key: Tuple) -> None:
        """Release the broadcast dedup state of one packet identity.

        Broadcast workloads call this once a packet can no longer be
        received (e.g. the safety-beacon scope linger expired), so the
        per-(receiver, packet) dedup table stays proportional to the
        in-flight window rather than to every delivery of the run.
        """
        flow = self.flows.get(flow_id)
        if flow is not None:
            flow.retire(key)
        if self.tap is not None:
            self.tap.packet_retired(flow_id, key, flow is not None)

    @property
    def dedup_entries(self) -> int:
        """Dedup tuples currently held across all flows (memory diagnostic)."""
        return sum(flow.dedup_entries for flow in self.flows.values())

    # ---------------------------------------------------------- transmissions
    def transmission(self, packet: Packet) -> None:
        """Record a frame handed to the wireless channel."""
        if packet.is_control:
            self.control_transmissions += 1
            self.control_bytes += packet.size_bytes
            self.control_by_type[packet.ptype] = self.control_by_type.get(packet.ptype, 0) + 1
        else:
            self.data_transmissions += 1
            self.data_bytes += packet.size_bytes

    def backbone_transmission(self, packet: Packet) -> None:
        """Record a frame crossing the wired RSU backbone."""
        self.backbone_transmissions += 1

    # ----------------------------------------------------------------- losses
    def collision(self, count: int = 1) -> None:
        """Record ``count`` frames lost to interference at some receiver.

        The vectorized delivery path counts a whole frame's collisions in
        one call; the scalar paths record them one at a time.
        """
        self.mac_collisions += count
        if self.tap is not None:
            self.tap.collision(count)

    def weak_signal(self) -> None:
        """Record a frame below the receiver sensitivity at some receiver."""
        self.phy_weak_signal += 1
        if self.tap is not None:
            self.tap.packet_dropped("weak_signal")

    def queue_drop(self) -> None:
        """Record a frame dropped because a MAC queue overflowed."""
        self.mac_queue_drops += 1
        if self.tap is not None:
            self.tap.packet_dropped("queue")

    def ttl_drop(self) -> None:
        """Record a packet discarded because its TTL expired."""
        self.ttl_drops += 1
        if self.tap is not None:
            self.tap.packet_dropped("ttl")

    def no_route_drop(self) -> None:
        """Record a data packet dropped for lack of a route / next hop."""
        self.no_route_drops += 1
        if self.tap is not None:
            self.tap.packet_dropped("no_route")

    def buffer_drop(self) -> None:
        """Record a packet evicted from a protocol buffer (store-carry-forward)."""
        self.buffer_drops += 1
        if self.tap is not None:
            self.tap.packet_dropped("buffer")

    def store_carry(self) -> None:
        """Record a packet being buffered for store-carry-forward."""
        self.store_carry_events += 1

    # ---------------------------------------------------------------- routing
    def route_discovery_started(self) -> None:
        """Record the start of a route-discovery cycle."""
        self.route_discoveries_started += 1

    def route_discovery_completed(self, latency: float) -> None:
        """Record a successful route discovery and its latency."""
        self.route_discoveries_completed += 1
        self.route_discovery_latencies.append(latency)

    def link_break(self) -> None:
        """Record a detected link break on an active route."""
        self.link_breaks += 1

    def route_repair(self) -> None:
        """Record a route repair / preemptive rebuild."""
        self.route_repairs += 1

    def route_lifetime(self, lifetime: float) -> None:
        """Record how long an established route lasted before breaking."""
        self.route_lifetimes.append(lifetime)

    # ---------------------------------------------------------------- summary
    @property
    def total_sent(self) -> int:
        """Data packets originated across all flows."""
        return sum(flow.sent for flow in self.flows.values())

    @property
    def total_delivered(self) -> int:
        """Unique data deliveries across all flows (per receiver for broadcast)."""
        return sum(flow.delivered for flow in self.flows.values())

    @property
    def total_offered(self) -> int:
        """Expected deliveries across all flows (equals ``total_sent`` for unicast)."""
        return sum(flow.effective_offered for flow in self.flows.values())

    @property
    def delivery_ratio(self) -> float:
        """Aggregate delivery ratio across all flows.

        The denominator is the offered-delivery count, which for pure
        unicast runs equals the packets sent (the classic PDR) and for
        broadcast flows is the per-receiver reachability denominator.
        """
        offered = self.total_offered
        if offered == 0:
            return 0.0
        return self.total_delivered / offered

    @property
    def mean_delay(self) -> float:
        """Mean end-to-end delay over all delivered packets."""
        delays = [d for flow in self.flows.values() for d in flow.delays]
        if not delays:
            return 0.0
        return sum(delays) / len(delays)

    @property
    def mean_hops(self) -> float:
        """Mean hop count over all delivered packets."""
        hops = [h for flow in self.flows.values() for h in flow.hop_counts]
        if not hops:
            return 0.0
        return sum(hops) / len(hops)

    @property
    def overhead_ratio(self) -> float:
        """Control transmissions per delivered data packet.

        This is the normalised routing overhead commonly reported in the
        VANET literature.  When nothing is delivered the raw control count is
        returned so that a protocol cannot hide overhead by failing.
        """
        delivered = self.total_delivered
        if delivered == 0:
            return float(self.control_transmissions)
        return self.control_transmissions / delivered

    @property
    def transmissions_per_delivery(self) -> float:
        """Total frames (control + data) per delivered data packet."""
        delivered = self.total_delivered
        total = self.control_transmissions + self.data_transmissions
        if delivered == 0:
            return float(total)
        return total / delivered

    @property
    def beacon_transmissions(self) -> int:
        """HELLO-beacon transmissions (the neighbour-awareness overhead)."""
        return self.control_by_type.get("HELLO", 0)

    @property
    def discovery_transmissions(self) -> int:
        """Control transmissions excluding HELLO beacons.

        This isolates the route-discovery / probing cost the probability
        category claims to reduce ("selectively probes, rather than
        brute-force floods") from the baseline beaconing everyone pays.
        """
        return self.control_transmissions - self.beacon_transmissions

    @property
    def mean_route_discovery_latency(self) -> float:
        """Mean route-discovery latency (0 if no discovery completed)."""
        if not self.route_discovery_latencies:
            return 0.0
        return sum(self.route_discovery_latencies) / len(self.route_discovery_latencies)

    @property
    def mean_route_lifetime(self) -> float:
        """Mean lifetime of established routes (0 if none recorded)."""
        if not self.route_lifetimes:
            return 0.0
        return sum(self.route_lifetimes) / len(self.route_lifetimes)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics for reporting."""
        return {
            "data_sent": float(self.total_sent),
            "data_delivered": float(self.total_delivered),
            "delivery_ratio": self.delivery_ratio,
            "mean_delay_s": self.mean_delay,
            "mean_hops": self.mean_hops,
            "control_transmissions": float(self.control_transmissions),
            "control_bytes": float(self.control_bytes),
            "data_bytes": float(self.data_bytes),
            "beacon_transmissions": float(self.beacon_transmissions),
            "discovery_transmissions": float(self.discovery_transmissions),
            "data_transmissions": float(self.data_transmissions),
            "overhead_ratio": self.overhead_ratio,
            "transmissions_per_delivery": self.transmissions_per_delivery,
            "mac_collisions": float(self.mac_collisions),
            "phy_weak_signal": float(self.phy_weak_signal),
            "mac_queue_drops": float(self.mac_queue_drops),
            "ttl_drops": float(self.ttl_drops),
            "no_route_drops": float(self.no_route_drops),
            "buffer_drops": float(self.buffer_drops),
            "route_discoveries_started": float(self.route_discoveries_started),
            "route_discoveries_completed": float(self.route_discoveries_completed),
            "mean_route_discovery_latency_s": self.mean_route_discovery_latency,
            "link_breaks": float(self.link_breaks),
            "route_repairs": float(self.route_repairs),
            "mean_route_lifetime_s": self.mean_route_lifetime,
            "backbone_transmissions": float(self.backbone_transmissions),
            "store_carry_events": float(self.store_carry_events),
        }
