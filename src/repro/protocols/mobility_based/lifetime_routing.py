"""Shared machinery for metric-accumulating on-demand discovery.

PBR, Taleb, Abedi (mobility category) and the Yan ticket-based protocol
(probability category) all follow the same skeleton, described in
Sec. IV.B of the paper for Taleb:

1. The source floods (or selectively forwards) a route request.  Every hop
   appends itself to the accumulated path and updates a path metric computed
   from the kinematics of the link it arrived over (the request carries the
   previous hop's position and velocity, so the receiver can evaluate the
   link without waiting for a beacon).
2. The destination collects the requests that arrive within a short window
   and answers the best one with a source-routed reply.
3. Data packets carry the selected source route.
4. The source re-initiates discovery shortly before the predicted route
   lifetime expires ("a new route discovery is always initiated prior [to
   the] duration of the routing path").

Subclasses customise the metric (hook :meth:`link_metric`), the forwarding
rule (hook :meth:`should_forward_request`) and the ranking at the
destination (hook :meth:`path_score`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geometry import Vec2
from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import DuplicateCache, PendingPacketBuffer
from repro.protocols.neighbors import BeaconService
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import Packet


@dataclass
class PathDiscoveryConfig(ProtocolConfig):
    """Parameters of metric-accumulating discovery.

    Attributes:
        discovery_timeout_s: Time the source waits for a reply before retrying.
        max_discovery_retries: Retries before giving up.
        reply_collection_window_s: How long the destination collects requests
            before answering the best one.
        route_lifetime_cap_s: Upper bound on how long a route is trusted even
            when the predicted lifetime is longer.
        preemptive_rebuild_fraction: Fraction of the predicted route lifetime
            after which the source rebuilds the route (PBR's preemptive
            rediscovery); 0 disables preemptive rebuilds.
        request_size_bytes / reply_size_bytes: Control-packet sizes.
    """

    discovery_timeout_s: float = 1.2
    max_discovery_retries: int = 2
    reply_collection_window_s: float = 0.08
    route_lifetime_cap_s: float = 30.0
    preemptive_rebuild_fraction: float = 0.8
    request_size_bytes: int = 64
    reply_size_bytes: int = 72
    #: Random delay before re-broadcasting a request (flood desynchronisation).
    request_forward_jitter_s: float = 0.02


@dataclass
class DiscoveredRoute:
    """A source route selected by a discovery cycle."""

    path: List[int]
    metric: float
    established_at: float
    expires_at: float


class PathMetricDiscoveryProtocol(RoutingProtocol):
    """Base class: flooded discovery that accumulates a per-path mobility metric."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[PathDiscoveryConfig] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else PathDiscoveryConfig())
        self.routes: Dict[int, DiscoveredRoute] = {}
        self.pending = PendingPacketBuffer()
        self._request_cache = DuplicateCache(lifetime_s=10.0)
        self._request_id = 0
        self._discoveries: Dict[int, Dict[str, float]] = {}
        #: (origin, request_id) -> list of (score, headers) candidates at the destination.
        self._reply_candidates: Dict[Tuple[int, int], List[Tuple[float, dict]]] = {}
        self.beacons = BeaconService(
            self,
            interval_s=self.config.hello_interval_s,
            timeout_s=self.config.neighbor_timeout_s,
        )

    # ------------------------------------------------------------------ hooks
    def initial_metric(self) -> float:
        """Metric value of an empty path (identity of the accumulation)."""
        return math.inf

    def accumulate_metric(self, so_far: float, link_value: float) -> float:
        """Combine the path metric with one more link (default: minimum)."""
        return min(so_far, link_value)

    def link_metric(
        self,
        previous_position: Vec2,
        previous_velocity: Vec2,
        own_position: Vec2,
        own_velocity: Vec2,
        headers: dict,
    ) -> float:
        """Metric of the link the request just crossed (subclass hook)."""
        raise NotImplementedError

    def should_forward_request(self, headers: dict, sender_id: int) -> bool:
        """Whether this node participates in forwarding the request."""
        return True

    def path_score(self, metric: float, path: List[int]) -> float:
        """Score used by the destination to rank candidate paths (higher wins)."""
        return metric

    # ------------------------------------------------------------------ setup
    def start(self) -> None:
        """Start neighbour beaconing."""
        super().start()
        self.beacons.start()

    def stop(self) -> None:
        """Stop beaconing."""
        super().stop()
        self.beacons.stop()

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Send on the discovered source route, or discover one first."""
        destination = packet.destination
        if destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        route = self.routes.get(destination)
        if route is not None and route.expires_at > self.now:
            packet.headers["src_route"] = list(route.path)
            packet.headers["route_index"] = 0
            self._forward_on_route(packet)
            return
        if route is not None:
            self.stats.route_lifetime(self.now - route.established_at)
            del self.routes[destination]
        if not self.pending.add(packet, self.now):
            self.stats.buffer_drop()
        self._ensure_discovery(destination)

    # -------------------------------------------------------------- reception
    def handle_packet(self, packet: Packet, sender_id: int) -> None:
        """Dispatch on packet type."""
        ptype = packet.ptype
        if ptype == "HELLO":
            self.beacons.handle_beacon(packet, sender_id)
            return
        if ptype == "MREQ":
            self._handle_request(packet, sender_id)
        elif ptype == "MREP":
            self._handle_reply(packet, sender_id)
        elif packet.is_data:
            self._handle_data(packet, sender_id)

    # -------------------------------------------------------------- discovery
    def _ensure_discovery(self, destination: int) -> None:
        if destination in self._discoveries:
            return
        self._start_discovery(destination, retries=0)

    def _start_discovery(self, destination: int, retries: int) -> None:
        self._request_id += 1
        self._discoveries[destination] = {"started": self.now, "retries": retries}
        self.stats.route_discovery_started()
        request = self.make_control(
            "MREQ",
            size_bytes=self.config.request_size_bytes,
            request_id=self._request_id,
            origin=self.node.node_id,
            target=destination,
            path=[self.node.node_id],
            metric=self.initial_metric(),
            prev_x=self.node.position.x,
            prev_y=self.node.position.y,
            prev_vx=self.node.velocity.x,
            prev_vy=self.node.velocity.y,
            origin_group=self._own_group_tag(),
        )
        self._request_cache.seen((self.node.node_id, self._request_id), self.now)
        self.broadcast(request)
        self.sim.schedule(self.config.discovery_timeout_s, self._discovery_timeout, destination)

    def _own_group_tag(self) -> str:
        """Tag describing this node's mobility group (used by Taleb)."""
        return ""

    def _discovery_timeout(self, destination: int) -> None:
        state = self._discoveries.get(destination)
        if state is None:
            return
        route = self.routes.get(destination)
        if route is not None and route.expires_at > self.now:
            self._discoveries.pop(destination, None)
            return
        retries = int(state["retries"])
        if retries < self.config.max_discovery_retries:
            self._start_discovery(destination, retries=retries + 1)
        else:
            self._discoveries.pop(destination, None)
            dropped = self.pending.drop_all(destination)
            for _ in range(dropped):
                self.stats.no_route_drop()

    def _handle_request(self, packet: Packet, sender_id: int) -> None:
        headers = packet.headers
        origin = headers["origin"]
        if origin == self.node.node_id:
            return
        path: List[int] = list(headers["path"])
        if self.node.node_id in path:
            return
        previous_position = Vec2(headers["prev_x"], headers["prev_y"])
        previous_velocity = Vec2(headers["prev_vx"], headers["prev_vy"])
        link_value = self.link_metric(
            previous_position,
            previous_velocity,
            self.node.position,
            self.node.velocity,
            headers,
        )
        metric = self.accumulate_metric(headers["metric"], link_value)
        path.append(self.node.node_id)
        target = headers["target"]
        if target == self.node.node_id:
            self._collect_reply_candidate(origin, headers["request_id"], path, metric)
            return
        if self._request_cache.seen((origin, headers["request_id"]), self.now):
            return
        if not self.should_forward_request(headers, sender_id):
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        forwarded = packet.forwarded()
        forwarded.headers.update(
            path=path,
            metric=metric,
            prev_x=self.node.position.x,
            prev_y=self.node.position.y,
            prev_vx=self.node.velocity.x,
            prev_vy=self.node.velocity.y,
        )
        jitter = self.rng.uniform(0.0, self.config.request_forward_jitter_s)
        self.sim.schedule(jitter, self.broadcast, forwarded)

    def _collect_reply_candidate(
        self, origin: int, request_id: int, path: List[int], metric: float
    ) -> None:
        key = (origin, request_id)
        score = self.path_score(metric, path)
        candidates = self._reply_candidates.get(key)
        if candidates is None:
            self._reply_candidates[key] = [(score, {"path": path, "metric": metric})]
            self.sim.schedule(
                self.config.reply_collection_window_s, self._send_best_reply, key
            )
        else:
            candidates.append((score, {"path": path, "metric": metric}))

    def _send_best_reply(self, key: Tuple[int, int]) -> None:
        candidates = self._reply_candidates.pop(key, [])
        if not candidates:
            return
        candidates.sort(key=lambda item: item[0], reverse=True)
        best = candidates[0][1]
        path: List[int] = best["path"]
        origin = key[0]
        reply = self.make_control(
            "MREP",
            destination=origin,
            size_bytes=self.config.reply_size_bytes + 4 * len(path),
            origin=origin,
            target=self.node.node_id,
            path=path,
            metric=best["metric"],
            route_index=len(path) - 2,
        )
        if len(path) >= 2:
            self.unicast(reply, path[-2])
        elif path and path[0] == origin:
            # Single-hop path: origin is our direct neighbour.
            self.unicast(reply, origin)

    def _handle_reply(self, packet: Packet, sender_id: int) -> None:
        headers = packet.headers
        origin = headers["origin"]
        path: List[int] = list(headers["path"])
        if origin == self.node.node_id:
            self._install_route(headers["target"], path, headers["metric"])
            return
        index = headers["route_index"]
        if index <= 0 or index >= len(path) or path[index] != self.node.node_id:
            return
        forwarded = packet.forwarded()
        forwarded.headers["route_index"] = index - 1
        self.unicast(forwarded, path[index - 1])

    def _install_route(self, destination: int, path: List[int], metric: float) -> None:
        lifetime = self._route_lifetime_from_metric(metric)
        route = DiscoveredRoute(
            path=path,
            metric=metric,
            established_at=self.now,
            expires_at=self.now + lifetime,
        )
        self.routes[destination] = route
        state = self._discoveries.pop(destination, None)
        if state is not None:
            self.stats.route_discovery_completed(self.now - state["started"])
        for data_packet in self.pending.pop_all(destination, self.now):
            self.route_data(data_packet)
        if self.config.preemptive_rebuild_fraction > 0 and math.isfinite(lifetime):
            self.sim.schedule(
                lifetime * self.config.preemptive_rebuild_fraction,
                self._preemptive_rebuild,
                destination,
                route.established_at,
            )

    def _route_lifetime_from_metric(self, metric: float) -> float:
        """Translate the path metric into a trusted route lifetime (seconds)."""
        if not math.isfinite(metric):
            return self.config.route_lifetime_cap_s
        return max(0.5, min(self.config.route_lifetime_cap_s, metric))

    def _preemptive_rebuild(self, destination: int, established_at: float) -> None:
        route = self.routes.get(destination)
        if route is None or route.established_at != established_at:
            return
        self.stats.route_repair()
        self._ensure_discovery(destination)

    # ------------------------------------------------------------- forwarding
    def _handle_data(self, packet: Packet, sender_id: int) -> None:
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        route: List[int] = packet.headers.get("src_route", [])
        try:
            index = route.index(self.node.node_id)
        except ValueError:
            return
        forwarded = packet.forwarded()
        forwarded.headers["route_index"] = index
        self._forward_on_route(forwarded)

    def _forward_on_route(self, packet: Packet) -> None:
        route: List[int] = packet.headers["src_route"]
        index = packet.headers.get("route_index", 0)
        if index >= len(route) - 1:
            return
        next_hop = route[index + 1]
        if not self.beacons.table.contains(next_hop, self.now):
            self.stats.link_break()
            self.stats.no_route_drop()
            destination = packet.destination
            stale = self.routes.get(destination)
            if stale is not None:
                self.stats.route_lifetime(self.now - stale.established_at)
                del self.routes[destination]
            return
        packet.headers["route_index"] = index + 1
        self.unicast(packet, next_hop)
