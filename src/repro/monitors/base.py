"""Monitor ABC: passive probes fed by the sim core's event tap.

A monitor is constructed by name through the registry (all constructor
parameters must be keyword-overridable with defaults -- the ``REG-001``
builder contract), bound to one run by the harness, fed ``on_*`` events
by the :class:`~repro.sim.tap.EventTap`, and finalized after the run to
contribute summary metrics to ``RunResult.extra``.

Monitors are **passive observers**: they must never schedule simulator
events, draw from the RNG, or mutate packets/nodes/stats.  Anything
periodic (time buckets, invariant checkpoints) is driven *lazily* off
the timestamps of observed events -- so a monitored run's traces and
metrics stay byte-identical to an unmonitored run's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.monitors.telemetry import TelemetrySink, telemetry_line

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry import Vec2
    from repro.sim.packet import Packet
    from repro.sim.statistics import FlowStats, StatsCollector


class Monitor:
    """Base class of all probes.  Subclasses override the ``on_*`` hooks.

    Every hook has a no-op default, so a probe implements only the events
    it cares about; unimplemented events cost one no-op call while that
    probe is registered (and nothing at all when no monitor is).
    """

    #: Registry key; set by the ``@register_monitor`` decorator.
    monitor_name: str = "base"

    def __init__(self) -> None:
        self.stats: Optional["StatsCollector"] = None
        self._sink: Optional[TelemetrySink] = None

    # ------------------------------------------------------------ harness API
    def bind(self, stats: "StatsCollector", sink: Optional[TelemetrySink]) -> None:
        """Attach the probe to one run (called by the harness at build time)."""
        self.stats = stats
        self._sink = sink

    def emit(self, event: str, t: float, **fields: object) -> None:
        """Write one telemetry event to the run's sink (no-op without one)."""
        if self._sink is not None:
            self._sink.write(telemetry_line(event, t, self.monitor_name, **fields))

    def finalize(self, now: float) -> Dict[str, float]:
        """Flush pending state after ``sim.run`` and return summary metrics.

        The returned mapping is merged into ``RunResult.extra`` (keys
        should be namespaced by probe, e.g. ``latency_p95_s``) and flows
        from there into records, sweep aggregation and artifacts.
        """
        return {}

    # ------------------------------------------------------------- tap hooks
    def on_packet_originated(
        self, now: float, packet: "Packet", flow: "FlowStats", expected_receivers: int
    ) -> None:
        """An application originated a data packet."""

    def on_packet_delivered(
        self,
        now: float,
        packet: "Packet",
        flow: "FlowStats",
        receiver: Optional[int],
        new: bool,
        delay: float,
    ) -> None:
        """A data packet reached a destination (``new=False`` for dups)."""

    def on_packet_dropped(self, now: float, reason: str, count: int) -> None:
        """``count`` packets/frames dropped for ``reason`` (count-only)."""

    def on_packet_retired(self, now: float, flow_id: int, key: Tuple, known: bool) -> None:
        """A broadcast packet identity left flight (dedup released)."""

    def on_transmission(
        self, now: float, packet: "Packet", sender_id: int, position: "Vec2"
    ) -> None:
        """A frame was handed to the wireless channel at ``position``."""

    def on_collision(self, now: float, count: int) -> None:
        """``count`` frames lost to interference."""

    def on_node_join(self, now: float, node_id: int, kind: str) -> None:
        """A node registered with the network."""

    def on_node_leave(self, now: float, node_id: int) -> None:
        """A node was removed from the network."""
