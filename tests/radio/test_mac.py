"""Tests for the CSMA/CA MAC layer."""

import pytest

from repro.radio.mac import MacConfig
from repro.sim.packet import BROADCAST, make_data_packet
from tests.helpers import build_static_network


class NullProtocol:
    def start(self):  # pragma: no cover - unused
        pass

    def handle_packet(self, packet, sender_id):
        pass


class TestMacConfig:
    def test_frame_airtime_scales_with_size(self):
        config = MacConfig()
        small = config.frame_airtime(100)
        large = config.frame_airtime(1000)
        assert large > small
        assert small > config.phy_overhead_s

    def test_airtime_formula(self):
        config = MacConfig(bitrate_bps=1_000_000, phy_overhead_s=0.0)
        assert config.frame_airtime(125) == pytest.approx(0.001)


class TestMacQueueing:
    def _one_node(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (100, 0)])
        for node in nodes:
            node.attach_protocol(NullProtocol())
        return sim, stats, nodes

    def test_frames_sent_counter(self):
        sim, stats, nodes = self._one_node()
        for _ in range(3):
            nodes[0].send(make_data_packet("p", 0, BROADCAST), BROADCAST)
        sim.run(until=1.0)
        assert nodes[0].mac.frames_sent == 3
        assert stats.data_transmissions == 3

    def test_queue_overflow_drops_and_counts(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (100, 0)])
        for node in nodes:
            node.attach_protocol(NullProtocol())
        nodes[0].mac.config = MacConfig(max_queue=2)
        accepted = []
        for _ in range(5):
            accepted.append(
                nodes[0].mac.enqueue(make_data_packet("p", 0, BROADCAST), BROADCAST)
            )
        assert accepted.count(False) == 3
        assert stats.mac_queue_drops == 3

    def test_transmissions_are_serialised_not_overlapping(self):
        sim, stats, nodes = self._one_node()
        for _ in range(5):
            nodes[0].send(make_data_packet("p", 0, BROADCAST, size_bytes=1000), BROADCAST)
        sim.run(until=1.0)
        # All five frames went out and none collided with each other at the
        # receiver (a node never overlaps its own transmissions).
        assert nodes[0].mac.frames_sent == 5
        assert stats.mac_collisions == 0

    def test_carrier_sense_defers_to_ongoing_transmission(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (100, 0), (200, 0)])
        for node in nodes:
            node.attach_protocol(NullProtocol())
        # Node 0 starts a long frame; node 1 (in carrier-sense range) wants to
        # send shortly after and must defer at least once.
        nodes[0].send(make_data_packet("p", 0, BROADCAST, size_bytes=2000), BROADCAST)
        sim.schedule(0.0005, nodes[1].send, make_data_packet("p", 1, BROADCAST), BROADCAST)
        sim.run(until=1.0)
        assert nodes[1].mac.busy_deferrals >= 1
        assert stats.mac_collisions == 0

    def test_unicast_retry_counters(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (2000, 0)], comm_range=250.0)
        for node in nodes:
            node.attach_protocol(NullProtocol())
        nodes[0].send(make_data_packet("p", 0, nodes[1].node_id), nodes[1].node_id)
        sim.run(until=1.0)
        mac = nodes[0].mac
        assert mac.unicast_retries == mac.config.max_unicast_retries
        assert mac.unicast_failures == 1

    def test_successful_unicast_not_retried(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (100, 0)])
        for node in nodes:
            node.attach_protocol(NullProtocol())
        nodes[0].send(make_data_packet("p", 0, nodes[1].node_id), nodes[1].node_id)
        sim.run(until=1.0)
        assert nodes[0].mac.unicast_retries == 0
        assert stats.data_transmissions == 1
