"""Unit tests for the spatial index backends."""

import random

import pytest

from repro.geometry import Vec2
from repro.sim.spatial import (
    LinearScanIndex,
    UniformGridIndex,
    make_spatial_index,
)


def brute_force(points, position, radius):
    """Ids whose exact position is within ``radius`` of ``position``."""
    return {
        item_id
        for item_id, point in points.items()
        if position.distance_to(point) <= radius
    }


class TestUniformGridIndex:
    def test_query_is_superset_of_exact_matches(self):
        rng = random.Random(7)
        index = UniformGridIndex(cell_size_m=100.0)
        points = {}
        for item_id in range(200):
            point = Vec2(rng.uniform(-1500, 1500), rng.uniform(-1500, 1500))
            points[item_id] = point
            index.insert(item_id, point)
        for _ in range(50):
            centre = Vec2(rng.uniform(-1500, 1500), rng.uniform(-1500, 1500))
            radius = rng.uniform(10, 400)
            candidates = set(index.query_ids(centre, radius))
            assert brute_force(points, centre, radius) <= candidates

    def test_query_returns_no_duplicates(self):
        index = UniformGridIndex(cell_size_m=50.0)
        for item_id in range(30):
            index.insert(item_id, Vec2(item_id * 10.0, 0.0))
        ids = index.query_ids(Vec2(100.0, 0.0), 500.0)
        assert len(ids) == len(set(ids))

    def test_update_moves_item_between_cells(self):
        index = UniformGridIndex(cell_size_m=10.0)
        index.insert(1, Vec2(0.0, 0.0))
        index.update(1, Vec2(1000.0, 1000.0))
        assert 1 not in index.query_ids(Vec2(0.0, 0.0), 5.0)
        assert 1 in index.query_ids(Vec2(1000.0, 1000.0), 5.0)

    def test_update_within_cell_is_a_no_op_move(self):
        index = UniformGridIndex(cell_size_m=100.0)
        index.insert(1, Vec2(10.0, 10.0))
        index.update(1, Vec2(20.0, 20.0))
        assert 1 in index.query_ids(Vec2(15.0, 15.0), 50.0)
        assert len(index) == 1

    def test_slack_widens_queries_to_cover_drift(self):
        # An item indexed at x=0 but queried after drifting 80 m must still
        # be found when the slack covers the drift.
        index = UniformGridIndex(cell_size_m=50.0, slack_m=100.0)
        index.insert(1, Vec2(0.0, 0.0))
        assert 1 in index.query_ids(Vec2(80.0, 0.0), 10.0)

    def test_remove_and_clear(self):
        index = UniformGridIndex(cell_size_m=50.0)
        index.insert(1, Vec2(0.0, 0.0))
        index.insert(2, Vec2(10.0, 0.0))
        index.remove(1)
        index.remove(99)  # unknown ids are ignored
        assert set(index.query_ids(Vec2(0.0, 0.0), 100.0)) == {2}
        index.clear()
        assert len(index) == 0
        assert index.query_ids(Vec2(0.0, 0.0), 100.0) == []

    def test_duplicate_insert_rejected(self):
        index = UniformGridIndex(cell_size_m=50.0)
        index.insert(1, Vec2(0.0, 0.0))
        with pytest.raises(ValueError):
            index.insert(1, Vec2(5.0, 5.0))

    def test_negative_coordinates(self):
        index = UniformGridIndex(cell_size_m=25.0)
        index.insert(1, Vec2(-310.0, -470.0))
        assert 1 in index.query_ids(Vec2(-300.0, -460.0), 20.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            UniformGridIndex(cell_size_m=0.0)
        with pytest.raises(ValueError):
            UniformGridIndex(cell_size_m=10.0, slack_m=-1.0)


class TestLinearScanIndex:
    def test_query_returns_everything(self):
        index = LinearScanIndex()
        for item_id in range(5):
            index.insert(item_id, Vec2(item_id * 1000.0, 0.0))
        assert index.query_ids(Vec2(0.0, 0.0), 1.0) == list(range(5))

    def test_duplicate_insert_rejected(self):
        index = LinearScanIndex()
        index.insert(1, Vec2(0.0, 0.0))
        with pytest.raises(ValueError):
            index.insert(1, Vec2(0.0, 0.0))

    def test_remove(self):
        index = LinearScanIndex()
        index.insert(1, Vec2(0.0, 0.0))
        index.remove(1)
        assert len(index) == 0


class TestFactory:
    def test_known_backends(self):
        assert isinstance(make_spatial_index("grid", 100.0), UniformGridIndex)
        assert isinstance(make_spatial_index("linear", 100.0), LinearScanIndex)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_spatial_index("octree", 100.0)
