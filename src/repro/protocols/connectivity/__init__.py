"""Connectivity-based routing protocols (paper Sec. III).

These protocols use only the connectivity graph: route requests are flooded
(or data itself is flooded) and paths are whatever the flood discovers.
They are simple and highly available but pay for it in control overhead and,
at high density, in the broadcast-storm problem.
"""

from repro.protocols.connectivity.aodv import AodvConfig, AodvProtocol
from repro.protocols.connectivity.biswas import BiswasConfig, BiswasProtocol
from repro.protocols.connectivity.disjli import DisjLiConfig, DisjLiProtocol
from repro.protocols.connectivity.dsdv import DsdvConfig, DsdvProtocol
from repro.protocols.connectivity.dsr import DsrConfig, DsrProtocol
from repro.protocols.connectivity.flooding import FloodingConfig, FloodingProtocol

__all__ = [
    "AodvConfig",
    "AodvProtocol",
    "BiswasConfig",
    "BiswasProtocol",
    "DisjLiConfig",
    "DisjLiProtocol",
    "DsdvConfig",
    "DsdvProtocol",
    "DsrConfig",
    "DsrProtocol",
    "FloodingConfig",
    "FloodingProtocol",
]
