"""Power-unit helpers and interference combination.

Received powers are expressed in dBm throughout the radio package; summing
interference contributions requires a round trip through milliwatts.

How concurrent transmissions combine at a receiver is itself a pluggable
model (:class:`InterferenceModel`): the physical default is additive power
(:class:`AdditiveInterference`), while :class:`NoInterference` gives an
idealised collision-free channel for protocol-logic experiments.  The model
is one of the four components a :class:`~repro.radio.stack.RadioStack`
bundles.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

#: Received power used to represent "no signal at all" (effectively -inf dBm).
NO_SIGNAL_DBM = -1000.0


def dbm_to_mw(power_dbm: float) -> float:
    """Convert a power from dBm to milliwatts."""
    if power_dbm <= NO_SIGNAL_DBM:
        return 0.0
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert a power from milliwatts to dBm (zero maps to ``NO_SIGNAL_DBM``)."""
    if power_mw <= 0.0:
        return NO_SIGNAL_DBM
    return 10.0 * math.log10(power_mw)


def combine_dbm(powers_dbm: Iterable[float]) -> float:
    """Sum several received powers expressed in dBm.

    Interference from concurrent transmissions is additive in linear units,
    so the values are converted to mW, summed, and converted back.
    """
    total_mw = sum(dbm_to_mw(p) for p in powers_dbm)
    return mw_to_dbm(total_mw)


#: Unique-value compression pays only past this length; below it the sort
#: and scatter cost more than the saved per-element conversions.
_UNIQUE_COMPRESS_MIN = 32

#: Above this length ``np.unique``'s inverse-index machinery beats the
#: sort + ``searchsorted`` route (binary search is O(n log k) per call).
_UNIQUE_SEARCHSORTED_MAX = 1500


def dbm_to_mw_batch(powers_dbm):
    """Elementwise :func:`dbm_to_mw` over a numpy array.

    The vectorized medium backend needs its interference sums bit-identical
    to the scalar backends', which rules out ``np.power``: its SIMD path
    differs from libm ``pow`` (what ``10.0 ** x`` calls) in the last ulp on
    this class of input.  ``np.float_power`` evaluates libm ``pow`` per
    element, so it reproduces the scalar conversion bit for bit at array
    speed (guarded by the batch-equality property suite).  Inputs repeat
    heavily on the hot path (the reception decision re-converts interference
    sums that collapse to a handful of distinct levels), so the same
    unique-value compression as :func:`mw_to_dbm_batch` applies: distinct
    values are converted once each with the scalar formula and scattered
    back -- bit-identical by construction, falling through to the plain
    ufunc when the input turns out mostly distinct.
    """
    from repro.sim.position_store import require_numpy

    np = require_numpy("dbm_to_mw_batch")
    arr = np.asarray(powers_dbm, dtype=np.float64)
    size = arr.size
    if size >= _UNIQUE_COMPRESS_MIN:
        if size <= _UNIQUE_SEARCHSORTED_MAX:
            ordered = np.sort(arr)
            distinct = np.empty(size, dtype=bool)
            distinct[0] = True
            np.not_equal(ordered[1:], ordered[:-1], out=distinct[1:])
            unique = ordered[distinct]
            inverse = None
        else:
            unique, inverse = np.unique(arr, return_inverse=True)
        if unique.size * 2 <= size:
            converted = np.array(
                [
                    0.0 if p <= NO_SIGNAL_DBM else 10.0 ** (p / 10.0)
                    for p in unique.tolist()
                ],
                dtype=np.float64,
            )
            if inverse is None:
                return converted[np.searchsorted(unique, arr)]
            return converted[inverse].reshape(arr.shape)
    return np.where(
        arr <= NO_SIGNAL_DBM, 0.0, np.float_power(10.0, arr / 10.0)
    )


def mw_to_dbm_batch(powers_mw):
    """Elementwise :func:`mw_to_dbm` over a numpy array.

    ``np.log10`` takes a SIMD path whose last ulp differs from libm
    ``math.log10``, so the conversion itself stays a per-element Python
    loop for bit-identity with the scalar helper.  That loop dominated the
    beacon-storm profile, and its inputs repeat heavily (a unit-disk
    channel produces one rx power per transmit power, and interference
    sums over k equal contributions collapse to a handful of values) -- so
    distinct values are found first and converted once each, then
    scattered back.  Applying the *same* scalar function to the same value
    is bit-identical by construction, whatever the duplication pattern;
    when the input turns out mostly distinct, the plain loop runs instead
    and only the cheap C sort was wasted.
    """
    from repro.sim.position_store import require_numpy

    np = require_numpy("mw_to_dbm_batch")
    arr = np.asarray(powers_mw, dtype=np.float64)
    log10 = math.log10
    size = arr.size
    if size >= _UNIQUE_COMPRESS_MIN:
        if size <= _UNIQUE_SEARCHSORTED_MAX:
            ordered = np.sort(arr)
            distinct = np.empty(size, dtype=bool)
            distinct[0] = True
            np.not_equal(ordered[1:], ordered[:-1], out=distinct[1:])
            unique = ordered[distinct]
            inverse = None
        else:
            unique, inverse = np.unique(arr, return_inverse=True)
        if unique.size * 2 <= size:
            converted = np.array(
                [
                    NO_SIGNAL_DBM if m <= 0.0 else 10.0 * log10(m)
                    for m in unique.tolist()
                ],
                dtype=np.float64,
            )
            if inverse is None:
                return converted[np.searchsorted(unique, arr)]
            return converted[inverse].reshape(arr.shape)
    return np.array(
        [NO_SIGNAL_DBM if m <= 0.0 else 10.0 * log10(m) for m in arr.tolist()],
        dtype=np.float64,
    )


class InterferenceModel(ABC):
    """How the powers of concurrent transmissions combine at a receiver.

    The wireless medium hands :meth:`combine` the received power (dBm) of
    every overlapping foreign transmission at a receiver and uses the result
    as the interference term of the reception decision's SINR.
    """

    #: Whether :meth:`combine` actually consumes its contributions.  Models
    #: that ignore them (:class:`NoInterference`) set this False so the
    #: medium can skip computing per-interferer received powers entirely --
    #: that loop is one of the per-frame hot paths.
    uses_contributions: bool = True

    #: Whether :meth:`combine` is exactly "sum the contributions in mW".
    #: The vectorized medium backend relies on this to accumulate
    #: per-interferer power arrays instead of per-receiver lists; models with
    #: any other combination rule leave it False and fall back to the scalar
    #: delivery path.
    additive_mw: bool = False

    @abstractmethod
    def combine(self, powers_dbm: Sequence[float]) -> float:
        """Aggregate interference power in dBm (``NO_SIGNAL_DBM`` for none)."""


class AdditiveInterference(InterferenceModel):
    """Physically additive co-channel interference (the default)."""

    additive_mw = True

    def combine(self, powers_dbm: Sequence[float]) -> float:
        """Linear-domain power sum (see :func:`combine_dbm`)."""
        if not powers_dbm:
            return NO_SIGNAL_DBM
        return combine_dbm(powers_dbm)


class NoInterference(InterferenceModel):
    """Idealised interference-free channel.

    Concurrent transmissions never collide at the PHY; only carrier sensing
    and the sensitivity threshold limit reception.  Useful for isolating
    routing-logic effects from MAC-contention effects.
    """

    uses_contributions = False

    def combine(self, powers_dbm: Sequence[float]) -> float:
        """Always reports a silent channel."""
        return NO_SIGNAL_DBM
