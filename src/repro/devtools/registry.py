"""String-keyed registry of lint rules.

The fifth registry of the codebase, mirroring
:mod:`repro.protocols.registry`, :mod:`repro.harness.scenarios`,
:mod:`repro.workloads.registry` and :mod:`repro.radio.registry`: adding a
lint rule is a registry entry (a :class:`~repro.devtools.base.LintRule`
subclass plus a ``@register_lint_rule("<ID>")`` decoration), not a change
to the engine.  ``repro-vanet list-lint-rules`` renders :func:`rule_rows`
the same way ``list-scenarios`` / ``list-radios`` render theirs.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Type

from repro.devtools.base import LintRule
from repro.devtools.findings import SEVERITIES

#: rule id -> rule class, for every registered rule.
LINT_RULES: Dict[str, Type[LintRule]] = {}

_RULE_ID_RE = re.compile(r"^[A-Z]{2,8}-\d{3}$")


def register_lint_rule(rule_id: str) -> Callable[[Type[LintRule]], Type[LintRule]]:
    """Class decorator registering a :class:`LintRule` subclass under ``rule_id``."""
    if _RULE_ID_RE.match(rule_id) is None:
        raise ValueError(
            f"lint rule id {rule_id!r} must match <LETTERS>-<3 digits>, e.g. RNG-001"
        )

    def decorator(cls: Type[LintRule]) -> Type[LintRule]:
        if rule_id in LINT_RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        if cls.severity not in SEVERITIES:
            raise ValueError(
                f"lint rule {rule_id!r} has unknown severity {cls.severity!r}"
            )
        cls.rule_id = rule_id
        LINT_RULES[rule_id] = cls
        return cls

    return decorator


def unregister_lint_rule(rule_id: str) -> None:
    """Remove a registered rule (plug-in teardown / tests)."""
    LINT_RULES.pop(rule_id, None)


def available_lint_rules() -> List[str]:
    """Ids of all registered rules, sorted."""
    return sorted(LINT_RULES)


def rule_rows() -> List[Dict[str, str]]:
    """One report row per registered rule (for ``list-lint-rules``)."""
    rows: List[Dict[str, str]] = []
    for rule_id in available_lint_rules():
        cls = LINT_RULES[rule_id]
        rows.append(
            {
                "rule": rule_id,
                "severity": cls.severity,
                "rationale": cls.rationale,
            }
        )
    return rows
