"""Registry of radio kinds and named radio-stack presets.

This module does for the physical channel what
:mod:`repro.protocols.registry` does for routing protocols,
:mod:`repro.harness.scenarios` does for mobility substrates and
:mod:`repro.workloads.registry` does for application traffic: the harness
refers to radio stacks by name and resolves them here, so adding a channel
model is a registry entry rather than a change to the runner.  The radio is
the fourth sweep axis (scenario x protocol x workload x **radio** x seed).

Two registries live here:

* **Kinds** (:data:`RADIO_TYPES`) map a kind string (``"unit_disk"``,
  ``"shadowing"``, ``"nakagami"``, ...) to a builder producing a
  :class:`~repro.radio.stack.RadioStack` from the simulator's seeded
  ``"radio"`` stream plus scalar parameters.
* **Presets** (:data:`RADIO_PRESETS`) map a human-friendly name such as
  ``dsrc-urban-nlos`` to a ready-made parameterisation (propagation +
  reception + interference + MAC together).

Stacks are *built per run*: random channel models (shadowing, Nakagami
fading, probabilistic reception) hold the run's random stream, so a shared
instance would leak draws between runs.  ``radio_from_name(spec, rng=...)``
therefore returns a fresh stack each call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.radio.interference import (
    AdditiveInterference,
    InterferenceModel,
    NoInterference,
)
from repro.radio.mac import MacConfig
from repro.radio.propagation import (
    FreeSpacePropagation,
    LogNormalShadowing,
    NakagamiFading,
    TwoRayGroundPropagation,
    UnitDiskPropagation,
)
from repro.radio.reception import (
    ProbabilisticReception,
    ReceptionModel,
    SnrThresholdReception,
)
from repro.radio.stack import RadioStack

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a harness cycle)
    from repro.harness.scenario import Scenario

#: The registry name of the stack every scenario uses unless it asks for
#: another: the idealised 250 m unit disk behind the paper's Eqn. 4,
#: trace-equivalent to the pre-registry hardwired radio.
DEFAULT_RADIO = "ideal-disk-250m"

#: A builder takes the simulator's seeded ``"radio"`` stream plus scalar
#: parameters and returns a fresh :class:`RadioStack`.
RadioBuilder = Callable[..., RadioStack]

#: kind name -> builder, for every registered radio kind.
RADIO_TYPES: Dict[str, RadioBuilder] = {}


def register_radio(name: str) -> Callable[[RadioBuilder], RadioBuilder]:
    """Function decorator registering a radio-stack builder under ``name``."""

    def decorator(builder: RadioBuilder) -> RadioBuilder:
        if name in RADIO_TYPES:
            raise ValueError(f"radio kind {name!r} is already registered")
        RADIO_TYPES[name] = builder
        return builder

    return decorator


def unregister_radio(name: str) -> None:
    """Remove a registered radio kind (plug-in teardown / tests)."""
    RADIO_TYPES.pop(name, None)


def available_radios() -> List[str]:
    """Names of all registered radio kinds, sorted."""
    return sorted(RADIO_TYPES)


# ------------------------------------------------------------------ presets
@dataclass(frozen=True)
class RadioPreset:
    """A named ready-made radio-stack parameterisation.

    ``kind`` is the underlying radio kind, recorded at registration so
    catalogue listings never need to instantiate the preset.
    """

    name: str
    factory: Callable[..., RadioStack]
    description: str
    kind: str = ""

    def build(self, rng: random.Random, **overrides) -> RadioStack:
        """Instantiate the preset (a fresh RadioStack each call)."""
        return self.factory(rng, **overrides)


#: preset name -> preset, for every registered preset.
RADIO_PRESETS: Dict[str, RadioPreset] = {}


def register_radio_preset(
    name: str, factory: Callable[..., RadioStack], description: str, kind: str = ""
) -> None:
    """Register a named preset built by ``factory(rng, **overrides)``."""
    if name in RADIO_PRESETS:
        raise ValueError(f"radio preset {name!r} is already registered")
    RADIO_PRESETS[name] = RadioPreset(name, factory, description, kind)


def unregister_radio_preset(name: str) -> None:
    """Remove a registered radio preset (plug-in teardown / tests)."""
    RADIO_PRESETS.pop(name, None)


def available_radio_presets() -> List[str]:
    """Names of all registered radio presets, sorted."""
    return sorted(RADIO_PRESETS)


def radio_from_name(
    spec: str, rng: Optional[random.Random] = None, **params
) -> RadioStack:
    """Resolve a radio stack by string, the way the CLI's ``--radio`` does.

    Resolution order for ``spec``:

    1. A registered preset name (see :func:`available_radio_presets`);
       ``params`` override the preset's own parameters.
    2. A registered kind (``"unit_disk"``, ``"nakagami"``, ...), built with
       ``params`` as builder keywords.

    ``rng`` must be the simulator's ``"radio"`` stream for reproducible
    runs; a fixed ``Random(0)`` is substituted for catalogue listings and
    ad-hoc inspection.
    """
    if rng is None:
        rng = random.Random(0)  # repro-lint: ok RNG-001 -- catalogue/ad-hoc inspection only; runs pass the sim's 'radio' stream
    if spec in RADIO_PRESETS:
        stack = RADIO_PRESETS[spec].build(rng, **params)
    elif spec in RADIO_TYPES:
        stack = RADIO_TYPES[spec](rng, **params)
    else:
        raise KeyError(
            f"unknown radio {spec!r}; registered kinds: "
            f"{', '.join(available_radios())}; presets: "
            f"{', '.join(available_radio_presets())}"
        )
    stack.name = spec
    return stack


def stack_for_scenario(scenario: "Scenario", rng: random.Random) -> RadioStack:
    """Build the radio stack a scenario asks for.

    Resolution order:

    1. ``scenario.radio_stack`` (a kind or preset name) with
       ``scenario.radio_params`` as overrides.
    2. The legacy :class:`~repro.harness.scenario.RadioConfig` shim: an
       untouched default config resolves to :data:`DEFAULT_RADIO`; a
       customised one maps its fields onto the matching kind builder, so
       pre-registry scenarios keep working unchanged.
    """
    if scenario.radio_stack:
        return radio_from_name(scenario.radio_stack, rng=rng, **dict(scenario.radio_params))
    # Imported lazily: the harness imports this module at class-definition
    # time, so a module-level import back into the harness would cycle.
    from repro.harness.scenario import RadioConfig

    radio = scenario.radio
    if radio == RadioConfig():
        return radio_from_name(DEFAULT_RADIO, rng=rng)
    if radio.propagation == "unit_disk":
        params = {
            "communication_range_m": radio.communication_range_m,
            "tx_power_dbm": radio.tx_power_dbm,
        }
    elif radio.propagation == "two_ray":
        params = {"tx_power_dbm": radio.tx_power_dbm}
    elif radio.propagation == "shadowing":
        params = {
            "path_loss_exponent": radio.path_loss_exponent,
            "sigma_db": radio.shadowing_sigma_db,
            "tx_power_dbm": radio.tx_power_dbm,
        }
    else:
        raise ValueError(f"unknown propagation model {radio.propagation!r}")
    return radio_from_name(radio.propagation, rng=rng, **params)


# ----------------------------------------------------------------- listings
def radio_rows() -> List[Dict[str, str]]:
    """One report row per registered radio kind (for ``list-radios``)."""
    rows: List[Dict[str, str]] = []
    for name in available_radios():
        doc = (RADIO_TYPES[name].__doc__ or "").strip().splitlines()
        rows.append({"radio": name, "description": doc[0] if doc else ""})
    return rows


def radio_preset_rows() -> List[Dict[str, str]]:
    """One report row per radio preset (for ``list-radios`` / README)."""
    rows: List[Dict[str, str]] = []
    for name in available_radio_presets():
        preset = RADIO_PRESETS[name]
        stack = preset.build(random.Random(0))  # repro-lint: ok RNG-001 -- probing preset shape for a listing table, never simulated
        rows.append(
            {
                "preset": name,
                "kind": preset.kind,
                "nominal_range_m": f"{stack.nominal_range_m():.0f}",
                "description": preset.description,
            }
        )
    return rows


# ------------------------------------------------------------ built-in kinds
def _components(
    mac: Optional[MacConfig],
    reception: Optional[ReceptionModel],
    interference: Optional[InterferenceModel],
):
    """Shared component defaulting for the kind builders."""
    return (
        mac if mac is not None else MacConfig(),
        reception if reception is not None else SnrThresholdReception(),
        interference if interference is not None else AdditiveInterference(),
    )


@register_radio("unit_disk")
def _build_unit_disk(
    rng: random.Random,
    communication_range_m: float = 250.0,
    tx_power_dbm: float = 20.0,
    mac: Optional[MacConfig] = None,
    reception: Optional[ReceptionModel] = None,
    interference: Optional[InterferenceModel] = None,
) -> RadioStack:
    """Idealised fixed-range disk (the paper's Eqn. 4 channel)."""
    mac, reception, interference = _components(mac, reception, interference)
    return RadioStack(
        propagation=UnitDiskPropagation(communication_range_m),
        reception=reception,
        interference=interference,
        mac=mac,
        tx_power_dbm=tx_power_dbm,
    )


@register_radio("free_space")
def _build_free_space(
    rng: random.Random,
    tx_power_dbm: float = 20.0,
    mac: Optional[MacConfig] = None,
    reception: Optional[ReceptionModel] = None,
    interference: Optional[InterferenceModel] = None,
) -> RadioStack:
    """Friis free-space path loss with SNR-threshold reception."""
    mac, reception, interference = _components(mac, reception, interference)
    return RadioStack(
        propagation=FreeSpacePropagation(),
        reception=reception,
        interference=interference,
        mac=mac,
        tx_power_dbm=tx_power_dbm,
    )


@register_radio("two_ray")
def _build_two_ray(
    rng: random.Random,
    antenna_height_m: float = 1.5,
    tx_power_dbm: float = 20.0,
    mac: Optional[MacConfig] = None,
    reception: Optional[ReceptionModel] = None,
    interference: Optional[InterferenceModel] = None,
) -> RadioStack:
    """Two-ray ground reflection (the standard DSRC highway channel)."""
    mac, reception, interference = _components(mac, reception, interference)
    return RadioStack(
        propagation=TwoRayGroundPropagation(antenna_height_m=antenna_height_m),
        reception=reception,
        interference=interference,
        mac=mac,
        tx_power_dbm=tx_power_dbm,
    )


@register_radio("shadowing")
def _build_shadowing(
    rng: random.Random,
    path_loss_exponent: float = 2.8,
    sigma_db: float = 4.0,
    tx_power_dbm: float = 20.0,
    mac: Optional[MacConfig] = None,
    reception: Optional[ReceptionModel] = None,
    interference: Optional[InterferenceModel] = None,
) -> RadioStack:
    """Log-normal shadowing (the paper's Sec. VII.A signal model)."""
    mac, reception, interference = _components(mac, reception, interference)
    return RadioStack(
        propagation=LogNormalShadowing(
            path_loss_exponent=path_loss_exponent, sigma_db=sigma_db, rng=rng
        ),
        reception=reception,
        interference=interference,
        mac=mac,
        tx_power_dbm=tx_power_dbm,
    )


@register_radio("nakagami")
def _build_nakagami(
    rng: random.Random,
    m: float = 3.0,
    tx_power_dbm: float = 20.0,
    mac: Optional[MacConfig] = None,
    reception: Optional[ReceptionModel] = None,
    interference: Optional[InterferenceModel] = None,
) -> RadioStack:
    """Nakagami-m fast fading over two-ray mean loss (Rayleigh at m=1)."""
    mac, reception, interference = _components(mac, reception, interference)
    return RadioStack(
        propagation=NakagamiFading(m=m, rng=rng),
        reception=reception,
        interference=interference,
        mac=mac,
        tx_power_dbm=tx_power_dbm,
    )


# -------------------------------------------------------------- presets
def _register_builtin_presets() -> None:
    register_radio_preset(
        DEFAULT_RADIO,
        lambda rng, **overrides: RADIO_TYPES["unit_disk"](
            rng, **{"communication_range_m": 250.0, **overrides}
        ),
        "idealised 250 m unit disk, deterministic SINR reception (the default)",
        kind="unit_disk",
    )
    register_radio_preset(
        "dsrc-highway-los",
        lambda rng, **overrides: RADIO_TYPES["two_ray"](rng, **overrides),
        "line-of-sight highway DSRC: two-ray ground loss, SNR-threshold reception",
        kind="two_ray",
    )
    register_radio_preset(
        "dsrc-urban-nlos",
        lambda rng, **overrides: RADIO_TYPES["shadowing"](
            rng,
            **{
                "path_loss_exponent": 3.0,
                "sigma_db": 6.0,
                "reception": ProbabilisticReception(),
                **overrides,
            },
        ),
        "urban non-line-of-sight DSRC: heavy log-normal shadowing, probabilistic reception",
        kind="shadowing",
    )
    register_radio_preset(
        "dsrc-congested",
        lambda rng, **overrides: RADIO_TYPES["unit_disk"](
            rng,
            **{
                "communication_range_m": 250.0,
                "mac": MacConfig(cw_min=7, cw_max=255),
                "reception": SnrThresholdReception(noise_floor_dbm=-90.0),
                **overrides,
            },
        ),
        "channel-congestion stress: 250 m disk, shortened contention window, raised noise floor",
        kind="unit_disk",
    )


_register_builtin_presets()


__all__ = [
    "DEFAULT_RADIO",
    "RADIO_PRESETS",
    "RADIO_TYPES",
    "RadioBuilder",
    "RadioPreset",
    "available_radio_presets",
    "available_radios",
    "radio_from_name",
    "radio_preset_rows",
    "radio_rows",
    "register_radio",
    "register_radio_preset",
    "stack_for_scenario",
    "unregister_radio",
    "unregister_radio_preset",
]
