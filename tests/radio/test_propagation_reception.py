"""Tests for propagation models, reception decisions and power arithmetic."""

import math
import random

import pytest

from repro.geometry import Vec2
from repro.radio.interference import NO_SIGNAL_DBM, combine_dbm, dbm_to_mw, mw_to_dbm
from repro.radio.propagation import (
    FreeSpacePropagation,
    LogNormalShadowing,
    TwoRayGroundPropagation,
    UnitDiskPropagation,
)
from repro.radio.reception import (
    ProbabilisticReception,
    ReceptionDecision,
    SnrThresholdReception,
)

ORIGIN = Vec2(0, 0)


class TestPowerConversions:
    def test_round_trip(self):
        assert mw_to_dbm(dbm_to_mw(17.0)) == pytest.approx(17.0)

    def test_zero_mw_maps_to_no_signal(self):
        assert mw_to_dbm(0.0) == NO_SIGNAL_DBM
        assert dbm_to_mw(NO_SIGNAL_DBM) == 0.0

    def test_known_values(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)
        assert dbm_to_mw(10.0) == pytest.approx(10.0)
        assert mw_to_dbm(100.0) == pytest.approx(20.0)

    def test_combining_two_equal_powers_adds_3db(self):
        assert combine_dbm([10.0, 10.0]) == pytest.approx(13.01, abs=0.01)

    def test_combining_with_no_signal_is_identity(self):
        assert combine_dbm([7.0, NO_SIGNAL_DBM]) == pytest.approx(7.0)

    def test_combining_empty_is_no_signal(self):
        assert combine_dbm([]) == NO_SIGNAL_DBM


class TestUnitDisk:
    def test_inside_and_outside_range(self):
        model = UnitDiskPropagation(250.0)
        assert model.rx_power_dbm(20.0, ORIGIN, Vec2(249, 0)) == 20.0
        assert model.rx_power_dbm(20.0, ORIGIN, Vec2(251, 0)) == NO_SIGNAL_DBM

    def test_boundary_is_inclusive(self):
        model = UnitDiskPropagation(250.0)
        assert model.rx_power_dbm(20.0, ORIGIN, Vec2(250, 0)) == 20.0

    def test_nominal_range_is_configured_range(self):
        assert UnitDiskPropagation(180.0).nominal_range(20.0, -92.0) == 180.0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UnitDiskPropagation(0.0)


class TestFreeSpace:
    def test_power_decreases_with_distance(self):
        model = FreeSpacePropagation()
        near = model.rx_power_dbm(20.0, ORIGIN, Vec2(10, 0))
        far = model.rx_power_dbm(20.0, ORIGIN, Vec2(100, 0))
        assert near > far

    def test_path_loss_follows_20_db_per_decade(self):
        model = FreeSpacePropagation()
        loss_100 = model.path_loss_db(100.0)
        loss_1000 = model.path_loss_db(1000.0)
        assert loss_1000 - loss_100 == pytest.approx(20.0, abs=1e-6)

    def test_nominal_range_matches_sensitivity(self):
        model = FreeSpacePropagation()
        rng = model.nominal_range(20.0, -92.0)
        assert model.mean_rx_power_dbm(20.0, rng) == pytest.approx(-92.0, abs=0.1)


class TestTwoRayGround:
    def test_matches_free_space_below_crossover(self):
        model = TwoRayGroundPropagation()
        distance = model.crossover_distance / 2.0
        assert model.path_loss_db(distance) == pytest.approx(
            model.free_space.path_loss_db(distance)
        )

    def test_fourth_power_beyond_crossover(self):
        model = TwoRayGroundPropagation()
        d = model.crossover_distance * 2.0
        assert model.path_loss_db(2 * d) - model.path_loss_db(d) == pytest.approx(
            40.0 * math.log10(2.0), abs=1e-6
        )

    def test_loses_more_than_free_space_at_long_range(self):
        model = TwoRayGroundPropagation()
        distance = model.crossover_distance * 4.0
        assert model.path_loss_db(distance) > model.free_space.path_loss_db(distance)


class TestLogNormalShadowing:
    def test_mean_power_monotonically_decreasing(self):
        model = LogNormalShadowing(sigma_db=0.0)
        powers = [model.mean_rx_power_dbm(20.0, d) for d in (10, 50, 100, 400)]
        assert powers == sorted(powers, reverse=True)

    def test_zero_sigma_is_deterministic(self):
        model = LogNormalShadowing(sigma_db=0.0, rng=random.Random(1))
        a = model.rx_power_dbm(20.0, ORIGIN, Vec2(100, 0))
        b = model.rx_power_dbm(20.0, ORIGIN, Vec2(100, 0))
        assert a == b == pytest.approx(model.mean_rx_power_dbm(20.0, 100.0))

    def test_shadowing_spreads_around_mean(self):
        model = LogNormalShadowing(sigma_db=6.0, rng=random.Random(7))
        draws = [model.rx_power_dbm(20.0, ORIGIN, Vec2(100, 0)) for _ in range(500)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(model.mean_rx_power_dbm(20.0, 100.0), abs=1.0)
        assert max(draws) - min(draws) > 10.0

    def test_link_probability_decreases_with_distance(self):
        model = LogNormalShadowing(sigma_db=4.0)
        near = model.link_probability(20.0, -92.0, 50.0)
        far = model.link_probability(20.0, -92.0, 800.0)
        assert near > 0.95
        assert far < 0.5
        assert 0.0 <= far <= 1.0

    def test_link_probability_half_at_nominal_range(self):
        model = LogNormalShadowing(sigma_db=4.0)
        nominal = model.nominal_range(20.0, -92.0)
        assert model.link_probability(20.0, -92.0, nominal) == pytest.approx(0.5, abs=0.05)


class TestSnrThresholdReception:
    def test_clean_signal_received(self):
        model = SnrThresholdReception()
        outcome = model.decide(-60.0, NO_SIGNAL_DBM)
        assert outcome.ok

    def test_weak_signal_rejected(self):
        model = SnrThresholdReception(sensitivity_dbm=-92.0)
        outcome = model.decide(-95.0, NO_SIGNAL_DBM)
        assert outcome.decision is ReceptionDecision.WEAK_SIGNAL

    def test_strong_interference_causes_collision(self):
        model = SnrThresholdReception(snr_threshold_db=10.0)
        outcome = model.decide(-60.0, -62.0)
        assert outcome.decision is ReceptionDecision.COLLISION

    def test_sinr_computation_includes_noise(self):
        model = SnrThresholdReception(noise_floor_dbm=-99.0)
        assert model.sinr_db(-60.0, NO_SIGNAL_DBM) == pytest.approx(39.0, abs=0.1)


class TestProbabilisticReception:
    def test_success_probability_is_monotonic_in_snr(self):
        model = ProbabilisticReception()
        weak = model.success_probability(-88.0, NO_SIGNAL_DBM)
        strong = model.success_probability(-60.0, NO_SIGNAL_DBM)
        assert strong > weak
        assert 0.0 <= weak <= strong <= 1.0

    def test_below_sensitivity_never_received(self):
        model = ProbabilisticReception()
        assert model.success_probability(-100.0, NO_SIGNAL_DBM) == 0.0
        outcome = model.decide(-100.0, NO_SIGNAL_DBM, random.Random(1))
        assert not outcome.ok

    def test_decision_statistics_match_probability(self):
        model = ProbabilisticReception()
        rng = random.Random(3)
        rx_power = -85.0
        probability = model.success_probability(rx_power, NO_SIGNAL_DBM)
        successes = sum(
            1 for _ in range(2000) if model.decide(rx_power, NO_SIGNAL_DBM, rng).ok
        )
        assert successes / 2000 == pytest.approx(probability, abs=0.05)
