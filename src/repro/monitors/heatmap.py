"""Per-region grid heatmap probe: where the channel load actually is."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Tuple

from repro.monitors.base import Monitor
from repro.monitors.registry import register_monitor, register_monitor_preset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.packet import Packet


@register_monitor("heatmap")
class TransmissionHeatmapMonitor(Monitor):
    """Counts transmissions per square grid cell of the plane.

    Every frame handed to the channel increments the cell containing the
    sender's position.  The full map is emitted once, at finalize, as a
    ``heatmap`` telemetry event with deterministically sorted
    ``[ix, iy, count]`` rows; summary metrics report the active-cell
    count, total, and the peak cell (the hotspot a city-wide mean hides).
    """

    def __init__(self, cell_size_m: float = 250.0, data_only: bool = False):
        super().__init__()
        if cell_size_m <= 0:
            raise ValueError(f"cell_size_m must be positive, got {cell_size_m!r}")
        self.cell_size_m = cell_size_m
        self.data_only = data_only
        self._cells: Dict[Tuple[int, int], int] = {}

    def on_transmission(
        self, now: float, packet: "Packet", sender_id: int, position
    ) -> None:
        if self.data_only and packet.is_control:
            return
        cell = (
            int(math.floor(position.x / self.cell_size_m)),
            int(math.floor(position.y / self.cell_size_m)),
        )
        self._cells[cell] = self._cells.get(cell, 0) + 1

    def finalize(self, now: float) -> Dict[str, float]:
        rows = [[ix, iy, count] for (ix, iy), count in sorted(self._cells.items())]
        total = sum(self._cells.values())
        peak = max(self._cells.values()) if self._cells else 0
        self.emit(
            "heatmap",
            now,
            cell_size_m=self.cell_size_m,
            cells=rows,
            total=total,
        )
        return {
            "heatmap_active_cells": float(len(self._cells)),
            "heatmap_total_tx": float(total),
            "heatmap_peak_cell_tx": float(peak),
        }


register_monitor_preset(
    "heatmap-250m",
    TransmissionHeatmapMonitor,
    "transmission heatmap on 250 m cells",
    kind="heatmap",
    cell_size_m=250.0,
)
register_monitor_preset(
    "heatmap-1km",
    TransmissionHeatmapMonitor,
    "coarse city-scale heatmap on 1 km cells",
    kind="heatmap",
    cell_size_m=1000.0,
)
