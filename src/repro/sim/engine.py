"""The discrete-event simulation engine (clock + event loop)."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Simulator:
    """Event loop, simulation clock and random-stream registry.

    Typical use::

        sim = Simulator(seed=7)
        sim.schedule(1.0, my_callback, "argument")
        sim.run(until=10.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.rng = RandomStreams(seed)
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (useful for progress/debug)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time}, now={self._now})"
            )
        return self._queue.push(time, callback, args, priority)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng_stream: str = "periodic-jitter",
    ) -> "PeriodicTask":
        """Schedule ``callback(*args)`` every ``interval`` seconds.

        ``jitter`` desynchronises periodic tasks the way real protocols
        desynchronise beacons: the first firing is offset by a uniform draw
        in ``[0, jitter]`` and every subsequent period is ``interval`` plus
        a *centred* uniform draw in ``[-jitter/2, +jitter/2]``, so the mean
        period equals ``interval`` exactly.  Delays are clamped at zero.
        Returns a handle whose :meth:`PeriodicTask.cancel` stops the task.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive (got {interval})")
        task = PeriodicTask(self, interval, callback, args, jitter, rng_stream)
        first_delay = start_delay if start_delay is not None else interval
        task.start(first_delay)
        return task

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: Stop once the clock would pass this time (events scheduled
                later stay in the queue).  ``None`` runs until the queue is
                empty.
            max_events: Safety valve -- stop after this many events.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                if event.cancelled:
                    continue
                self._now = event.time
                event.fire()
                self._events_processed += 1
                if max_events is not None and self._events_processed >= max_events:
                    break
            else:
                if until is not None and not self._stopped:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop the event loop after the currently firing event returns."""
        self._stopped = True

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero (streams are kept)."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
        self._stopped = False


class PeriodicTask:
    """Handle for a periodically re-scheduled callback."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        jitter: float,
        rng_stream: str,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._args = args
        self._jitter = jitter
        self._rng = sim.rng.stream(rng_stream)
        self._event: Optional[Event] = None
        self._cancelled = False

    def start(self, first_delay: float) -> None:
        """Schedule the first firing ``first_delay`` seconds from now.

        The first firing gets a one-off phase offset in ``[0, jitter]``;
        subsequent periods use a centred draw (see :meth:`_fire`).
        """
        delay = max(0.0, first_delay)
        if self._jitter > 0:
            delay += self._rng.uniform(0.0, self._jitter)
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Stop the task; a pending firing is cancelled as well."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback(*self._args)
        if self._cancelled:
            return
        # Centred jitter keeps the mean period at exactly `interval`; an
        # offset in [0, jitter] would slow every task by jitter/2 on average
        # (10% at the conventional jitter = 0.2 * interval), skewing beacon
        # and overhead accounting.
        delay = self._interval
        if self._jitter > 0:
            delay += self._rng.uniform(-0.5 * self._jitter, 0.5 * self._jitter)
        self._event = self._sim.schedule(max(0.0, delay), self._fire)
