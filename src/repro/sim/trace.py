"""Lightweight event tracing.

Traces are optional (disabled by default, because recording every packet
event is expensive in dense scenarios) and are used by integration tests and
by the examples to explain what a protocol did, e.g. to show the RREQ flood
and RREP return of Fig. 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    node_id: Optional[int]
    detail: Dict[str, Any] = field(default_factory=dict)


class EventTrace:
    """An append-only, filterable log of :class:`TraceRecord` objects."""

    def __init__(self, enabled: bool = False, max_records: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self._records: List[TraceRecord] = []
        self._dropped = 0

    def record(
        self,
        time: float,
        category: str,
        node_id: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Append a record if tracing is enabled (and the cap not reached)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self._records) >= self.max_records:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time, category, node_id, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        """Number of records that were discarded due to the cap."""
        return self._dropped

    def records(
        self,
        category: Optional[str] = None,
        node_id: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Records matching the optional category / node filters."""
        selected = self._records
        if category is not None:
            selected = [r for r in selected if r.category == category]
        if node_id is not None:
            selected = [r for r in selected if r.node_id == node_id]
        return list(selected)

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()
        self._dropped = 0
