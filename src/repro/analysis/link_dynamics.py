"""Link formation/breakage tracking and lifetime-prediction accuracy.

The mobility and probability categories stand or fall with how predictable
individual link durations are.  :class:`LinkDurationTracker` watches a
mobility model, records when each vehicle pair's link forms and breaks, and
(optionally) snapshots the constant-velocity lifetime prediction at formation
time so the prediction error can be evaluated against what actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.link_lifetime import LinkLifetimePredictor
from repro.mobility.vehicle import VehicleState


@dataclass
class LinkObservation:
    """One completed link: when it existed and what was predicted for it."""

    vehicle_a: int
    vehicle_b: int
    formed_at: float
    broke_at: float
    predicted_lifetime: float
    same_direction: bool

    @property
    def actual_lifetime(self) -> float:
        """Observed duration of the link in seconds."""
        return self.broke_at - self.formed_at

    def relative_error(self, horizon: float = 60.0) -> float:
        """Relative prediction error with both values capped at ``horizon``."""
        actual = min(self.actual_lifetime, horizon)
        predicted = min(self.predicted_lifetime, horizon)
        return abs(predicted - actual) / max(actual, 1.0)


class LinkDurationTracker:
    """Track link up/down transitions of a vehicle population over time."""

    def __init__(
        self,
        communication_range: float = 250.0,
        predictor: Optional[LinkLifetimePredictor] = None,
    ) -> None:
        self.communication_range = communication_range
        self.predictor = (
            predictor if predictor is not None else LinkLifetimePredictor(communication_range)
        )
        self._active: Dict[Tuple[int, int], Dict[str, float]] = {}
        self.observations: List[LinkObservation] = []

    def observe(self, vehicles: Sequence[VehicleState], now: float) -> None:
        """Record link formations and breakages for the current positions."""
        import math

        for i, a in enumerate(vehicles):
            for b in vehicles[i + 1 :]:
                key = (a.vid, b.vid)
                connected = (
                    a.position.distance_to(b.position) <= self.communication_range
                )
                if connected and key not in self._active:
                    self._active[key] = {
                        "formed_at": now,
                        "predicted": self.predictor.predict(a, b),
                        "same_direction": float(
                            math.cos(a.heading - b.heading) > 0.0
                        ),
                    }
                elif not connected and key in self._active:
                    record = self._active.pop(key)
                    self.observations.append(
                        LinkObservation(
                            vehicle_a=key[0],
                            vehicle_b=key[1],
                            formed_at=record["formed_at"],
                            broke_at=now,
                            predicted_lifetime=record["predicted"],
                            same_direction=bool(record["same_direction"]),
                        )
                    )

    @property
    def active_links(self) -> int:
        """Number of links currently up."""
        return len(self._active)

    def durations(self, same_direction: Optional[bool] = None) -> List[float]:
        """Observed link durations, optionally filtered by direction agreement."""
        return [
            obs.actual_lifetime
            for obs in self.observations
            if same_direction is None or obs.same_direction == same_direction
        ]


def measure_link_durations(
    mobility,
    duration: float,
    dt: float = 0.5,
    communication_range: float = 250.0,
) -> LinkDurationTracker:
    """Run ``mobility`` for ``duration`` seconds and return the populated tracker."""
    if dt <= 0:
        raise ValueError("sampling interval must be positive")
    tracker = LinkDurationTracker(communication_range)
    steps = int(round(duration / dt))
    now = 0.0
    for _ in range(steps + 1):
        tracker.observe(mobility.vehicles, now)
        mobility.step(dt, now + dt)
        now += dt
    return tracker


def prediction_error_statistics(
    observations: Sequence[LinkObservation], horizon: float = 60.0
) -> Dict[str, float]:
    """Aggregate relative prediction-error statistics over completed links."""
    if not observations:
        return {
            "links": 0.0,
            "mean_relative_error": 0.0,
            "median_relative_error": 0.0,
            "mean_actual_lifetime_s": 0.0,
            "mean_predicted_lifetime_s": 0.0,
        }
    errors = sorted(obs.relative_error(horizon) for obs in observations)
    actuals = [min(obs.actual_lifetime, horizon) for obs in observations]
    predictions = [min(obs.predicted_lifetime, horizon) for obs in observations]
    count = len(observations)
    return {
        "links": float(count),
        "mean_relative_error": sum(errors) / count,
        "median_relative_error": errors[count // 2],
        "mean_actual_lifetime_s": sum(actuals) / count,
        "mean_predicted_lifetime_s": sum(predictions) / count,
    }
