"""SCHEMA-001/002: schema-stamped formats must version their layout changes.

SCHEMA-001: record-layout changes must bump the record schema version.

The experiment store persists every :class:`~repro.harness.runner.RunRecord`
to disk with an explicit ``schema_version`` stamp, and readers refuse
payloads stamped with a version they do not know
(:func:`repro.store.schema.check_record_schema_version`).  That contract
only protects anyone if the stamp actually moves when the layout moves.

This cross-file rule pins the two ends together syntactically:

* the ``RunRecord`` dataclass field list in ``harness/runner.py`` must
  equal the ``RECORD_FIELDS`` catalogue entry for the current
  ``RECORD_SCHEMA_VERSION`` in ``store/schema.py`` -- so changing the
  record layout without bumping the version (and cataloguing the new
  layout) fails the lint, not a collaborator's resume;
* the catalogue itself must contain the current version and cover every
  version contiguously from 1 -- gaps would make the "known versions"
  error message lie.

SCHEMA-002 applies the same discipline to the streaming monitor telemetry
(:mod:`repro.monitors.telemetry`): ``TELEMETRY_FIELDS`` must be a literal
catalogue containing the current ``TELEMETRY_SCHEMA_VERSION``, covering
every version contiguously from 1, and every version's envelope must keep
the ``v`` key (without it :func:`check_telemetry_schema_version` cannot
even identify the line's format).

Purely syntactic (AST only); when either module is absent from the lint
run (partial trees, test fixtures) the rule stays silent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.base import LintRule, ParsedModule, ProjectContext
from repro.devtools.findings import SEVERITY_ERROR, Finding
from repro.devtools.registry import register_lint_rule

#: Where the persisted-record schema contract lives.
SCHEMA_RELPATH = "store/schema.py"
#: Where the RunRecord dataclass lives.
RUNNER_RELPATH = "harness/runner.py"
#: Where the streaming telemetry schema contract lives.
TELEMETRY_RELPATH = "monitors/telemetry.py"


def _int_constant(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


def _str_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """The value of a tuple/list literal of string constants, or None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return tuple(names)


def _assign_value(node: ast.stmt, name: str) -> Optional[ast.expr]:
    """The assigned expression when ``node`` binds ``name``, else None."""
    if isinstance(node, ast.AnnAssign):
        if isinstance(node.target, ast.Name) and node.target.id == name:
            return node.value
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                return node.value
    return None


def _dataclass_fields(node: ast.ClassDef) -> Tuple[str, ...]:
    """Annotated field names of a dataclass body, in declaration order.

    ``ClassVar`` annotations are not dataclass fields and are skipped.
    """
    names: List[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = statement.annotation
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        label = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if label == "ClassVar":
            continue
        names.append(statement.target.id)
    return tuple(names)


@register_lint_rule("SCHEMA-001")
class RecordSchemaVersionRule(LintRule):
    """RunRecord layout drift without a RECORD_SCHEMA_VERSION bump."""

    severity = SEVERITY_ERROR
    rationale = (
        "the persisted RunRecord layout is pinned to RECORD_SCHEMA_VERSION: "
        "changing the dataclass fields requires bumping the version and "
        "cataloguing the new layout in RECORD_FIELDS"
    )
    historical_bug = (
        "PR 9: the first experiment-store draft stamped records with a "
        "schema version but nothing tied the stamp to the RunRecord layout; "
        "a field added later would have silently produced v2-stamped records "
        "that v2 readers could not round-trip"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        schema_module: Optional[ParsedModule] = None
        runner_module: Optional[ParsedModule] = None
        for module in project.modules:
            if module.relpath == SCHEMA_RELPATH:
                schema_module = module
            elif module.relpath == RUNNER_RELPATH:
                runner_module = module
        if schema_module is None or runner_module is None:
            # Partial lint run (fixtures, single files): nothing to compare.
            return

        version: Optional[int] = None
        version_node: Optional[ast.expr] = None
        catalogue: Optional[Dict[int, Tuple[str, ...]]] = None
        catalogue_node: Optional[ast.expr] = None
        for statement in schema_module.tree.body:
            value = _assign_value(statement, "RECORD_SCHEMA_VERSION")
            if value is not None:
                version = _int_constant(value)
                version_node = value
            value = _assign_value(statement, "RECORD_FIELDS")
            if value is not None and isinstance(value, ast.Dict):
                catalogue_node = value
                catalogue = {}
                for key_node, value_node in zip(value.keys, value.values):
                    key = _int_constant(key_node) if key_node is not None else None
                    fields = _str_tuple(value_node)
                    if key is None or fields is None:
                        catalogue = None
                        break
                    catalogue[key] = fields
        if version is None or version_node is None:
            return
        if catalogue is None or catalogue_node is None:
            yield self.report(
                schema_module,
                version_node,
                "RECORD_FIELDS must be a literal dict of "
                "{int version: (field, ...)} so SCHEMA-001 can pin the "
                "persisted RunRecord layout to RECORD_SCHEMA_VERSION",
            )
            return

        if version not in catalogue:
            yield self.report(
                schema_module,
                version_node,
                f"RECORD_SCHEMA_VERSION is {version} but RECORD_FIELDS has "
                f"no entry for version {version}; every shipped version "
                "needs its field layout catalogued",
            )
        expected = sorted(range(1, max(catalogue) + 1)) if catalogue else []
        if sorted(catalogue) != expected:
            yield self.report(
                schema_module,
                catalogue_node,
                "RECORD_FIELDS versions must be contiguous from 1 "
                f"(got {sorted(catalogue)}); gaps make the known-versions "
                "error message of check_record_schema_version lie",
            )

        run_record: Optional[ast.ClassDef] = None
        for node in ast.walk(runner_module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "RunRecord":
                run_record = node
                break
        if run_record is None:
            return
        declared = _dataclass_fields(run_record)
        catalogued = catalogue.get(version)
        if catalogued is not None and declared != catalogued:
            yield self.report(
                runner_module,
                run_record,
                f"RunRecord fields {list(declared)} do not match "
                f"RECORD_FIELDS[{version}] = {list(catalogued)}: the record "
                "layout changed without a schema-version bump -- bump "
                "RECORD_SCHEMA_VERSION and add the new layout to "
                "RECORD_FIELDS in store/schema.py",
            )


@register_lint_rule("SCHEMA-002")
class TelemetrySchemaVersionRule(LintRule):
    """Telemetry envelope drift without a TELEMETRY_SCHEMA_VERSION bump."""

    severity = SEVERITY_ERROR
    rationale = (
        "every streaming telemetry line is stamped with "
        "TELEMETRY_SCHEMA_VERSION: changing the envelope requires bumping "
        "the version and cataloguing the new envelope in TELEMETRY_FIELDS"
    )
    historical_bug = (
        "PR 9: the store's schema stamp initially floated free of the layout "
        "it claimed to describe; the telemetry stream starts life with the "
        "same stamp-to-catalogue pin instead of rediscovering that bug"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        telemetry_module: Optional[ParsedModule] = None
        for module in project.modules:
            if module.relpath == TELEMETRY_RELPATH:
                telemetry_module = module
                break
        if telemetry_module is None:
            # Partial lint run (fixtures, single files): nothing to check.
            return

        version: Optional[int] = None
        version_node: Optional[ast.expr] = None
        catalogue: Optional[Dict[int, Tuple[str, ...]]] = None
        catalogue_node: Optional[ast.expr] = None
        for statement in telemetry_module.tree.body:
            value = _assign_value(statement, "TELEMETRY_SCHEMA_VERSION")
            if value is not None:
                version = _int_constant(value)
                version_node = value
            value = _assign_value(statement, "TELEMETRY_FIELDS")
            if value is not None and isinstance(value, ast.Dict):
                catalogue_node = value
                catalogue = {}
                for key_node, value_node in zip(value.keys, value.values):
                    key = _int_constant(key_node) if key_node is not None else None
                    fields = _str_tuple(value_node)
                    if key is None or fields is None:
                        catalogue = None
                        break
                    catalogue[key] = fields
        if version is None or version_node is None:
            return
        if catalogue is None or catalogue_node is None:
            yield self.report(
                telemetry_module,
                version_node,
                "TELEMETRY_FIELDS must be a literal dict of "
                "{int version: (key, ...)} so SCHEMA-002 can pin the "
                "telemetry envelope to TELEMETRY_SCHEMA_VERSION",
            )
            return

        if version not in catalogue:
            yield self.report(
                telemetry_module,
                version_node,
                f"TELEMETRY_SCHEMA_VERSION is {version} but TELEMETRY_FIELDS "
                f"has no entry for version {version}; every shipped version "
                "needs its envelope catalogued",
            )
        expected = sorted(range(1, max(catalogue) + 1)) if catalogue else []
        if sorted(catalogue) != expected:
            yield self.report(
                telemetry_module,
                catalogue_node,
                "TELEMETRY_FIELDS versions must be contiguous from 1 "
                f"(got {sorted(catalogue)}); gaps make the known-versions "
                "error message of check_telemetry_schema_version lie",
            )
        for catalogued_version, keys in sorted(catalogue.items()):
            if "v" not in keys:
                yield self.report(
                    telemetry_module,
                    catalogue_node,
                    f"TELEMETRY_FIELDS[{catalogued_version}] omits the 'v' "
                    "key; without it check_telemetry_schema_version cannot "
                    "even identify a line's format",
                )
