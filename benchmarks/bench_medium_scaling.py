"""Scaling benchmark: spatial-grid vs. linear-scan wireless medium.

Every delivered frame used to scan all N registered nodes, and every
carrier-sense poll scanned every in-flight transmission, so frame delivery
cost O(N) and a beacon interval cost O(N^2).  The uniform-grid index bounds
both by the local neighbourhood.  This benchmark holds vehicle density
constant (so the neighbourhood stays the same size), sweeps the population,
and times an identical broadcast workload through both backends -- the
linear backend's wall-clock grows superlinearly while the grid's grows
roughly linearly, which is what makes city-scale scenarios tractable.
"""

from __future__ import annotations

import math
import random
import time

from repro.geometry import Vec2
from repro.radio.propagation import UnitDiskPropagation
from repro.sim.engine import Simulator
from repro.sim.medium import WirelessMedium
from repro.sim.network import Network
from repro.sim.node import StaticPositionProvider
from repro.sim.packet import BROADCAST, make_control_packet
from repro.sim.statistics import StatsCollector

from benchmarks.common import report, run_once

#: Vehicles per square metre: 16 per km^2 -- a city-scale map much larger
#: than the radio range, which is exactly the regime the index targets (the
#: linear scan pays for every vehicle on the map per frame; the grid only
#: pays for the radio neighbourhood).
DENSITY_PER_M2 = 16e-6

POPULATIONS = [100, 400, 1600]
FRAMES_PER_NODE = 2
COMM_RANGE_M = 250.0


def _build_network(n: int, backend: str, seed: int = 5):
    sim = Simulator(seed=seed)
    stats = StatsCollector()
    medium = WirelessMedium(
        sim,
        propagation=UnitDiskPropagation(COMM_RANGE_M),
        stats=stats,
        spatial_backend=backend,
    )
    network = Network(sim, medium=medium, stats=stats)
    side = math.sqrt(n / DENSITY_PER_M2)
    rng = random.Random(seed)
    for _ in range(n):
        network.add_vehicle(
            StaticPositionProvider(Vec2(rng.uniform(0, side), rng.uniform(0, side)))
        )
    return sim, network, stats


def _run_broadcast_workload(n: int, backend: str):
    """Every node broadcasts beacon-sized frames at staggered times."""
    sim, network, stats, = _build_network(n, backend)
    rng = random.Random(99)
    for node in network.nodes.values():
        for _ in range(FRAMES_PER_NODE):
            packet = make_control_packet(
                "bench", "HELLO", node.node_id, BROADCAST, size_bytes=32
            )
            sim.schedule_at(rng.uniform(0.0, 2.0), node.send, packet, BROADCAST)
    started = time.perf_counter()
    sim.run(until=5.0)
    wall = time.perf_counter() - started
    return wall, stats


def _sweep():
    rows = []
    for n in POPULATIONS:
        timings = {}
        receptions = {}
        for backend in ("linear", "grid"):
            wall, stats = _run_broadcast_workload(n, backend)
            timings[backend] = wall
            receptions[backend] = stats.control_transmissions
        rows.append(
            {
                "vehicles": n,
                "frames": n * FRAMES_PER_NODE,
                "linear_s": round(timings["linear"], 4),
                "grid_s": round(timings["grid"], 4),
                "speedup": round(timings["linear"] / max(timings["grid"], 1e-9), 2),
                "tx_linear": receptions["linear"],
                "tx_grid": receptions["grid"],
            }
        )
    return rows


def test_medium_scaling(benchmark):
    """Frame-delivery wall clock, linear vs. grid, at constant density."""
    rows = run_once(benchmark, _sweep)
    report(
        "medium_scaling",
        rows,
        title="Wireless medium scaling -- linear scan vs. uniform grid",
    )
    for row in rows:
        # Both backends must push the same frames through the channel.
        assert row["tx_linear"] == row["tx_grid"]
    largest = rows[-1]
    assert largest["vehicles"] == 1600
    # Acceptance bar for the grid index: >= 5x faster frame delivery at
    # N=1600 (a conservative floor; typical runs land far above it).
    assert largest["speedup"] >= 5.0
