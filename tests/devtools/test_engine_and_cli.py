"""Engine, reporters, rule registry, CLI verbs, and the meta self-check."""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools import lint_paths, lint_sources
from repro.devtools.base import LintRule
from repro.devtools.lint import main as lint_main
from repro.devtools.registry import (
    LINT_RULES,
    available_lint_rules,
    register_lint_rule,
    rule_rows,
    unregister_lint_rule,
)
from repro.devtools.reporters import render_github, render_json, render_text

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

BAD_SIM_SOURCE = "import random\nrng = random.Random(0)\n"


class TestEngine:
    def test_unparsable_file_reported_as_lint_002(self):
        report = lint_sources({"sim/broken.py": "def f(:\n"})
        assert [f.rule_id for f in report.findings] == ["LINT-002"]
        assert report.findings[0].path == "sim/broken.py"
        assert report.file_count == 1

    def test_unknown_select_rejected(self):
        with pytest.raises(KeyError, match="ZZZ-999"):
            lint_sources({"sim/x.py": "x = 1\n"}, select=["ZZZ-999"])

    def test_select_runs_only_chosen_rules(self):
        src = "import random, numpy as np\nrandom.random()\nnp.power(10.0, 2)\n"
        report = lint_sources({"sim/x.py": src}, select=["BITX-001"])
        assert {f.rule_id for f in report.findings} == {"BITX-001"}

    def test_findings_sorted_by_path_then_line(self):
        sources = {
            "sim/b.py": "import random\nrandom.random()\nrandom.random()\n",
            "sim/a.py": "import random\nrandom.random()\n",
        }
        report = lint_sources(sources, select=["RNG-001"])
        assert [(f.path, f.line) for f in report.findings] == [
            ("sim/a.py", 2),
            ("sim/b.py", 2),
            ("sim/b.py", 3),
        ]

    def test_malformed_pragma_reported_and_finding_kept(self):
        src = "import random\nrng = random.Random(0)  # repro-lint: ok RNG-001\n"
        report = lint_sources({"sim/x.py": src})
        assert {f.rule_id for f in report.findings} == {"LINT-001", "RNG-001"}

    def test_lint_paths_walks_directories(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "sim").mkdir()
        (tree / "sim" / "bad.py").write_text(BAD_SIM_SOURCE)
        (tree / "clean.py").write_text("x = 1\n")
        report = lint_paths([str(tree)])
        assert report.file_count == 2
        assert [f.rule_id for f in report.findings] == ["RNG-001"]
        assert report.findings[0].path == "sim/bad.py"


class TestReporters:
    def _report(self):
        return lint_sources({"sim/bad.py": BAD_SIM_SOURCE}, select=["RNG-001"])

    def test_text_format(self):
        text = render_text(self._report())
        assert "sim/bad.py:2:6: RNG-001 [error]" in text
        assert "1 error(s), 0 warning(s)" in text

    def test_json_format_round_trips(self):
        payload = json.loads(render_json(self._report()))
        assert payload["clean"] is False
        assert payload["errors"] == 1
        finding = payload["findings"][0]
        assert (finding["rule"], finding["path"], finding["line"]) == (
            "RNG-001",
            "sim/bad.py",
            2,
        )

    def test_github_format_emits_annotations(self):
        out = render_github(self._report())
        assert "::error file=sim/bad.py,line=2," in out
        assert "title=RNG-001::" in out

    def test_clean_summary(self):
        report = lint_sources({"sim/ok.py": "x = 1\n"})
        assert render_text(report).endswith("1 file(s) linted: clean")


class TestRuleRegistry:
    def test_builtin_rules_registered(self):
        assert {
            "RNG-001", "BITX-001", "DET-001", "DET-002",
            "REG-001", "LINT-001", "LINT-002",
        } <= set(available_lint_rules())

    def test_rule_rows_cover_every_rule(self):
        rows = rule_rows()
        assert [row["rule"] for row in rows] == available_lint_rules()
        assert all(row["severity"] and row["rationale"] for row in rows)

    def test_registering_a_plugin_rule(self):
        @register_lint_rule("TST-001")
        class NoTodoRule(LintRule):
            severity = "warning"
            rationale = "test rule"

            def check_module(self, module):
                for lineno, line in enumerate(module.text.splitlines(), start=1):
                    if "TODO" in line:
                        yield self._finding(module, lineno)

            def _finding(self, module, lineno):
                from repro.devtools.findings import Finding

                return Finding(
                    path=module.relpath, line=lineno, col=0,
                    rule_id=self.rule_id, message="todo", severity=self.severity,
                )

        try:
            report = lint_sources({"sim/x.py": "# TODO fix\n"}, select=["TST-001"])
            assert [f.rule_id for f in report.findings] == ["TST-001"]
        finally:
            unregister_lint_rule("TST-001")
        assert "TST-001" not in LINT_RULES

    def test_bad_rule_id_rejected(self):
        with pytest.raises(ValueError, match="rng-1"):
            register_lint_rule("rng-1")

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_lint_rule("RNG-001")(LINT_RULES["RNG-001"])


class TestCommandLine:
    def test_module_entrypoint_exit_codes(self, tmp_path):
        bad = tmp_path / "sim"
        bad.mkdir()
        (bad / "bad.py").write_text(BAD_SIM_SOURCE)
        assert lint_main([str(tmp_path)]) == 1
        (bad / "bad.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0

    def test_module_entrypoint_unknown_rule_is_usage_error(self, tmp_path):
        (tmp_path / "x.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--select", "ZZZ-999"]) == 2

    def test_cli_lint_verb(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_lint_verb_json_failure(self, tmp_path, capsys):
        target = tmp_path / "sim"
        target.mkdir()
        (target / "bad.py").write_text(BAD_SIM_SOURCE)
        assert cli_main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1

    def test_cli_list_lint_rules_verb(self, capsys):
        assert cli_main(["list-lint-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in available_lint_rules():
            assert rule_id in out
        assert "repro-lint: ok" in out


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        """The merge gate: the real tree has zero findings."""
        report = lint_paths([str(SRC_REPRO)])
        assert report.clean, "\n".join(f.location + " " + f.rule_id for f in report.findings)
        assert report.file_count > 100


class TestHistoricalBugsRefire:
    def test_unseeding_random_waypoint_refires_rng_001(self):
        """Acceptance criterion: re-introducing the PR 2 fixed-seed fallback
        in the real random-waypoint source must re-flag RNG-001."""
        original = (SRC_REPRO / "mobility" / "random_waypoint.py").read_text(
            encoding="utf-8"
        )
        assert "self._rng = rng" in original
        reverted = original.replace(
            "self._rng = rng",
            "self._rng = rng if rng is not None else random.Random(0)",
        )
        report = lint_sources(
            {"mobility/random_waypoint.py": reverted}, select=["RNG-001"]
        )
        assert [f.rule_id for f in report.findings] == ["RNG-001"]
        # The current, fixed source stays clean.
        clean = lint_sources(
            {"mobility/random_waypoint.py": original}, select=["RNG-001"]
        )
        assert clean.clean
