"""RNG-001: every random draw must come from the simulator's seeded streams.

The reproducibility contract (see :mod:`repro.sim.rng`) is that *all*
randomness derives from ``scenario.seed`` through named
``sim.rng.stream(...)`` streams.  Three spellings break it:

* ``random.Random(0)`` (or any constant seed) -- a fixed-seed fallback
  that silently ignores ``scenario.seed``;
* ``random.Random()`` / ``random.SystemRandom()`` -- unseeded entropy;
* module-level ``random.random()`` / ``numpy.random.*`` -- process-global
  RNG state shared across runs and perturbed by unrelated callers.

``random.Random(expr)`` with a *non-constant* seed is allowed: that is how
seeds are threaded (:func:`repro.sim.rng.RandomStreams.stream` itself, the
generator helpers' explicit ``seed=`` parameters).  ``sim/rng.py`` is the
one module allowed to construct streams.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.devtools.astutils import dotted_name
from repro.devtools.base import LintRule, ParsedModule
from repro.devtools.findings import SEVERITY_ERROR, Finding
from repro.devtools.registry import register_lint_rule

#: The module allowed to construct ``random.Random`` instances.
STREAM_FACTORY_MODULE = "sim/rng.py"

#: ``random.<fn>`` calls that draw from (or reset) the shared global RNG.
GLOBAL_RANDOM_FUNCS: FrozenSet[str] = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register_lint_rule("RNG-001")
class SeededRngRule(LintRule):
    """Unseeded, fixed-seed, or module-global RNG outside ``sim/rng.py``."""

    severity = SEVERITY_ERROR
    rationale = (
        "randomness must flow from scenario.seed via sim.rng.stream(...); "
        "fixed-seed fallbacks and module-global RNGs silently ignore the seed"
    )
    historical_bug = (
        "PR 2: random-waypoint mobility seeded from a fixed Random(0) fallback "
        "while scenario.seed was ignored -- every seed produced the same motion"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if module.relpath == STREAM_FACTORY_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = dotted_name(node.func, module.imports)
            if qualified is None:
                continue
            if qualified == "random.Random":
                positional = [a for a in node.args if not isinstance(a, ast.Starred)]
                if not node.args and not node.keywords:
                    yield self.report(
                        module,
                        node,
                        "unseeded random.Random(); thread a stream from "
                        "sim.rng.stream(...) so draws derive from scenario.seed",
                    )
                elif positional and isinstance(positional[0], ast.Constant):
                    yield self.report(
                        module,
                        node,
                        "random.Random with a constant seed ignores scenario.seed; "
                        "thread the simulation's seeded stream "
                        "(sim.rng.stream(...)) instead",
                    )
            elif qualified == "random.SystemRandom":
                yield self.report(
                    module,
                    node,
                    "random.SystemRandom draws OS entropy and is never "
                    "reproducible; use a seeded stream from sim.rng",
                )
            elif qualified.startswith("random."):
                func = qualified.split(".", 1)[1]
                if func in GLOBAL_RANDOM_FUNCS:
                    yield self.report(
                        module,
                        node,
                        f"module-level random.{func}() uses the process-global "
                        "RNG; draw from a named sim.rng.stream(...) instead",
                    )
            elif qualified.startswith("numpy.random."):
                yield self.report(
                    module,
                    node,
                    "numpy.random module-level state is process-global and "
                    "unseeded per run; pass a seeded generator derived from "
                    "the run's streams instead",
                )
