"""The :class:`Finding` record every lint rule emits.

A finding pins a rule violation to an exact ``(rule-id, file, line)``
triple; the test suite asserts findings by that triple, so locations are
part of each rule's contract, not presentation detail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Severity of a finding that must be fixed (or pragma'd) before merge.
SEVERITY_ERROR = "error"
#: Severity of an advisory finding; still fails the lint run (the tree must
#: be *clean*), but reporters render it distinctly.
SEVERITY_WARNING = "warning"

#: Every severity a rule may declare.
SEVERITIES: Tuple[str, ...] = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Package-relative posix path of the offending file (e.g.
            ``mobility/highway.py``); what reporters print and tests match.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node (``ast`` convention).
        rule_id: Id of the rule that fired (e.g. ``RNG-001``).
        message: One-sentence explanation with the suggested fix.
        severity: :data:`SEVERITY_ERROR` or :data:`SEVERITY_WARNING`.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = SEVERITY_ERROR

    @property
    def location(self) -> str:
        """``path:line:col`` as editors and CI annotations expect it."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-reporter representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }
