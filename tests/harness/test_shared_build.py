"""Tests for shared-memory mobility staging (repro.harness.shared_build)."""

import glob

import pytest

from repro.harness import shared_build
from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import RadioConfig, Scenario
from repro.harness.sweep import sweep_replications
from repro.sim.rng import RandomStreams

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def _scenario(**overrides):
    base = dict(
        name="shared-build-test",
        kind="highway",
        duration_s=4.0,
        seed=11,
        max_vehicles=10,
    )
    base.update(overrides)
    return Scenario(**base)


class TestMobilityBuildKey:
    def test_key_ignores_non_mobility_axes(self):
        base = _scenario()
        for variant in (
            _scenario(name="renamed"),
            _scenario(workload="safety-beacon"),
            _scenario(workload_params={"interval_s": 0.5}),
            _scenario(radio_stack="dsrc-highway-los"),
            _scenario(radio=RadioConfig(communication_range_m=100.0)),
            _scenario(spatial_backend="vectorized"),
            _scenario(bus_count=2),
            _scenario(default_flow_count=9),
        ):
            assert shared_build.mobility_build_key(variant) == (
                shared_build.mobility_build_key(base)
            )

    def test_key_keeps_mobility_axes(self):
        base = _scenario()
        for variant in (
            _scenario(seed=12),
            _scenario(max_vehicles=11),
            _scenario(duration_s=5.0),
            _scenario(kind="manhattan"),
            _scenario(mobility_step_s=0.25),
        ):
            assert shared_build.mobility_build_key(variant) != (
                shared_build.mobility_build_key(base)
            )


class TestArenaLifecycle:
    def test_stage_deduplicates_by_key(self):
        with shared_build.MobilityArena() as arena:
            a = arena.stage(_scenario())
            b = arena.stage(_scenario(workload="poisson", bus_count=3))
            c = arena.stage(_scenario(seed=99))
            assert a is b
            assert c.shm_name != a.shm_name

    def test_close_unlinks_segments(self):
        arena = shared_build.MobilityArena()
        ticket = arena.stage(_scenario())
        path = f"/dev/shm/{ticket.shm_name}"
        assert glob.glob(path)
        arena.close()
        shared_build.detach_all()
        assert not glob.glob(path)
        # close() is idempotent.
        arena.close()

    def test_load_prebuilt_round_trips_the_build(self):
        scenario = _scenario()
        with shared_build.MobilityArena() as arena:
            ticket = arena.stage(scenario)
            prebuilt = shared_build.load_prebuilt(ticket)
            try:
                from repro.harness.scenarios import build_mobility

                rng = RandomStreams(scenario.seed).stream("mobility")
                reference = build_mobility(scenario, rng)
                staged_states = list(prebuilt.built.mobility.vehicles)
                reference_states = list(reference.mobility.vehicles)
                assert len(staged_states) == len(reference_states)
                for staged, plain in zip(staged_states, reference_states):
                    assert staged.position.x == plain.position.x
                    assert staged.position.y == plain.position.y
                    assert staged.velocity.x == plain.velocity.x
                    assert staged.velocity.y == plain.velocity.y
                # The two rng handles advanced in lockstep during the build:
                # their next draws must agree bit for bit.
                assert prebuilt.mobility_rng.random() == rng.random()
                if prebuilt.columns is not None:
                    xs, ys, vxs, vys = prebuilt.columns
                    assert xs.shape == (len(staged_states),)
                    assert not xs.flags.writeable
                    assert list(xs) == [s.position.x for s in reference_states]
                    assert list(vys) == [s.velocity.y for s in reference_states]
                    # Drop the view references so the segment's buffer has
                    # no exports left when it is closed below.
                    del xs, ys, vxs, vys
            finally:
                del prebuilt
                shared_build.detach_all()

    def test_each_load_returns_a_fresh_model(self):
        with shared_build.MobilityArena() as arena:
            ticket = arena.stage(_scenario())
            first = shared_build.load_prebuilt(ticket)
            second = shared_build.load_prebuilt(ticket)
            try:
                assert first.built is not second.built
                assert first.mobility_rng is not second.mobility_rng
            finally:
                del first, second
                shared_build.detach_all()


class TestStagedRunEquality:
    def test_prebuilt_run_matches_plain_run(self):
        scenario = _scenario(duration_s=6.0)
        plain = ExperimentRunner().run(scenario, "Flooding").to_record()
        with shared_build.MobilityArena() as arena:
            ticket = arena.stage(scenario)
            try:
                staged = ExperimentRunner().run(
                    scenario,
                    "Flooding",
                    prebuilt=shared_build.load_prebuilt(ticket),
                ).to_record()
            finally:
                shared_build.detach_all()
        plain_dict = plain.to_dict()
        staged_dict = staged.to_dict()
        plain_dict.pop("wall_clock_s", None)
        staged_dict.pop("wall_clock_s", None)
        assert staged_dict == plain_dict

    @pytest.mark.parametrize("workers", [1, 2])
    def test_shared_sweep_matches_plain_sweep(self, workers):
        scenarios = [_scenario(duration_s=5.0)]
        seeds = [3, 4]
        plain = sweep_replications(scenarios, ["Greedy"], seeds, workers=1)
        shared = sweep_replications(
            scenarios,
            ["Greedy"],
            seeds,
            workers=workers,
            shared_mobility=True,
        )
        assert len(plain.records) == len(shared.records)
        for a, b in zip(plain.records, shared.records):
            da, db = a.to_dict(), b.to_dict()
            da.pop("wall_clock_s", None)
            db.pop("wall_clock_s", None)
            assert da == db
        # No leaked shared-memory segments once the sweep returns.
        assert not glob.glob("/dev/shm/psm_*")


class TestLoadColumns:
    def test_bulk_load_matches_scalar_updates(self):
        import numpy as np

        from repro.sim.position_store import PositionStore

        from repro.geometry import Vec2

        bulk = PositionStore()
        scalar = PositionStore()
        for store in (bulk, scalar):
            for node_id in (5, 9, 2):
                store.add(node_id, Vec2(0.0, 0.0))
        rows = bulk.rows_for([5, 9, 2])
        xs = np.array([10.0, 20.5, -3.25])
        ys = np.array([1.0, 2.0, 3.0])
        vxs = np.array([0.5, -0.5, 0.0])
        vys = np.array([0.0, 0.25, -1.0])
        before = bulk.version
        bulk.load_columns(rows, xs, ys, vxs, vys)
        assert bulk.version == before + 1
        for index, node_id in enumerate([5, 9, 2]):
            row = scalar.row_of(node_id)
            scalar.xs[row] = xs[index]
            scalar.ys[row] = ys[index]
            scalar.vxs[row] = vxs[index]
            scalar.vys[row] = vys[index]
        assert np.array_equal(bulk.xs[: len(rows)], scalar.xs[: len(rows)])
        assert np.array_equal(bulk.vys[: len(rows)], scalar.vys[: len(rows)])

    def test_velocity_columns_are_optional(self):
        import numpy as np

        from repro.sim.position_store import PositionStore

        from repro.geometry import Vec2

        store = PositionStore()
        store.add(1, Vec2(0.0, 0.0))
        store.add(2, Vec2(0.0, 0.0))
        rows = store.rows_for([1, 2])
        store.load_columns(rows, np.array([7.0, 8.0]), np.array([9.0, 10.0]))
        assert store.xs[store.row_of(2)] == 8.0
        assert store.vxs[store.row_of(1)] == 0.0


class TestRandomStreamsAdopt:
    def test_adopt_installs_before_first_use(self):
        import random

        donor = random.Random(424242)
        donor.random()  # pre-advanced stream
        probe = random.Random(424242)
        probe.random()
        streams = RandomStreams(1)
        adopted = streams.adopt("mobility", donor)
        assert streams.stream("mobility") is adopted
        assert streams.stream("mobility").random() == probe.random()

    def test_adopt_after_first_use_raises(self):
        streams = RandomStreams(1)
        streams.stream("mobility")
        import random

        with pytest.raises(ValueError, match="already created"):
            streams.adopt("mobility", random.Random(1))

    def test_adopt_leaves_other_streams_untouched(self):
        import random

        plain = RandomStreams(7)
        adopted = RandomStreams(7)
        adopted.adopt("mobility", random.Random(0))
        assert plain.stream("radio").random() == adopted.stream("radio").random()
