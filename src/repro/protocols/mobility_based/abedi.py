"""Abedi-style mobility-enhanced AODV (paper ref. [11]).

Abedi et al. extend AODV with three mobility parameters -- direction, position
and speed -- treating *direction* as the most important: next hops moving in
the same direction as the source/destination are preferred, then next hops
closer to the destination.  In this implementation the preference is encoded
in the accumulated path metric (direction match dominates, geographic
progress breaks ties), so the destination ends up selecting the path AODV
would have selected after Abedi's next-hop filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.direction import direction_similarity
from repro.core.link_lifetime import LinkLifetimePredictor
from repro.core.taxonomy import Category, register_protocol
from repro.geometry import Vec2
from repro.protocols.location import LocationService
from repro.protocols.mobility_based.lifetime_routing import (
    PathDiscoveryConfig,
    PathMetricDiscoveryProtocol,
)
from repro.sim.network import Network
from repro.sim.node import Node


@dataclass
class AbediConfig(PathDiscoveryConfig):
    """Abedi parameters.

    Attributes:
        communication_range_m: Range used for the secondary lifetime estimate.
        direction_weight: Weight of the direction-match component.
        position_weight: Weight of the progress-toward-destination component.
        speed_weight: Weight of the speed-similarity component.
    """

    communication_range_m: float = 250.0
    direction_weight: float = 0.6
    position_weight: float = 0.3
    speed_weight: float = 0.1
    #: The Abedi metric is a unitless score rather than a predicted lifetime,
    #: so routes are trusted for at most this long even with a perfect score.
    route_lifetime_cap_s: float = 8.0


@register_protocol(
    "Abedi",
    Category.MOBILITY,
    "AODV enhanced with direction (primary), position and speed for next-hop selection.",
    paper_reference="[11], Sec. IV.B",
)
class AbediProtocol(PathMetricDiscoveryProtocol):
    """Mobility-parameter-enhanced AODV."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[AbediConfig] = None,
        location_service: Optional[LocationService] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else AbediConfig())
        self.predictor = LinkLifetimePredictor(self.config.communication_range_m)
        self.location = (
            location_service if location_service is not None else LocationService(network)
        )

    def link_metric(
        self,
        previous_position: Vec2,
        previous_velocity: Vec2,
        own_position: Vec2,
        own_velocity: Vec2,
        headers: dict,
    ) -> float:
        """Score in [0, 1]: direction match first, then progress, then speed match."""
        cfg: AbediConfig = self.config  # type: ignore[assignment]
        direction_score = direction_similarity(previous_velocity, own_velocity)
        progress_score = 0.5
        destination_position = self.location.position_of(headers["target"])
        if destination_position is not None:
            before = previous_position.distance_to(destination_position)
            after = own_position.distance_to(destination_position)
            if before > 1e-9:
                progress_score = max(0.0, min(1.0, (before - after) / cfg.communication_range_m + 0.5))
        prev_speed = previous_velocity.norm()
        own_speed = own_velocity.norm()
        max_speed = max(prev_speed, own_speed, 1e-9)
        speed_score = 1.0 - abs(prev_speed - own_speed) / max_speed
        return (
            cfg.direction_weight * direction_score
            + cfg.position_weight * progress_score
            + cfg.speed_weight * speed_score
        )

    def path_score(self, metric: float, path: List[int]) -> float:
        """Higher bottleneck score wins; shorter paths break ties."""
        return metric - 1e-3 * len(path)

    def _route_lifetime_from_metric(self, metric: float) -> float:
        """The Abedi metric is a unitless score; map it onto a trusted lifetime."""
        # A perfect score (same direction, good progress) is trusted for the
        # configured cap; poor scores decay linearly down to one second.
        metric = max(0.0, min(1.0, metric))
        return 1.0 + metric * (self.config.route_lifetime_cap_s - 1.0)
