"""Vehicular mobility models.

The paper identifies mobility as "the major reason of the network
instability" (Sec. IV.A): relative speed, acceleration and travel direction
determine how long a communication link lives.  This package provides the
mobility substrate the routing experiments run on:

* :class:`~repro.mobility.vehicle.VehicleState` -- kinematic state shared by
  all models.
* :class:`~repro.mobility.highway.HighwayMobility` -- multi-lane,
  bidirectional highway driven by the IDM car-following model and MOBIL lane
  changes (the scenario of the paper's introduction and of PBR/Taleb).
* :class:`~repro.mobility.manhattan.ManhattanMobility` -- urban grid used by
  the infrastructure and geographic categories.
* :class:`~repro.mobility.random_waypoint.RandomWaypointMobility` -- the
  classic MANET baseline.
* :mod:`~repro.mobility.fcd_trace` -- SUMO-style floating-car-data trace
  writing, reading and replay (our substitution for real SUMO traces).
* :mod:`~repro.mobility.generator` -- traffic-density presets (sparse /
  normal / congested) used by the Table I benchmarks.
"""

from repro.mobility.fcd_trace import (
    FcdSample,
    TraceReplayMobility,
    read_fcd_trace,
    record_fcd_trace,
    write_fcd_trace,
)
from repro.mobility.generator import (
    TrafficDensity,
    make_city_scenario,
    make_highway_scenario,
    make_manhattan_scenario,
    make_random_waypoint_scenario,
)
from repro.mobility.graph_walk import GraphWalkConfig, GraphWalkMobility
from repro.mobility.highway import HighwayConfig, HighwayMobility
from repro.mobility.idm import IdmParameters, idm_acceleration
from repro.mobility.lane_change import MobilParameters, should_change_lane
from repro.mobility.manhattan import ManhattanConfig, ManhattanMobility
from repro.mobility.random_waypoint import RandomWaypointConfig, RandomWaypointMobility
from repro.mobility.vehicle import VehiclePositionProvider, VehicleState

__all__ = [
    "FcdSample",
    "TraceReplayMobility",
    "read_fcd_trace",
    "record_fcd_trace",
    "write_fcd_trace",
    "TrafficDensity",
    "make_city_scenario",
    "make_highway_scenario",
    "make_manhattan_scenario",
    "make_random_waypoint_scenario",
    "GraphWalkConfig",
    "GraphWalkMobility",
    "HighwayConfig",
    "HighwayMobility",
    "IdmParameters",
    "idm_acceleration",
    "MobilParameters",
    "should_change_lane",
    "ManhattanConfig",
    "ManhattanMobility",
    "RandomWaypointConfig",
    "RandomWaypointMobility",
    "VehiclePositionProvider",
    "VehicleState",
]
