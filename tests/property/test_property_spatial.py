"""Property tests: the grid backend is indistinguishable from the oracle.

Random topologies, random traffic, several seeds -- with the deterministic
unit-disk channel the uniform-grid index must reproduce the linear scan's
behaviour exactly: identical event traces, identical neighbourhoods.
"""

import random

import pytest

from repro.geometry import Vec2
from tests.helpers import build_static_network, run_data_flow
from tests.sim.test_medium_backends import normalized_records


def random_positions(seed, count=60, side=2000.0):
    rng = random.Random(seed)
    return [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(count)]


def flooded_run(seed, backend):
    """A flooding storm over a random topology, traced."""
    sim, network, stats, nodes = build_static_network(
        random_positions(seed),
        protocol="Flooding",
        seed=seed,
        trace=True,
        spatial_backend=backend,
    )
    network.start()
    run_data_flow(sim, stats, nodes[0], nodes[-1], packets=3, start=1.0, until=6.0)
    return network.trace, stats


class TestTraceEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_flooding_traces_identical_across_backends(self, seed):
        grid_trace, grid_stats = flooded_run(seed, "grid")
        linear_trace, linear_stats = flooded_run(seed, "linear")
        assert normalized_records(grid_trace) == normalized_records(linear_trace)
        assert grid_stats.summary() == linear_stats.summary()


class TestNeighborhoodEquivalence:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_nodes_within_matches_oracle(self, seed):
        rng = random.Random(seed)
        positions = random_positions(seed, count=80, side=3000.0)
        _, grid_net, _, _ = build_static_network(positions, spatial_backend="grid")
        _, linear_net, _, _ = build_static_network(positions, spatial_backend="linear")
        for _ in range(40):
            centre = Vec2(rng.uniform(-200, 3200), rng.uniform(-200, 3200))
            radius = rng.uniform(0.0, 900.0)
            grid_ids = [n.node_id for n in grid_net.nodes_within(centre, radius)]
            linear_ids = [n.node_id for n in linear_net.nodes_within(centre, radius)]
            assert grid_ids == linear_ids

    @pytest.mark.parametrize("seed", [21, 22])
    def test_nodes_within_tracks_mobility_refresh(self, seed):
        # Vehicles drift with constant velocity; after each mobility step the
        # refreshed grid must agree with the oracle on live neighbourhoods.
        rng = random.Random(seed)
        positions = random_positions(seed, count=40, side=1500.0)
        velocities = [
            (rng.uniform(-30, 30), rng.uniform(-30, 30)) for _ in positions
        ]

        def build(backend):
            sim, network, stats, nodes = build_static_network(
                positions,
                velocities=velocities,
                seed=seed,
                spatial_backend=backend,
            )
            network.mobility = type("NullMobility", (), {"step": lambda *a, **k: None})()
            network.start()
            return sim, network

        grid_sim, grid_net = build("grid")
        linear_sim, linear_net = build("linear")
        for until in (0.5, 1.0, 2.5, 5.0, 10.0):
            grid_sim.run(until=until)
            linear_sim.run(until=until)
            for node in list(grid_net.nodes.values())[:10]:
                centre = node.position
                grid_ids = [n.node_id for n in grid_net.nodes_within(centre, 250.0)]
                linear_ids = [
                    n.node_id for n in linear_net.nodes_within(centre, 250.0)
                ]
                assert grid_ids == linear_ids
