"""Time-bucketed throughput / PDR / collision series probe."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.monitors.base import Monitor
from repro.monitors.registry import register_monitor, register_monitor_preset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.packet import Packet
    from repro.sim.statistics import FlowStats


@register_monitor("timeseries")
class TimeSeriesMonitor(Monitor):
    """Per-bucket originated/delivered/dropped/collision/transmission counts.

    Accumulates counters per fixed-width time bucket and emits one
    ``bucket`` telemetry event as soon as an observed event's timestamp
    crosses the bucket boundary -- so a consumer tailing the JSONL sees
    the series build up mid-run.  Buckets with no observed events are
    skipped (the flush is lazy), which keeps the stream compact.

    Summary metrics: bucket count plus the peak per-bucket origination
    and collision rates (the congestion headline a mean hides).
    """

    def __init__(self, bucket_s: float = 1.0):
        super().__init__()
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be positive, got {bucket_s!r}")
        self.bucket_s = bucket_s
        self._bucket = 0
        self._counts: Dict[str, int] = dict(
            originated=0, delivered=0, duplicates=0, dropped=0, collisions=0, transmissions=0
        )
        self._buckets_emitted = 0
        self._peak_originated = 0
        self._peak_collisions = 0

    # ------------------------------------------------------------- internals
    def _roll(self, now: float) -> None:
        """Flush completed buckets if ``now`` has moved past the current one."""
        bucket = int(now // self.bucket_s)
        if bucket > self._bucket:
            self._flush()
            self._bucket = bucket

    def _flush(self) -> None:
        counts = self._counts
        if not any(counts.values()):
            return
        originated = counts["originated"]
        delivered = counts["delivered"]
        self._buckets_emitted += 1
        self._peak_originated = max(self._peak_originated, originated)
        self._peak_collisions = max(self._peak_collisions, counts["collisions"])
        start = self._bucket * self.bucket_s
        self.emit(
            "bucket",
            start,
            bucket=self._bucket,
            bucket_s=self.bucket_s,
            pdr=(delivered / originated) if originated else 0.0,
            **counts,
        )
        for key in counts:
            counts[key] = 0

    def _count(self, now: float, key: str, amount: int = 1) -> None:
        self._roll(now)
        self._counts[key] += amount

    # ------------------------------------------------------------- tap hooks
    def on_packet_originated(
        self, now: float, packet: "Packet", flow: "FlowStats", expected_receivers: int
    ) -> None:
        self._count(now, "originated")

    def on_packet_delivered(
        self,
        now: float,
        packet: "Packet",
        flow: "FlowStats",
        receiver: Optional[int],
        new: bool,
        delay: float,
    ) -> None:
        self._count(now, "delivered" if new else "duplicates")

    def on_packet_dropped(self, now: float, reason: str, count: int) -> None:
        self._count(now, "dropped", count)

    def on_collision(self, now: float, count: int) -> None:
        self._count(now, "collisions", count)

    def on_transmission(
        self, now: float, packet: "Packet", sender_id: int, position
    ) -> None:
        self._count(now, "transmissions")

    def finalize(self, now: float) -> Dict[str, float]:
        self._flush()
        return {
            "timeseries_buckets": float(self._buckets_emitted),
            "timeseries_peak_originated": float(self._peak_originated),
            "timeseries_peak_collisions": float(self._peak_collisions),
        }


register_monitor_preset(
    "timeseries-1s",
    TimeSeriesMonitor,
    "1-second throughput/PDR/collision buckets",
    kind="timeseries",
    bucket_s=1.0,
)
register_monitor_preset(
    "timeseries-100ms",
    TimeSeriesMonitor,
    "100 ms buckets for short, bursty runs",
    kind="timeseries",
    bucket_s=0.1,
)
