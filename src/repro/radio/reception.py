"""Reception models: decide whether a frame is successfully received."""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.radio.interference import (
    NO_SIGNAL_DBM,
    combine_dbm,
    dbm_to_mw,
    mw_to_dbm,
)

#: Thermal noise floor for a 10 MHz DSRC channel plus a typical noise figure.
DEFAULT_NOISE_FLOOR_DBM = -99.0

#: Typical receiver sensitivity for IEEE 802.11p at low data rates.
DEFAULT_SENSITIVITY_DBM = -92.0


class ReceptionDecision(Enum):
    """Outcome of a reception attempt, used for loss accounting."""

    RECEIVED = "received"
    WEAK_SIGNAL = "weak_signal"
    COLLISION = "collision"


#: Integer decision codes returned by :meth:`ReceptionModel.decide_batch`
#: (kept as plain ints so decision arrays stay dense int8).
BATCH_RECEIVED = 0
BATCH_WEAK_SIGNAL = 1
BATCH_COLLISION = 2

_DECISION_CODES = {
    ReceptionDecision.RECEIVED: BATCH_RECEIVED,
    ReceptionDecision.WEAK_SIGNAL: BATCH_WEAK_SIGNAL,
    ReceptionDecision.COLLISION: BATCH_COLLISION,
}


@dataclass
class ReceptionOutcome:
    """Decision plus the SINR that produced it (for tracing/analysis)."""

    decision: ReceptionDecision
    sinr_db: float

    @property
    def ok(self) -> bool:
        """True when the frame was received."""
        return self.decision is ReceptionDecision.RECEIVED


class ReceptionModel(ABC):
    """Base class for reception decisions."""

    def __init__(
        self,
        sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
        noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
    ) -> None:
        self.sensitivity_dbm = sensitivity_dbm
        self.noise_floor_dbm = noise_floor_dbm

    def sinr_db(self, rx_power_dbm: float, interference_dbm: float) -> float:
        """Signal-to-interference-plus-noise ratio in dB."""
        if rx_power_dbm <= NO_SIGNAL_DBM:
            return -math.inf
        noise_plus_interference = combine_dbm([self.noise_floor_dbm, interference_dbm])
        return rx_power_dbm - noise_plus_interference

    @abstractmethod
    def decide(
        self,
        rx_power_dbm: float,
        interference_dbm: float,
        rng: Optional[random.Random] = None,
    ) -> ReceptionOutcome:
        """Decide whether a frame with the given signal/interference is received."""

    def decide_batch(self, rx_power_dbm, interference_dbm, rng=None):
        """Decision codes (int8 array) for arrays of signal and interference.

        Returns ``BATCH_RECEIVED`` / ``BATCH_WEAK_SIGNAL`` / ``BATCH_COLLISION``
        per element.  The base implementation loops :meth:`decide` in element
        order, which is exact for every model and consumes the RNG exactly as
        a scalar loop over the same inputs would; deterministic subclasses
        override it with array expressions.
        """
        from repro.sim.position_store import require_numpy

        np = require_numpy("decide_batch")
        count = len(rx_power_dbm)
        codes = np.empty(count, dtype=np.int8)
        for i in range(count):
            outcome = self.decide(
                float(rx_power_dbm[i]), float(interference_dbm[i]), rng
            )
            codes[i] = _DECISION_CODES[outcome.decision]
        return codes


class SnrThresholdReception(ReceptionModel):
    """Deterministic SINR-threshold reception.

    A frame is received iff the signal exceeds the sensitivity *and* the SINR
    exceeds the capture threshold.  Losing to interference is reported as a
    collision, losing to weak signal as a range failure -- the statistics
    collector keeps those separate because the broadcast-storm analysis
    (Fig. 2 / Table I) needs the collision count.
    """

    def __init__(
        self,
        snr_threshold_db: float = 10.0,
        sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
        noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
    ) -> None:
        super().__init__(sensitivity_dbm, noise_floor_dbm)
        self.snr_threshold_db = snr_threshold_db
        #: (noise_floor_dbm, quiet-channel dBm, noise mW) -- the two derived
        #: constants :meth:`decide_batch` needs every call, recomputed only
        #: if the noise floor is reassigned.
        self._noise_cache = None
        #: interference dBm -> noise-plus-interference dBm, memoised across
        #: :meth:`decide_batch` calls (the distinct interference levels a
        #: disk channel produces repeat frame after frame).  Reset with the
        #: noise cache.
        self._npi_memo = {}

    def decide(
        self,
        rx_power_dbm: float,
        interference_dbm: float,
        rng: Optional[random.Random] = None,
    ) -> ReceptionOutcome:
        """Threshold test on sensitivity and SINR."""
        if rx_power_dbm < self.sensitivity_dbm:
            return ReceptionOutcome(ReceptionDecision.WEAK_SIGNAL, -math.inf)
        sinr = self.sinr_db(rx_power_dbm, interference_dbm)
        if sinr < self.snr_threshold_db:
            return ReceptionOutcome(ReceptionDecision.COLLISION, sinr)
        return ReceptionOutcome(ReceptionDecision.RECEIVED, sinr)

    def decide_batch(self, rx_power_dbm, interference_dbm, rng=None):
        """Vectorized threshold test, bit-identical to :meth:`decide`.

        The noise-plus-interference term depends only on the element's
        interference level: ``combine([noise, NO_SIGNAL])`` for a quiet
        channel, else the same noise-mW-plus-interference-mW round trip
        :func:`combine_dbm` computes.  Both are pure scalar chains, so they
        are evaluated once per *distinct* level and memoised across calls
        (a disk channel produces the same handful of levels frame after
        frame) -- applying the identical scalar chain to equal inputs is
        bit-identical to evaluating it per element, whatever the
        duplication pattern.  The SINR subtraction and both comparisons are
        exact in IEEE-754.
        """
        from repro.sim.position_store import require_numpy

        np = require_numpy("decide_batch")
        rx = np.asarray(rx_power_dbm, dtype=np.float64)
        interference = np.asarray(interference_dbm, dtype=np.float64)
        cache = self._noise_cache
        if cache is None or cache[0] != self.noise_floor_dbm:
            noise = self.noise_floor_dbm
            cache = (noise, combine_dbm([noise, NO_SIGNAL_DBM]), dbm_to_mw(noise))
            self._noise_cache = cache
            self._npi_memo = {}
        memo = self._npi_memo
        size = interference.size
        if size >= 16:
            ordered = np.sort(interference)
            distinct = np.empty(size, dtype=bool)
            distinct[0] = True
            np.not_equal(ordered[1:], ordered[:-1], out=distinct[1:])
            unique = ordered[distinct]
            npi_unique = np.empty(unique.size)
            for index, level in enumerate(unique.tolist()):
                value = memo.get(level)
                if value is None:
                    value = (
                        cache[1]
                        if level == NO_SIGNAL_DBM
                        else mw_to_dbm(cache[2] + dbm_to_mw(level))
                    )
                    memo[level] = value
                npi_unique[index] = value
            noise_plus_interference = npi_unique[
                np.searchsorted(unique, interference)
            ]
        else:
            values = []
            for level in interference.tolist():
                value = memo.get(level)
                if value is None:
                    value = (
                        cache[1]
                        if level == NO_SIGNAL_DBM
                        else mw_to_dbm(cache[2] + dbm_to_mw(level))
                    )
                    memo[level] = value
                values.append(value)
            noise_plus_interference = np.array(values, dtype=np.float64)
        sinr = rx - noise_plus_interference
        codes = np.zeros(len(rx), dtype=np.int8)  # BATCH_RECEIVED everywhere...
        codes[sinr < self.snr_threshold_db] = BATCH_COLLISION
        codes[rx < self.sensitivity_dbm] = BATCH_WEAK_SIGNAL
        return codes


class ProbabilisticReception(ReceptionModel):
    """SINR-dependent probabilistic reception.

    The packet-success probability follows a logistic curve centred on the
    SINR threshold; this is a smooth stand-in for the BER-derived curves of a
    real modem and gives the REAR protocol (Sec. VII.B) a well-defined
    "receipt probability" to estimate from signal strength.
    """

    def __init__(
        self,
        snr_threshold_db: float = 10.0,
        steepness_db: float = 2.0,
        sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
        noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
    ) -> None:
        super().__init__(sensitivity_dbm, noise_floor_dbm)
        if steepness_db <= 0:
            raise ValueError("steepness must be positive")
        self.snr_threshold_db = snr_threshold_db
        self.steepness_db = steepness_db

    def success_probability(self, rx_power_dbm: float, interference_dbm: float) -> float:
        """Packet success probability for the given signal and interference."""
        if rx_power_dbm < self.sensitivity_dbm:
            return 0.0
        sinr = self.sinr_db(rx_power_dbm, interference_dbm)
        return 1.0 / (1.0 + math.exp(-(sinr - self.snr_threshold_db) / self.steepness_db))

    def decide(
        self,
        rx_power_dbm: float,
        interference_dbm: float,
        rng: Optional[random.Random] = None,
    ) -> ReceptionOutcome:
        """Bernoulli draw against the logistic success probability."""
        if rx_power_dbm < self.sensitivity_dbm:
            return ReceptionOutcome(ReceptionDecision.WEAK_SIGNAL, -math.inf)
        sinr = self.sinr_db(rx_power_dbm, interference_dbm)
        probability = self.success_probability(rx_power_dbm, interference_dbm)
        draw = rng.random() if rng is not None else 0.5
        if draw <= probability:
            return ReceptionOutcome(ReceptionDecision.RECEIVED, sinr)
        # Attribute probabilistic losses to interference when interference is
        # the dominant impairment, otherwise to weak signal.
        interference_mw = dbm_to_mw(interference_dbm)
        noise_mw = dbm_to_mw(self.noise_floor_dbm)
        decision = (
            ReceptionDecision.COLLISION
            if interference_mw > noise_mw
            else ReceptionDecision.WEAK_SIGNAL
        )
        return ReceptionOutcome(decision, sinr)


__all__ = [
    "ReceptionDecision",
    "ReceptionOutcome",
    "ReceptionModel",
    "SnrThresholdReception",
    "ProbabilisticReception",
    "BATCH_RECEIVED",
    "BATCH_WEAK_SIGNAL",
    "BATCH_COLLISION",
    "DEFAULT_NOISE_FLOOR_DBM",
    "DEFAULT_SENSITIVITY_DBM",
    "mw_to_dbm",
]
