"""Vehicle-to-infrastructure request/response sessions."""

from __future__ import annotations

import random
import warnings
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.workloads.base import Workload
from repro.workloads.registry import register_workload, register_workload_preset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import BuiltScenario
    from repro.harness.scenario import Scenario
    from repro.sim.node import Node
    from repro.sim.packet import Packet


@register_workload("v2i")
class V2IWorkload(Workload):
    """Vehicle <-> nearest-RSU request/response sessions over the routing protocol.

    Models infotainment / information-pull traffic (Sec. V of the paper):
    each session is one vehicle periodically sending a request to whichever
    RSU is currently nearest (resolved per request through the network's
    grid-backed RSU index, so handover between RSUs is implicit), and the
    RSU answering each delivered request with a larger response routed back
    to the vehicle.  Both directions ride the scenario's routing protocol,
    so the workload exercises multi-hop unicast toward -- and away from --
    fixed infrastructure.

    Each session contributes two flows: ``2k-1`` (requests, vehicle ->
    RSU) and ``2k`` (responses, RSU -> vehicle); responses are only offered
    when the request arrives, so the request flow's delivery ratio bounds
    the response flow's sample size.

    Constructor keywords (scenario-template defaults when omitted):
    ``session_count``, ``requests_per_session``, ``request_interval_s``,
    ``start_time_s``, ``request_size_bytes`` (default 256),
    ``response_size_bytes`` (default 1024).
    """

    def __init__(
        self,
        session_count: Optional[int] = None,
        requests_per_session: Optional[int] = None,
        request_interval_s: Optional[float] = None,
        start_time_s: Optional[float] = None,
        request_size_bytes: int = 256,
        response_size_bytes: int = 1024,
    ) -> None:
        self.session_count = session_count
        self.requests_per_session = requests_per_session
        self.request_interval_s = request_interval_s
        self.start_time_s = start_time_s
        self.request_size_bytes = request_size_bytes
        self.response_size_bytes = response_size_bytes

    def build(
        self, scenario: "Scenario", built: "BuiltScenario", rng: random.Random
    ) -> List[Dict[str, float]]:
        flows: List[Dict[str, float]] = []
        vehicles = built.vehicle_nodes
        if not vehicles:
            return flows
        if not built.network.rsus:
            warnings.warn(
                "the 'v2i' workload needs road-side units (set rsu_spacing_m or "
                "pick an RSU-equipped preset); no traffic scheduled",
                RuntimeWarning,
                stacklevel=2,
            )
            return flows
        template = scenario.flow_template
        sessions = (
            self.session_count
            if self.session_count is not None
            else scenario.default_flow_count
        )
        requests = (
            self.requests_per_session
            if self.requests_per_session is not None
            else template.packet_count
        )
        interval = (
            self.request_interval_s
            if self.request_interval_s is not None
            else template.interval_s
        )
        start = self.start_time_s if self.start_time_s is not None else template.start_time_s
        if start > scenario.duration_s:
            warnings.warn(
                f"v2i start time ({start:.1f}s) is past the scenario duration "
                f"({scenario.duration_s:.1f}s); no sessions scheduled",
                RuntimeWarning,
                stacklevel=2,
            )
            return flows
        #: request flow_id -> (vehicle node id, response flow_id).
        session_table: Dict[int, Tuple[int, int]] = {}
        for rsu in built.network.rsus:
            rsu.app_delivery_handler = self._make_responder(built, rsu, session_table)
        sends = []
        for session in range(1, sessions + 1):
            vehicle = vehicles[rng.randrange(len(vehicles))]
            offset = rng.uniform(0.0, interval)
            request_flow = 2 * session - 1
            response_flow = 2 * session
            session_table[request_flow] = (vehicle.node_id, response_flow)
            flows.append(
                {
                    "flow_id": request_flow,
                    "source": vehicle.node_id,
                    "destination": -1,  # anycast: nearest RSU at each send
                }
            )
            for request_index in range(requests):
                send_time = start + offset + request_index * interval
                if send_time > scenario.duration_s:
                    break
                sends.append(
                    (
                        send_time,
                        self._send_request,
                        (built, vehicle, request_flow, request_index + 1),
                        0,
                    )
                )
        # One bulk queue insert per build, in the legacy scheduling order.
        built.sim.schedule_at_many(sends)
        return flows

    def _send_request(
        self, built: "BuiltScenario", vehicle: "Node", flow_id: int, seq: int
    ) -> None:
        """Address one request to whichever RSU is nearest right now."""
        rsu = built.network.nearest_rsu(vehicle.position)
        if rsu is None:  # pragma: no cover - guarded by the build-time check
            return
        built.stats.register_flow(flow_id, vehicle.node_id, rsu.node_id)
        self.send_unicast(
            built, vehicle, rsu, self.request_size_bytes, flow_id, seq
        )

    def _make_responder(
        self,
        built: "BuiltScenario",
        rsu: "Node",
        session_table: Dict[int, Tuple[int, int]],
    ):
        def respond(packet: "Packet") -> None:
            session = session_table.get(packet.flow_id)
            if session is None:
                return
            vehicle_id, response_flow = session
            if not built.network.has_node(vehicle_id):
                return
            vehicle = built.network.node(vehicle_id)
            built.stats.register_flow(response_flow, rsu.node_id, vehicle_id)
            # The response reuses the request's sequence number, pairing each
            # delivered answer with the question that caused it.
            self.send_unicast(
                built, rsu, vehicle, self.response_size_bytes, response_flow, packet.seq
            )

        return respond

    def extra_metrics(self, built: "BuiltScenario") -> Dict[str, float]:
        requests = [f for fid, f in built.stats.flows.items() if fid % 2 == 1]
        responses = [f for fid, f in built.stats.flows.items() if fid % 2 == 0]
        answered = sum(flow.delivered for flow in responses)
        asked = sum(flow.sent for flow in requests)
        return {
            "v2i_requests_sent": float(asked),
            "v2i_round_trip_ratio": answered / asked if asked else 0.0,
        }


register_workload_preset(
    "v2i-info-pull",
    lambda **overrides: V2IWorkload(**{"response_size_bytes": 2048, **overrides}),
    "periodic nearest-RSU information pull with 2 KiB responses",
    kind="v2i",
)
