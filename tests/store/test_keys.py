"""Content-addressed cell keys: canonicalisation, code digest, sharding."""

import dataclasses
from enum import Enum

import pytest

from repro.harness.scenario import highway_scenario
from repro.mobility.generator import TrafficDensity
from repro.store.keys import (
    canonical,
    canonical_json,
    cell_key,
    code_version,
    parse_shard,
    shard_of,
)


def _scenario(**overrides):
    return highway_scenario(
        TrafficDensity.SPARSE,
        name="keys",
        duration_s=6.0,
        max_vehicles=15,
        default_flow_count=2,
        **overrides,
    )


class TestCanonical:
    def test_dict_keys_are_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuples_and_lists_unify(self):
        assert canonical((1, 2)) == canonical([1, 2])

    def test_enums_collapse_to_values(self):
        class Kind(Enum):
            A = "a"

        assert canonical(Kind.A) == "a"

    def test_dataclasses_are_tagged_by_class_name(self):
        @dataclasses.dataclass
        class P:
            x: int = 1

        @dataclasses.dataclass
        class Q:
            x: int = 1

        assert canonical(P())["__type__"] == "P"
        assert canonical_json(P()) != canonical_json(Q())

    def test_scenario_round_trips_deterministically(self):
        a, b = _scenario(), _scenario()
        assert canonical_json(a) == canonical_json(b)


class TestCellKey:
    def test_stable_across_calls(self):
        code = "deadbeefdeadbeef"
        assert cell_key(_scenario(), "Greedy", None, code) == cell_key(
            _scenario(), "Greedy", None, code
        )

    def test_every_input_changes_the_key(self):
        code = "deadbeefdeadbeef"
        base = cell_key(_scenario(), "Greedy", None, code)
        assert cell_key(_scenario(seed=99), "Greedy", None, code) != base
        assert cell_key(_scenario(), "Flooding", None, code) != base
        assert cell_key(_scenario(), "Greedy", None, "0000000000000000") != base
        assert cell_key(_scenario(workload="poisson"), "Greedy", None, code) != base

    def test_key_is_hex_sha256(self):
        key = cell_key(_scenario(), "Greedy", None, "deadbeefdeadbeef")
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestCodeVersion:
    def test_digest_tracks_file_content(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        first = code_version(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert code_version(tmp_path) != first

    def test_digest_tracks_file_set(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        first = code_version(tmp_path)
        (tmp_path / "b.py").write_text("")
        assert code_version(tmp_path) != first

    def test_default_digest_is_cached_and_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestSharding:
    def test_partition_is_total_and_disjoint(self):
        keys = [cell_key(_scenario(seed=s), "Greedy", None, "cafe") for s in range(20)]
        shards = [shard_of(key, 3) for key in keys]
        assert set(shards) <= {0, 1, 2}
        # Every key lands in exactly one shard by construction; the split
        # should not be fully degenerate over 20 distinct keys.
        assert len(set(shards)) > 1

    def test_single_shard_takes_everything(self):
        assert shard_of("ff" * 32, 1) == 0

    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            shard_of("ff" * 32, 0)

    def test_parse_shard(self):
        assert parse_shard("1/2") == (1, 2)
        assert parse_shard("3/3") == (3, 3)

    @pytest.mark.parametrize("spec", ["", "2", "0/2", "3/2", "a/b", "1/2/3", "-1/2"])
    def test_parse_shard_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_shard(spec)
