"""The Intelligent Driver Model (IDM) car-following law.

IDM produces realistic headway and relative-speed distributions -- the inputs
the paper's link-lifetime model (Sec. IV.A.1) depends on -- from a handful of
interpretable parameters.  It is the standard microscopic model used by SUMO
and most vehicular-networking studies, which is why we use it as the
substitute for SUMO traces (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class IdmParameters:
    """IDM parameters.

    Attributes:
        max_acceleration: Maximum acceleration ``a`` (m/s^2).
        comfortable_deceleration: Comfortable braking ``b`` (m/s^2).
        time_headway: Desired time headway ``T`` (s).
        minimum_gap: Jam distance ``s0`` (m).
        delta: Free-flow acceleration exponent.
    """

    max_acceleration: float = 1.4
    comfortable_deceleration: float = 2.0
    time_headway: float = 1.5
    minimum_gap: float = 2.0
    delta: float = 4.0


def desired_gap(
    speed: float, approach_rate: float, params: IdmParameters
) -> float:
    """IDM desired (dynamic) gap ``s*`` for the given speed and approach rate."""
    dynamic_term = (speed * approach_rate) / (
        2.0 * math.sqrt(params.max_acceleration * params.comfortable_deceleration)
    )
    return params.minimum_gap + max(0.0, speed * params.time_headway + dynamic_term)


def idm_acceleration(
    speed: float,
    desired_speed: float,
    gap: float,
    approach_rate: float,
    params: IdmParameters = IdmParameters(),
) -> float:
    """IDM acceleration for a vehicle.

    Args:
        speed: Current speed of the follower (m/s).
        desired_speed: Free-flow target speed (m/s).
        gap: Bumper-to-bumper gap to the leader (m); ``math.inf`` when the
            road ahead is free.
        approach_rate: Speed difference ``v_follower - v_leader`` (m/s).
        params: Model parameters.

    Returns:
        Longitudinal acceleration in m/s^2 (negative when braking).
    """
    if desired_speed <= 0:
        return -params.comfortable_deceleration
    free_flow = 1.0 - (max(0.0, speed) / desired_speed) ** params.delta
    if math.isinf(gap) or gap <= 0 and speed <= 0:
        interaction = 0.0
    else:
        effective_gap = max(gap, 0.1)
        interaction = (desired_gap(speed, approach_rate, params) / effective_gap) ** 2
    acceleration = params.max_acceleration * (free_flow - interaction)
    # Physical braking limit: roughly 2.5x the comfortable deceleration.
    return max(-2.5 * params.comfortable_deceleration, acceleration)


def free_flow_acceleration(
    speed: float, desired_speed: float, params: IdmParameters = IdmParameters()
) -> float:
    """IDM acceleration with no leader ahead."""
    return idm_acceleration(speed, desired_speed, math.inf, 0.0, params)
