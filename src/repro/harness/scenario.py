"""Scenario descriptions.

A :class:`Scenario` is a declarative description of one simulation setting:
the mobility model and traffic density, the radio, the infrastructure, the
application traffic and the run length.  The runner turns it into a live
:class:`~repro.sim.network.Network`.

The mobility substrate is named by the free-form ``kind`` string and resolved
through the scenario registry (:mod:`repro.harness.scenarios`), the same way
protocols are resolved through :mod:`repro.protocols.registry`.  The built-in
kinds are ``"highway"``, ``"manhattan"``, ``"random_waypoint"``, ``"city"``
and ``"trace"``; plug-ins register more without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.mobility.generator import TrafficDensity
from repro.mobility.highway import HighwayConfig
from repro.mobility.manhattan import ManhattanConfig
from repro.mobility.random_waypoint import RandomWaypointConfig
from repro.roadnet.city import CityConfig

#: Number of random unicast flows a scenario offers when neither explicit
#: ``flows`` nor a flow count is given.  The CLI's bare-kind fallback and the
#: :class:`Scenario` default both derive from this constant, so command-line
#: and Python runs of the same scenario agree (they used to hardcode 5 and 6
#: respectively).
DEFAULT_FLOW_COUNT: int = 5


@dataclass
class RadioConfig:
    """Radio configuration of a scenario.

    .. deprecated::
        ``RadioConfig`` is the legacy shim of the radio registry
        (:mod:`repro.radio.registry`): its fields are mapped onto the
        matching registered radio kind (``unit_disk`` / ``two_ray`` /
        ``shadowing``), and an untouched default resolves to the
        ``ideal-disk-250m`` preset.  New scenarios name a complete stack via
        ``Scenario.radio_stack`` / ``Scenario.radio_params`` instead, which
        also exposes reception, interference and MAC choices.

    Attributes:
        propagation: ``"unit_disk"``, ``"two_ray"`` or ``"shadowing"``.
        communication_range_m: Range of the unit-disk model (and the range
            assumption handed to protocols' prediction models).
        tx_power_dbm: Transmit power for the physical models.
        shadowing_sigma_db: Shadowing spread for the ``"shadowing"`` model.
        path_loss_exponent: Path-loss exponent for the ``"shadowing"`` model.
    """

    propagation: str = "unit_disk"
    communication_range_m: float = 250.0
    tx_power_dbm: float = 20.0
    shadowing_sigma_db: float = 4.0
    path_loss_exponent: float = 2.8


@dataclass
class FlowSpec:
    """One constant-bit-rate application flow.

    .. deprecated::
        ``FlowSpec`` lists (``Scenario.flows`` / ``Scenario.flow_template`` /
        ``Scenario.default_flow_count``) are the legacy shim of the workload
        registry: they only describe ``cbr`` traffic and are consumed by
        :class:`repro.workloads.cbr.CbrWorkload` (the default workload).
        New traffic shapes use ``Scenario.workload`` /
        ``Scenario.workload_params`` instead -- see :mod:`repro.workloads`.

    Attributes:
        source_index / destination_index: Indices into the scenario's vehicle
            list (``None`` lets the runner pick distinct random vehicles).
        start_time_s: When the first packet is sent.
        interval_s: Inter-packet interval.
        packet_count: Number of packets in the flow.
        size_bytes: Payload size.
    """

    source_index: Optional[int] = None
    destination_index: Optional[int] = None
    start_time_s: float = 5.0
    interval_s: float = 1.0
    packet_count: int = 20
    size_bytes: int = 512


@dataclass
class Scenario:
    """A complete simulation setting.

    Attributes:
        name: Label used in reports.
        kind: Mobility substrate, resolved by name through the scenario
            registry (``"highway"``, ``"manhattan"``, ``"random_waypoint"``,
            ``"city"``, ``"trace"``, or any registered plug-in kind).
        density: Traffic density regime (sparse / normal / congested).
        duration_s: Simulated time after which flows stop being evaluated.
        drain_s: Extra simulated time to let in-flight packets arrive.
        seed: Master random seed (mobility, radio, MAC and traffic all derive
            their streams from it).
        max_vehicles: Cap on the vehicle population (keeps congested runs
            tractable); ``None`` means no cap.
        highway / manhattan / city / waypoint: Mobility-model configurations
            (only the one matching ``kind`` is consulted).
        trace_path: FCD trace file driving a ``"trace"`` scenario.
        radio_stack: Radio/channel profile, resolved by name through the
            radio registry (:mod:`repro.radio.registry`): a kind such as
            ``"unit_disk"``, ``"shadowing"`` or ``"nakagami"``, or a preset
            such as ``"dsrc-urban-nlos"``.  ``None`` (the default) falls
            back to the :class:`RadioConfig` shim -- an untouched ``radio``
            resolves to the ``ideal-disk-250m`` preset.
        radio_params: Keyword parameters handed to the radio builder (on
            top of a preset's own parameters), e.g. ``{"m": 1.0}`` for
            Rayleigh-depth ``nakagami`` fading.
        radio: Deprecated radio shim -- legacy field-level radio settings,
            mapped onto the registry by the runner; only consulted when
            ``radio_stack`` is unset.
        rsu_spacing_m: Distance between road-side units (``None`` = no RSUs).
        bus_count: Number of vehicles designated as buses (Bus-Ferry).
        workload: Application-traffic model, resolved by name through the
            workload registry (:mod:`repro.workloads`): a kind such as
            ``"cbr"`` (default), ``"poisson"``, ``"safety-beacon"``,
            ``"event-burst"``, ``"v2i"``, or a preset such as
            ``"safety-beacon-10hz"``.
        workload_params: Keyword parameters handed to the workload's
            constructor (on top of a preset's own parameters).
        flows: Deprecated ``cbr`` shim -- explicit CBR flows; when empty,
            ``default_flow_count`` random flows are generated.  Only
            consulted by the ``cbr`` workload.
        default_flow_count: Deprecated ``cbr`` shim -- number of random
            flows when ``flows`` is empty (:data:`DEFAULT_FLOW_COUNT`).
        flow_template: Deprecated ``cbr`` shim -- template for generated
            flows (other workloads borrow its timing defaults).
        mobility_step_s: Mobility update interval.
        spatial_backend: Neighbour-lookup backend of the wireless medium:
            ``"grid"`` (uniform-grid index, the default), ``"linear"``
            (exhaustive oracle scan, exact but O(N) per frame) or
            ``"vectorized"`` (grid index plus a struct-of-arrays position
            store evaluating per-frame physics as numpy array expressions;
            byte-identical traces to the other two, requires numpy).
        monitors: Observability probes attached to the run, resolved by
            name through the monitor registry (:mod:`repro.monitors`):
            kinds such as ``"latency-dist"``, ``"timeseries"``,
            ``"heatmap"``, ``"invariant"`` or presets such as
            ``"invariant-strict"``.  Empty (the default) leaves the sim
            core's event tap uninstalled, so unmonitored runs stay
            byte-identical and pay only a truthy check per event.
        monitor_params: Per-monitor keyword overrides, keyed by the name
            used in ``monitors`` (on top of a preset's own parameters).
    """

    name: str = "scenario"
    kind: str = "highway"
    density: TrafficDensity = TrafficDensity.NORMAL
    duration_s: float = 40.0
    drain_s: float = 3.0
    seed: int = 1
    max_vehicles: Optional[int] = 200
    highway: HighwayConfig = field(default_factory=HighwayConfig)
    manhattan: ManhattanConfig = field(default_factory=ManhattanConfig)
    city: CityConfig = field(default_factory=CityConfig)
    waypoint: RandomWaypointConfig = field(default_factory=RandomWaypointConfig)
    trace_path: Optional[str] = None
    radio_stack: Optional[str] = None
    radio_params: Dict[str, object] = field(default_factory=dict)
    radio: RadioConfig = field(default_factory=RadioConfig)
    rsu_spacing_m: Optional[float] = None
    bus_count: int = 0
    workload: str = "cbr"
    workload_params: Dict[str, object] = field(default_factory=dict)
    flows: List[FlowSpec] = field(default_factory=list)
    default_flow_count: int = DEFAULT_FLOW_COUNT
    flow_template: FlowSpec = field(default_factory=FlowSpec)
    mobility_step_s: float = 0.5
    spatial_backend: str = "grid"
    monitors: Tuple[str, ...] = ()
    monitor_params: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Tolerate enum-like kinds (e.g. code written against the retired
        # ``ScenarioKind`` enum): the registry is keyed by plain strings.
        if isinstance(self.kind, Enum):
            self.kind = str(self.kind.value)

    def with_overrides(self, **overrides) -> "Scenario":
        """A copy of this scenario with the given attributes replaced."""
        from dataclasses import replace

        return replace(self, **overrides)

    @classmethod
    def from_name(cls, spec: str, **overrides) -> "Scenario":
        """Resolve a named preset (or ``trace:<path>``) into a scenario.

        See :func:`repro.harness.scenarios.scenario_from_name` for the
        resolution rules; ``overrides`` are applied on top of the preset.
        """
        from repro.harness.scenarios import scenario_from_name

        return scenario_from_name(spec, **overrides)


def highway_scenario(
    density: TrafficDensity = TrafficDensity.NORMAL,
    name: Optional[str] = None,
    **overrides,
) -> Scenario:
    """Convenience constructor for a highway scenario at a given density."""
    scenario = Scenario(
        name=name if name is not None else f"highway-{density.value}",
        kind="highway",
        density=density,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


def manhattan_scenario(
    density: TrafficDensity = TrafficDensity.NORMAL,
    name: Optional[str] = None,
    **overrides,
) -> Scenario:
    """Convenience constructor for an urban-grid scenario at a given density."""
    scenario = Scenario(
        name=name if name is not None else f"manhattan-{density.value}",
        kind="manhattan",
        density=density,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


def city_scenario(
    density: TrafficDensity = TrafficDensity.NORMAL,
    name: Optional[str] = None,
    **overrides,
) -> Scenario:
    """Convenience constructor for a synthetic arterial+grid city scenario."""
    scenario = Scenario(
        name=name if name is not None else f"city-{density.value}",
        kind="city",
        density=density,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


def trace_scenario(
    trace_path: str,
    name: Optional[str] = None,
    **overrides,
) -> Scenario:
    """Convenience constructor for a trace-replay scenario.

    ``trace_path`` points at a CSV floating-car-data trace as written by
    :func:`repro.mobility.fcd_trace.write_fcd_trace` (or converted from a
    SUMO FCD export); the replay drives vehicle positions directly, so
    ``density`` and ``max_vehicles`` are ignored.
    """
    scenario = Scenario(
        name=name if name is not None else f"trace:{trace_path}",
        kind="trace",
        trace_path=trace_path,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario
