"""Tests for the DisjLi multipath protocol and ROVER zone-confined discovery."""

import pytest

from repro.protocols.connectivity import DisjLiConfig, DisjLiProtocol
from repro.protocols.geographic import RoverConfig, RoverProtocol
from tests.helpers import build_static_network, line_positions, run_data_flow

SPACING = 200.0


class TestDisjointPathSelection:
    def test_disjoint_paths_share_no_intermediates(self):
        candidates = [
            [0, 1, 2, 9],
            [0, 3, 4, 9],
            [0, 1, 5, 9],  # shares node 1 with the first path
            [0, 6, 9],
        ]
        chosen = DisjLiProtocol.select_disjoint_paths(candidates, max_paths=3)
        used = []
        for path in chosen:
            intermediates = set(path[1:-1])
            for other in used:
                assert not intermediates & other
            used.append(intermediates)
        assert [0, 6, 9] in chosen  # the shortest candidate is always kept

    def test_max_paths_respected(self):
        candidates = [[0, i, 9] for i in range(1, 8)]
        chosen = DisjLiProtocol.select_disjoint_paths(candidates, max_paths=2)
        assert len(chosen) == 2

    def test_overlapping_candidates_yield_single_path(self):
        candidates = [[0, 1, 2, 9], [0, 1, 3, 9], [0, 2, 1, 9]]
        chosen = DisjLiProtocol.select_disjoint_paths(candidates, max_paths=3)
        assert len(chosen) == 1


class TestDisjLiProtocol:
    def test_delivery_on_a_line(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(5, SPACING), protocol="DisjLi"
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_multiple_disjoint_paths_discovered_on_a_ladder(self):
        # Two parallel chains between source and destination:
        #   0 - 1 - 2 - 5   and   0 - 3 - 4 - 5
        positions = [
            (0, 0),
            (200, 80), (400, 80),     # upper chain
            (200, -80), (400, -80),   # lower chain
            (600, 0),
        ]
        sim, network, stats, nodes = build_static_network(positions, protocol="DisjLi")
        network.start()
        # Trigger discovery before any data is pending: a pending packet is
        # sent the instant the first RREP arrives, and that data frame can
        # collide with the second chain's RREP still working its way back.
        sim.schedule_at(2.0, nodes[0].protocol._ensure_discovery, nodes[5].node_id)
        run_data_flow(sim, stats, nodes[0], nodes[5], packets=4, start=4.0, until=20.0)
        assert stats.delivery_ratio >= 0.75
        source_protocol: DisjLiProtocol = nodes[0].protocol
        path_set = source_protocol._path_sets.get(nodes[5].node_id)
        assert path_set is not None
        assert len(path_set["paths"]) >= 2

    def test_single_discovery_serves_many_packets(self):
        config = DisjLiConfig()
        sim, network, stats, nodes = build_static_network(
            line_positions(4, SPACING), protocol="DisjLi", protocol_config=config
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=10, start=2.0, until=30.0)
        assert stats.route_discoveries_started <= 2
        assert stats.delivery_ratio >= 0.9


class TestRover:
    def test_delivery_on_a_line(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(5, SPACING), protocol="ROVER"
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_zone_confines_the_discovery_flood(self):
        # Corridor nodes between source and destination plus off-corridor
        # nodes 200 m to the side: within radio range (so an unrestricted
        # AODV flood recruits them) but outside ROVER's 120 m corridor.
        positions = line_positions(5, SPACING) + [
            (200.0, 200.0),
            (400.0, 200.0),
            (600.0, 200.0),
        ]

        def rreq_count(protocol, config=None):
            sim, network, stats, nodes = build_static_network(
                positions, protocol=protocol, protocol_config=config
            )
            network.start()
            run_data_flow(sim, stats, nodes[0], nodes[4], packets=3, start=2.0, until=15.0)
            return stats.control_by_type.get("RREQ", 0), stats.delivery_ratio

        rover_rreqs, rover_pdr = rreq_count("ROVER", RoverConfig(zone_width_m=120.0))
        aodv_rreqs, aodv_pdr = rreq_count("AODV")
        assert rover_pdr >= 0.6
        assert rover_rreqs < aodv_rreqs

    def test_off_zone_node_does_not_forward_requests(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (200, 0), (400, 0), (200, 2000)],
            protocol="ROVER",
            protocol_config=RoverConfig(zone_width_m=200.0),
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[2], packets=2, start=2.0, until=10.0)
        # The far-away node (index 3) is outside every corridor and outside
        # radio range anyway; the in-corridor relay keeps working.
        assert stats.delivery_ratio >= 0.5
