"""BITX-001: dBm<->mW conversions must stay on the libm bit-exactness path.

The vectorized spatial backend's contract is *byte-identical* traces with
the scalar backends.  ``np.power`` and ``np.log10`` take SIMD paths whose
last ulp differs from libm ``pow`` / ``log10`` on a few percent of inputs
(documented in :mod:`repro.radio.interference` and
:mod:`repro.radio.propagation`), which is exactly enough to flip a
marginal SINR decision and fork a trace.  The sanctioned spellings are
``np.float_power`` (per-element libm ``pow``) and element-wise
``math.log10`` loops; scalar conversions route through
``repro.radio.interference.dbm_to_mw`` / ``mw_to_dbm``, the one module
allowed to spell the ``10 ** (x / 10)`` conversion inline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutils import dotted_name
from repro.devtools.base import LintRule, ParsedModule
from repro.devtools.findings import SEVERITY_ERROR, Finding
from repro.devtools.registry import register_lint_rule

#: The module that owns the canonical scalar dBm<->mW helpers.
CONVERSION_HELPER_MODULE = "radio/interference.py"

#: numpy functions whose SIMD last-ulp drift breaks trace byte-equality.
_SIMD_DRIFT_FUNCS = frozenset({"numpy.power", "numpy.log10"})


def _is_ten(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (10, 10.0)


@register_lint_rule("BITX-001")
class BitExactConversionRule(LintRule):
    """``np.power`` / ``np.log10`` / inline ``10 ** (x / 10)`` conversions."""

    severity = SEVERITY_ERROR
    rationale = (
        "np.power/np.log10 SIMD paths drift a last ulp from libm; use "
        "np.float_power / elementwise math.log10 and the dbm_to_mw helpers "
        "so vectorized and scalar traces stay byte-identical"
    )
    historical_bug = (
        "PR 6: np.power in the vectorized interference fold flipped marginal "
        "SINR decisions vs the scalar libm path, forking otherwise identical "
        "traces"
    )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                qualified = dotted_name(node.func, module.imports)
                if qualified in _SIMD_DRIFT_FUNCS:
                    func = qualified.split(".", 1)[1]
                    replacement = (
                        "np.float_power"
                        if func == "power"
                        else "an elementwise math.log10 loop "
                        "(see radio/propagation._log10_elementwise)"
                    )
                    yield self.report(
                        module,
                        node,
                        f"numpy.{func} takes a SIMD path whose last ulp "
                        f"differs from libm, breaking trace byte-equality "
                        f"between spatial backends; use {replacement}",
                    )
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Pow)
                and _is_ten(node.left)
                and module.relpath != CONVERSION_HELPER_MODULE
            ):
                exponent = node.right
                if (
                    isinstance(exponent, ast.BinOp)
                    and isinstance(exponent.op, ast.Div)
                    and _is_ten(exponent.right)
                ):
                    yield self.report(
                        module,
                        node,
                        "inline 10 ** (x / 10) dBm->mW conversion bypasses the "
                        "documented libm policy; call "
                        "repro.radio.interference.dbm_to_mw (or the "
                        "np.float_power batch helpers) instead",
                    )
