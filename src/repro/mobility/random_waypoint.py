"""Random-waypoint mobility.

The classic MANET mobility model.  It is included as the baseline the paper
contrasts VANET mobility against (Sec. IV.A: conventional MANET nodes move
slowly and without road constraints), and it is useful for testing protocols
in an unconstrained setting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geometry import Vec2
from repro.mobility.vehicle import VehicleState


@dataclass
class RandomWaypointConfig:
    """Area and speed parameters.

    Attributes:
        width_m: Width of the rectangular area.
        height_m: Height of the rectangular area.
        min_speed_mps: Minimum speed drawn for each leg.
        max_speed_mps: Maximum speed drawn for each leg.
        pause_time_s: Pause duration at each waypoint.
    """

    width_m: float = 1000.0
    height_m: float = 1000.0
    min_speed_mps: float = 1.0
    max_speed_mps: float = 20.0
    pause_time_s: float = 0.0


class RandomWaypointMobility:
    """Nodes move between uniformly random waypoints at uniformly random speeds."""

    def __init__(
        self,
        config: Optional[RandomWaypointConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config if config is not None else RandomWaypointConfig()
        if rng is None:
            # A fixed-seed fallback here once made every scenario.seed
            # produce identical motion (fixed in PR 2); the stream is now
            # mandatory so the seed can never be silently ignored again.
            raise ValueError(
                "RandomWaypointMobility needs the simulator's seeded "
                "'mobility' stream (rng=sim.rng.stream('mobility'))"
            )
        self._rng = rng
        self.vehicles: List[VehicleState] = []
        self._targets: Dict[int, Vec2] = {}
        self._pause_until: Dict[int, float] = {}
        self._next_vid = 0
        self.time = 0.0
        self._store = None
        self._node_id_of: Dict[int, int] = {}

    def add_vehicle(self, position: Optional[Vec2] = None) -> VehicleState:
        """Add a node at ``position`` (random position by default)."""
        if position is None:
            position = self._random_point()
        vehicle = VehicleState(vid=self._next_vid, position=position, lane=-1)
        self._next_vid += 1
        self.vehicles.append(vehicle)
        self._assign_new_leg(vehicle)
        return vehicle

    def bind_store(self, store, node_ids: Dict[int, int]) -> None:
        """Switch to array stepping through a position store.

        ``node_ids`` maps every vehicle's vid to its registered node id.
        From the next :meth:`step` on, positions advance as whole-array
        expressions written through ``store`` (whose rows become *managed*,
        so the medium stops re-pulling them on refresh); the scalar
        :class:`VehicleState` fields are still written back each step because
        protocols and the waypoint bookkeeping read them.
        """
        self._store = store
        self._node_id_of = dict(node_ids)
        for vehicle in self.vehicles:
            store.set_managed(self._node_id_of[vehicle.vid])

    def step(self, dt: float, now: float = 0.0) -> None:
        """Advance every node by ``dt`` seconds."""
        if self._store is not None:
            self._step_array(dt, now)
            return
        self.time = now
        for vehicle in self.vehicles:
            if self._pause_until.get(vehicle.vid, 0.0) > now:
                vehicle.speed = 0.0
                continue
            target = self._targets[vehicle.vid]
            to_target = target - vehicle.position
            distance = to_target.norm()
            travel = vehicle.speed * dt
            if travel >= distance:
                vehicle.position = target
                if self.config.pause_time_s > 0:
                    self._pause_until[vehicle.vid] = now + self.config.pause_time_s
                self._assign_new_leg(vehicle)
            else:
                direction = to_target.normalized()
                vehicle.position = vehicle.position + direction * travel
                vehicle.heading = direction.angle()

    def _step_array(self, dt: float, now: float) -> None:
        """Whole-array twin of the scalar :meth:`step` body.

        Distances, travel and the leg advance are array expressions over the
        store rows (exact IEEE-754 ops, so bit-identical to the scalar
        arithmetic); arrivals are then handled per vehicle in list order so
        waypoint/speed draws consume the mobility RNG exactly as the scalar
        loop would.
        """
        self.time = now
        vehicles = self.vehicles
        if not vehicles:
            return
        store = self._store
        import numpy as np

        node_id_of = self._node_id_of
        rows = store.rows_for(node_id_of[v.vid] for v in vehicles)
        xs = store.xs[rows]
        ys = store.ys[rows]
        targets = self._targets
        tx = np.fromiter(
            (targets[v.vid].x for v in vehicles), np.float64, count=len(vehicles)
        )
        ty = np.fromiter(
            (targets[v.vid].y for v in vehicles), np.float64, count=len(vehicles)
        )
        speeds = np.fromiter(
            (v.speed for v in vehicles), np.float64, count=len(vehicles)
        )
        active = np.ones(len(vehicles), dtype=bool)
        if self.config.pause_time_s > 0:
            pause_until = self._pause_until
            for i, vehicle in enumerate(vehicles):
                if pause_until.get(vehicle.vid, 0.0) > now:
                    vehicle.speed = 0.0
                    active[i] = False
        dx = tx - xs
        dy = ty - ys
        distances = np.sqrt(dx * dx + dy * dy)
        travel = speeds * dt
        arriving = active & (travel >= distances)
        moving = active & ~arriving
        move_idx = np.nonzero(moving)[0]
        if len(move_idx):
            mdx = dx[move_idx]
            mdy = dy[move_idx]
            mdist = distances[move_idx]
            # Mirror Vec2.normalized(): directions below the degeneracy
            # threshold collapse to the zero vector.
            tiny = mdist < 1e-12
            safe = np.where(tiny, 1.0, mdist)
            ux = np.where(tiny, 0.0, mdx / safe)
            uy = np.where(tiny, 0.0, mdy / safe)
            mtravel = travel[move_idx]
            nx = xs[move_idx] + ux * mtravel
            ny = ys[move_idx] + uy * mtravel
            store.xs[rows[move_idx]] = nx
            store.ys[rows[move_idx]] = ny
            for k, i in enumerate(move_idx):
                vehicle = vehicles[i]
                vehicle.position = Vec2(float(nx[k]), float(ny[k]))
                vehicle.heading = math.atan2(float(uy[k]), float(ux[k]))
        for i in np.nonzero(arriving)[0]:
            vehicle = vehicles[i]
            target = targets[vehicle.vid]
            vehicle.position = target
            if self.config.pause_time_s > 0:
                self._pause_until[vehicle.vid] = now + self.config.pause_time_s
            self._assign_new_leg(vehicle)
            row = rows[i]
            store.xs[row] = target.x
            store.ys[row] = target.y
        store.touch()

    def _assign_new_leg(self, vehicle: VehicleState) -> None:
        target = self._random_point()
        self._targets[vehicle.vid] = target
        vehicle.speed = self._rng.uniform(
            self.config.min_speed_mps, self.config.max_speed_mps
        )
        vehicle.desired_speed = vehicle.speed
        direction = (target - vehicle.position).normalized()
        if direction.norm_sq() > 0:
            vehicle.heading = direction.angle()

    def _random_point(self) -> Vec2:
        return Vec2(
            self._rng.uniform(0.0, self.config.width_m),
            self._rng.uniform(0.0, self.config.height_m),
        )
