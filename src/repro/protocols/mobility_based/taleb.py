"""Taleb-style velocity-group routing (paper ref. [14], also [12]).

Taleb et al. group vehicles into four classes by their velocity vector and
prefer routes whose links connect vehicles of the same group: links between
same-direction vehicles "stay longer than the link between two vehicles with
different speed directions".  Route discovery is a flood in which nodes of a
different group only participate reluctantly, and the destination picks the
most stable (largest minimum-lifetime) path.  A new discovery is initiated
before the shortest link duration of the selected path elapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.direction import direction_group
from repro.core.link_lifetime import LinkLifetimePredictor
from repro.core.taxonomy import Category, register_protocol
from repro.geometry import Vec2
from repro.protocols.mobility_based.lifetime_routing import (
    PathDiscoveryConfig,
    PathMetricDiscoveryProtocol,
)
from repro.sim.network import Network
from repro.sim.node import Node


@dataclass
class TalebConfig(PathDiscoveryConfig):
    """Taleb parameters.

    Attributes:
        communication_range_m: Range used by the link-lifetime prediction.
        different_group_forward_probability: Probability that a node whose
            velocity group differs from the request origin's still forwards
            the request (a pure filter would disconnect cross-traffic
            destinations entirely).
        same_group_bonus: Multiplier applied to the lifetime of links whose
            endpoints share a velocity group when ranking candidate paths.
    """

    communication_range_m: float = 250.0
    different_group_forward_probability: float = 0.25
    same_group_bonus: float = 1.5


@register_protocol(
    "Taleb",
    Category.MOBILITY,
    "Velocity-vector grouping: prefer routes whose links join same-direction vehicles.",
    paper_reference="[14], Sec. IV.B",
)
class TalebProtocol(PathMetricDiscoveryProtocol):
    """Velocity-group based stable routing."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[TalebConfig] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else TalebConfig())
        self.predictor = LinkLifetimePredictor(self.config.communication_range_m)

    def _own_group_tag(self) -> str:
        """This node's velocity group, carried in the request it originates."""
        return direction_group(self.node.velocity).value

    def should_forward_request(self, headers: dict, sender_id: int) -> bool:
        """Same-group nodes always forward; others forward with low probability."""
        origin_group = headers.get("origin_group", "")
        own_group = direction_group(self.node.velocity).value
        if not origin_group or origin_group == own_group:
            return True
        return self.rng.random() < self.config.different_group_forward_probability

    def link_metric(
        self,
        previous_position: Vec2,
        previous_velocity: Vec2,
        own_position: Vec2,
        own_velocity: Vec2,
        headers: dict,
    ) -> float:
        """Predicted link lifetime, boosted when both endpoints share a group."""
        lifetime = self.predictor.predict_from_snapshot(
            previous_position, previous_velocity, own_position, own_velocity
        )
        same_group = direction_group(previous_velocity) == direction_group(own_velocity)
        if same_group:
            return lifetime * self.config.same_group_bonus
        return lifetime

    def path_score(self, metric: float, path: List[int]) -> float:
        """Most stable path wins; shorter paths break ties."""
        return metric - 1e-3 * len(path)

    def _route_lifetime_from_metric(self, metric: float) -> float:
        """Undo the same-group bonus so the trusted lifetime stays conservative."""
        return super()._route_lifetime_from_metric(metric / self.config.same_group_bonus)
