"""Property-based tests: workload schedules are deterministic per seed.

Every registered workload must produce a byte-identical send schedule when
built twice from equal seeds -- the invariant the replicated-sweep layer
(serial or parallel, any worker count) rests on.  The schedule is compared
*before* the simulation runs, straight off the event queue, so the property
covers the workload's own draws rather than downstream protocol behaviour
(which tests/harness/test_sweep.py covers end-to-end).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import Scenario, highway_scenario
from repro.mobility.generator import TrafficDensity
from repro.sim.node import Node
from repro.workloads import available_workloads, workload_from_name


def _tiny_scenario(workload: str, seed: int) -> Scenario:
    return highway_scenario(
        TrafficDensity.SPARSE,
        name="workload-prop",
        duration_s=6.0,
        max_vehicles=10,
        default_flow_count=2,
        seed=seed,
        rsu_spacing_m=600.0,  # so the v2i workload has infrastructure
        workload=workload,
    )


def _describe(arg: object) -> object:
    """A stable, comparable description of one scheduled-callback argument."""
    if isinstance(arg, Node):
        return f"node:{arg.node_id}"
    if isinstance(arg, (bool, int, float, str)) or arg is None:
        return arg
    return type(arg).__name__


def _schedule_signature(scenario: Scenario) -> str:
    """Build the workload and serialise the resulting event schedule."""
    built = ExperimentRunner().build(scenario)
    workload = workload_from_name(scenario.workload, **dict(scenario.workload_params))
    flows = workload.build(scenario, built, built.sim.rng.stream("traffic"))
    events = [
        (
            event.time,
            event.priority,
            event.seq,
            getattr(event.callback, "__qualname__", str(event.callback)),
            [_describe(arg) for arg in event.args],
        )
        for event in built.sim._queue.snapshot()
        if not event.cancelled
    ]
    return json.dumps({"flows": flows, "events": events}, sort_keys=True)


@pytest.mark.parametrize("workload", sorted(available_workloads()))
class TestWorkloadScheduleDeterminism:
    @given(seed=st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_equal_seeds_give_byte_identical_schedules(self, workload, seed):
        first = _schedule_signature(_tiny_scenario(workload, seed))
        second = _schedule_signature(_tiny_scenario(workload, seed))
        assert first == second

    def test_seeds_differentiate_randomised_schedules(self, workload):
        """A sanity complement: across several seeds the schedule must not
        be constant (every built-in workload draws timing or endpoints)."""
        signatures = {
            _schedule_signature(_tiny_scenario(workload, seed)) for seed in (1, 2, 3, 4)
        }
        assert len(signatures) > 1
