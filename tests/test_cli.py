"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_protocols_subcommand_parses(self):
        args = build_parser().parse_args(["protocols"])
        assert args.command == "protocols"

    def test_run_subcommand_defaults(self):
        args = build_parser().parse_args(["run", "AODV"])
        assert args.protocol == "AODV"
        assert args.kind == "highway"
        assert args.density == "normal"

    def test_compare_accepts_multiple_protocols(self):
        args = build_parser().parse_args(["compare", "AODV", "Greedy", "--density", "sparse"])
        assert args.protocols == ["AODV", "Greedy"]
        assert args.density == "sparse"

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_subcommand_defaults(self):
        args = build_parser().parse_args(["sweep", "AODV", "Greedy"])
        assert args.command == "sweep"
        assert args.protocols == ["AODV", "Greedy"]
        assert args.seeds == [1, 2, 3]
        assert args.workers == 1

    def test_sweep_subcommand_accepts_seeds_and_workers(self):
        args = build_parser().parse_args(
            ["sweep", "Greedy", "--seeds", "4", "5", "--workers", "2", "--json", "out.json"]
        )
        assert args.seeds == [4, 5]
        assert args.workers == 2
        assert args.json == "out.json"


class TestCommands:
    def test_protocols_lists_all_categories(self, capsys):
        assert main(["protocols"]) == 0
        output = capsys.readouterr().out
        for category in ("connectivity", "mobility", "infrastructure", "geographic", "probability"):
            assert category in output
        assert "AODV" in output and "Yan-TBP" in output

    def test_run_unknown_protocol_fails_cleanly(self, capsys):
        assert main(["run", "NotAProtocol"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_run_small_scenario(self, capsys, tmp_path):
        csv_path = tmp_path / "result.csv"
        code = main(
            [
                "run",
                "Greedy",
                "--duration", "8",
                "--max-vehicles", "20",
                "--flows", "2",
                "--packets-per-flow", "4",
                "--density", "sparse",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "delivery_ratio" in output
        assert csv_path.exists()
        assert "Greedy" in csv_path.read_text()

    def test_compare_small_scenario(self, capsys):
        code = main(
            [
                "compare",
                "Flooding",
                "Greedy",
                "--duration", "8",
                "--max-vehicles", "20",
                "--flows", "2",
                "--packets-per-flow", "4",
                "--density", "sparse",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Flooding" in output and "Greedy" in output

    def test_compare_unknown_protocol_fails(self, capsys):
        assert main(["compare", "Greedy", "Bogus"]) == 2

    def test_sweep_small_matrix_parallel(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "Greedy",
                "Flooding",
                "--seeds", "1", "2",
                "--workers", "2",
                "--duration", "6",
                "--max-vehicles", "15",
                "--flows", "2",
                "--packets-per-flow", "3",
                "--density", "sparse",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "delivery_ratio_mean" in output
        assert "Greedy" in output and "Flooding" in output
        assert "delivery_ratio_ci95" in csv_path.read_text()
        from repro.harness.reporting import sweep_from_json

        loaded = sweep_from_json(json_path)
        assert len(loaded.records) == 4  # 2 protocols x 2 seeds
        assert {r.protocol for r in loaded.replicated} == {"Greedy", "Flooding"}

    def test_sweep_unknown_protocol_fails(self, capsys):
        assert main(["sweep", "Bogus"]) == 2

    def test_sweep_duplicate_seeds_fail_cleanly(self, capsys):
        assert main(["sweep", "Greedy", "--seeds", "5", "5"]) == 2
        assert "unique" in capsys.readouterr().err
