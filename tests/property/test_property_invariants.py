"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.link_lifetime import link_lifetime_1d, link_lifetime_2d
from repro.core.path_reliability import path_lifetime, path_reliability, widest_lifetime_path
from repro.core.stability import link_alive_probability
from repro.geometry import Vec2, angle_between
from repro.protocols.discovery import DuplicateCache, PendingPacketBuffer, RouteEntry, RouteTable
from repro.radio.interference import combine_dbm, dbm_to_mw, mw_to_dbm
from repro.sim.events import EventQueue
from repro.sim.packet import make_data_packet
from repro.sim.rng import RandomStreams

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
speeds = st.floats(min_value=-60.0, max_value=60.0, allow_nan=False)
positions = st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False)


class TestGeometryProperties:
    @given(finite_floats, finite_floats, finite_floats, finite_floats)
    def test_distance_is_symmetric(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert a.distance_to(b) == b.distance_to(a)

    @given(finite_floats, finite_floats)
    def test_normalized_is_unit_or_zero(self, x, y):
        vector = Vec2(x, y)
        length = vector.normalized().norm()
        assert length == 0.0 or math.isclose(length, 1.0, rel_tol=1e-9)

    @given(finite_floats, finite_floats, finite_floats, finite_floats)
    def test_angle_between_is_bounded(self, ax, ay, bx, by):
        angle = angle_between(Vec2(ax, ay), Vec2(bx, by))
        assert 0.0 <= angle <= math.pi + 1e-12

    @given(finite_floats, finite_floats, finite_floats, finite_floats, finite_floats, finite_floats)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Vec2(ax, ay), Vec2(bx, by), Vec2(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestLinkLifetimeProperties:
    @given(
        st.floats(min_value=-240.0, max_value=240.0),
        st.floats(min_value=-30.0, max_value=30.0),
        st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_lifetime_is_never_negative(self, d0, dv, da):
        lifetime = link_lifetime_1d(d0, dv, da, 250.0)
        assert lifetime >= 0.0

    @given(
        st.floats(min_value=-200.0, max_value=200.0),
        st.floats(min_value=0.5, max_value=30.0),
    )
    def test_faster_separation_never_lengthens_the_link(self, d0, dv):
        slow = link_lifetime_1d(d0, dv, 0.0, 250.0)
        fast = link_lifetime_1d(d0, dv * 2.0, 0.0, 250.0)
        assert fast <= slow + 1e-9

    @given(
        st.floats(min_value=-200.0, max_value=200.0),
        st.floats(min_value=-30.0, max_value=30.0),
    )
    def test_separation_at_predicted_breakage_equals_range(self, d0, dv):
        assume(abs(dv) > 0.1)
        lifetime = link_lifetime_1d(d0, dv, 0.0, 250.0)
        assume(math.isfinite(lifetime) and lifetime > 0.0)
        separation = abs(d0 + dv * lifetime)
        assert math.isclose(separation, 250.0, rel_tol=1e-6, abs_tol=1e-6)

    @given(positions, positions, speeds, speeds, positions, positions, speeds, speeds)
    def test_2d_lifetime_never_negative_and_zero_when_out_of_range(
        self, ax, ay, avx, avy, bx, by, bvx, bvy
    ):
        lifetime = link_lifetime_2d(Vec2(ax, ay), Vec2(avx, avy), Vec2(bx, by), Vec2(bvx, bvy))
        assert lifetime >= 0.0
        if Vec2(ax, ay).distance_to(Vec2(bx, by)) > 250.0:
            assert lifetime == 0.0


class TestStabilityProperties:
    @given(
        st.floats(min_value=-240.0, max_value=240.0),
        st.floats(min_value=0.0, max_value=120.0),
        st.floats(min_value=-20.0, max_value=20.0),
        st.floats(min_value=0.1, max_value=15.0),
    )
    def test_alive_probability_is_a_probability(self, d0, t, mean, std):
        probability = link_alive_probability(d0, t, mean, std, 250.0)
        assert 0.0 <= probability <= 1.0

    @given(
        st.floats(min_value=-200.0, max_value=200.0),
        st.floats(min_value=0.1, max_value=15.0),
    )
    def test_alive_probability_decreases_with_time(self, d0, std):
        earlier = link_alive_probability(d0, 10.0, 0.0, std, 250.0)
        later = link_alive_probability(d0, 60.0, 0.0, std, 250.0)
        assert later <= earlier + 1e-9


class TestPathCompositionProperties:
    lifetimes = st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=10)
    probabilities = st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=10)

    @given(lifetimes)
    def test_path_lifetime_bounded_by_every_link(self, values):
        lifetime = path_lifetime(values)
        assert all(lifetime <= v for v in values)
        assert lifetime in values

    @given(probabilities)
    def test_path_reliability_in_unit_interval_and_monotone(self, values):
        reliability = path_reliability(values)
        assert 0.0 <= reliability <= 1.0
        assert reliability <= (min(values) if values else 1.0) + 1e-12

    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda e: e[0] < e[1]),
            st.floats(min_value=0.1, max_value=100.0),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=50)
    def test_widest_path_bottleneck_is_achievable(self, links):
        import networkx as nx

        nodes = sorted({n for edge in links for n in edge})
        assume(len(nodes) >= 2)
        source, destination = nodes[0], nodes[-1]
        try:
            path, bottleneck = widest_lifetime_path(links, source, destination)
        except nx.NetworkXNoPath:
            return
        assert path[0] == source and path[-1] == destination
        for a, b in zip(path, path[1:]):
            value = links.get((a, b), links.get((b, a)))
            assert value is not None
            assert value >= bottleneck - 1e-9


class TestPowerProperties:
    @given(st.floats(min_value=-150.0, max_value=50.0))
    def test_dbm_mw_round_trip(self, power):
        assert math.isclose(mw_to_dbm(dbm_to_mw(power)), power, rel_tol=1e-9, abs_tol=1e-9)

    @given(st.lists(st.floats(min_value=-120.0, max_value=30.0), min_size=1, max_size=8))
    def test_combined_power_at_least_max_component(self, powers):
        combined = combine_dbm(powers)
        assert combined >= max(powers) - 1e-9


class TestDataStructureProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
    def test_event_queue_pops_in_sorted_order(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=100))
    def test_duplicate_cache_reports_repeats(self, keys):
        cache = DuplicateCache(lifetime_s=1e9)
        seen_before = set()
        for key in keys:
            expected = key in seen_before
            assert cache.seen(key, now=0.0) == expected
            seen_before.add(key)

    @given(
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(0, 100), st.integers(1, 10)),
            min_size=1,
            max_size=30,
        )
    )
    def test_route_table_always_keeps_freshest_sequence(self, updates):
        table = RouteTable()
        best_seen = {}
        for destination, sequence, hops in updates:
            entry = RouteEntry(
                destination=destination,
                next_hop=sequence % 7,
                hop_count=hops,
                expiry=1e9,
                sequence=sequence,
            )
            table.update_if_better(entry, now=0.0)
            current_best = best_seen.get(destination)
            if current_best is None or sequence > current_best:
                best_seen[destination] = sequence
        for destination, best_sequence in best_seen.items():
            assert table.get(destination, 0.0).sequence == best_sequence

    @given(st.integers(min_value=1, max_value=40))
    def test_pending_buffer_never_exceeds_capacity(self, count):
        buffer = PendingPacketBuffer(capacity_per_destination=8)
        for _ in range(count):
            buffer.add(make_data_packet("p", 1, 9), now=0.0)
        assert len(buffer) <= 8

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=12))
    def test_rng_streams_are_deterministic(self, seed, name):
        a = RandomStreams(seed).stream(name).random()
        b = RandomStreams(seed).stream(name).random()
        assert a == b
