"""Tests for the geographic protocols (Greedy, Zone, Grid-Gateway)."""

import pytest

from repro.geometry import Vec2
from repro.protocols.geographic import GreedyConfig, GreedyProtocol, ZoneConfig
from tests.helpers import build_static_network, line_positions, run_data_flow

SPACING = 200.0


def _line_network(count, protocol, **kwargs):
    sim, network, stats, nodes = build_static_network(
        line_positions(count, SPACING), protocol=protocol, **kwargs
    )
    network.start()
    return sim, network, stats, nodes


class TestGreedy:
    def test_multi_hop_delivery(self):
        sim, network, stats, nodes = _line_network(5, "Greedy")
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8
        assert stats.flows[1].mean_hops >= 4

    def test_no_flooding_of_data(self):
        sim, network, stats, nodes = _line_network(5, "Greedy")
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        # Unicast chain: at most one transmission per link per packet (plus
        # MAC retries), nowhere near the one-per-node cost of flooding.
        assert stats.data_transmissions <= 5 * 6

    def test_select_next_hop_maximises_progress(self):
        sim, network, stats, nodes = _line_network(4, "Greedy")
        sim.run(until=3.0)  # let beacons populate the neighbour tables
        protocol: GreedyProtocol = nodes[0].protocol
        destination_position = nodes[3].position
        chosen = protocol.select_next_hop(nodes[3].node_id, destination_position)
        assert chosen == nodes[1].node_id  # the only forward neighbour in range

    def test_local_maximum_triggers_carry_when_enabled(self):
        # A gap larger than radio range right after node 1: greedy gets stuck.
        positions = [(0, 0), (200, 0), (900, 0)]
        sim, network, stats, nodes = build_static_network(positions, protocol="Greedy")
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[2], packets=2, start=2.0, until=15.0)
        assert stats.delivery_ratio == 0.0
        assert stats.store_carry_events >= 1

    def test_local_maximum_drops_when_carry_disabled(self):
        config = GreedyConfig(carry_on_local_maximum=False)
        positions = [(0, 0), (200, 0), (900, 0)]
        sim, network, stats, nodes = build_static_network(
            positions, protocol="Greedy", protocol_config=config
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[2], packets=2, start=2.0, until=15.0)
        assert stats.no_route_drops >= 1
        assert stats.store_carry_events == 0

    def test_beacon_overhead_accrues_even_without_traffic(self):
        sim, network, stats, nodes = _line_network(5, "Greedy")
        sim.run(until=10.0)
        assert stats.beacon_transmissions >= 5 * 8  # ~2 Hz per node for 10 s
        assert stats.discovery_transmissions == 0


class TestZone:
    def test_corridor_flood_delivers(self):
        sim, network, stats, nodes = _line_network(5, "Zone")
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, until=20.0)
        assert stats.delivery_ratio == 1.0

    def test_nodes_outside_corridor_do_not_rebroadcast(self):
        # A line of on-corridor nodes plus two far off-corridor nodes that can
        # hear the flood but must stay silent.
        positions = line_positions(4, SPACING) + [(300.0, 500.0), (100.0, -500.0)]
        sim, network, stats, nodes = build_static_network(
            positions, protocol="Zone", protocol_config=ZoneConfig(corridor_width_m=300.0)
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=1, until=10.0)
        assert stats.delivery_ratio == 1.0
        # Transmissions: at most the 4 corridor nodes (source + relays), never 6.
        assert stats.data_transmissions <= 4

    def test_zone_cheaper_than_unrestricted_flooding(self):
        # Off-corridor nodes sit 200 m to the side: within radio range of the
        # corridor (so flooding recruits them) but outside a 120 m corridor.
        positions = line_positions(5, SPACING) + [
            (200.0, 200.0),
            (400.0, 200.0),
            (600.0, 200.0),
        ]

        def run_with(protocol, config=None):
            sim, network, stats, nodes = build_static_network(
                positions, protocol=protocol, protocol_config=config
            )
            network.start()
            run_data_flow(sim, stats, nodes[0], nodes[4], packets=3, until=15.0)
            return stats

        zone_stats = run_with("Zone", ZoneConfig(corridor_width_m=120.0))
        flood_stats = run_with("Flooding")
        assert zone_stats.delivery_ratio == 1.0
        assert zone_stats.data_transmissions < flood_stats.data_transmissions

    def test_unknown_destination_position_is_a_drop(self):
        sim, network, stats, nodes = _line_network(2, "Zone")
        stats.register_flow(1, nodes[0].node_id, 999)
        sim.schedule_at(1.0, lambda: nodes[0].protocol.send_data(999, flow_id=1, seq=1))
        sim.run(until=5.0)
        assert stats.no_route_drops == 1


class TestGridGateway:
    def test_multi_hop_delivery(self):
        sim, network, stats, nodes = _line_network(5, "Grid-Gateway")
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_gateway_election_is_unique_per_cell(self):
        # Three nodes in the same 250 m cell: exactly one considers itself gateway.
        positions = [(10, 10), (60, 10), (110, 10)]
        sim, network, stats, nodes = build_static_network(positions, protocol="Grid-Gateway")
        network.start()
        sim.run(until=3.0)
        gateway_flags = [node.protocol.is_gateway() for node in nodes]
        assert sum(gateway_flags) == 1

    def test_gateway_is_node_closest_to_cell_centre(self):
        positions = [(10, 10), (120, 120), (200, 200)]
        sim, network, stats, nodes = build_static_network(positions, protocol="Grid-Gateway")
        network.start()
        sim.run(until=3.0)
        # Cell is 250 m: its centre is (125, 125); the middle node wins.
        assert nodes[1].protocol.is_gateway()
        assert not nodes[0].protocol.is_gateway()

    def test_isolated_node_is_its_own_gateway(self):
        sim, network, stats, nodes = build_static_network([(10, 10)], protocol="Grid-Gateway")
        network.start()
        sim.run(until=2.0)
        assert nodes[0].protocol.is_gateway()
