"""Routing protocols: one subpackage per category of the paper's taxonomy.

Importing this package registers every implemented protocol in
:data:`repro.core.taxonomy.global_registry`, which is how the Fig. 1
benchmark enumerates the taxonomy.

Shared building blocks live at this level:

* :mod:`repro.protocols.base` -- the :class:`RoutingProtocol` interface.
* :mod:`repro.protocols.neighbors` -- HELLO beaconing and neighbour tables.
* :mod:`repro.protocols.discovery` -- duplicate caches, route tables and
  pending-packet buffers shared by the on-demand protocols.
* :mod:`repro.protocols.location` -- the idealised location service the
  geographic protocols assume (GPS plus a location lookup).
"""

from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import DuplicateCache, PendingPacketBuffer, RouteEntry, RouteTable
from repro.protocols.location import LocationService
from repro.protocols.neighbors import BeaconService, NeighborEntry, NeighborTable

# Import the category subpackages for their registration side effects.
from repro.protocols import connectivity as connectivity  # noqa: F401
from repro.protocols import mobility_based as mobility_based  # noqa: F401
from repro.protocols import infrastructure as infrastructure  # noqa: F401
from repro.protocols import geographic as geographic  # noqa: F401
from repro.protocols import probability as probability  # noqa: F401

from repro.protocols.registry import PROTOCOL_FACTORIES, available_protocols, make_protocol_factory

__all__ = [
    "ProtocolConfig",
    "RoutingProtocol",
    "DuplicateCache",
    "PendingPacketBuffer",
    "RouteEntry",
    "RouteTable",
    "LocationService",
    "BeaconService",
    "NeighborEntry",
    "NeighborTable",
    "PROTOCOL_FACTORIES",
    "available_protocols",
    "make_protocol_factory",
]
