"""Shared hop-by-hop forwarding driven by a per-neighbour score.

REAR and GVGrid (and, outside this package, Wedde and Greedy) all follow the
same loop: beacon, learn neighbours, and forward each data packet to the
neighbour that maximises some protocol-specific score, subject to making
geographic progress.  This base class implements the loop once; subclasses
provide :meth:`neighbor_score`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry import Vec2
from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import DuplicateCache
from repro.protocols.location import LocationService
from repro.protocols.neighbors import BeaconService, NeighborEntry
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import Packet


@dataclass
class ScoredForwardingConfig(ProtocolConfig):
    """Parameters of scored hop-by-hop forwarding.

    Attributes:
        require_progress: Only consider neighbours strictly closer to the
            destination; when False the best-scoring neighbour is used even
            without progress (useful for probabilistic detours).
        min_score: Neighbours scoring below this are never used.
    """

    require_progress: bool = True
    min_score: float = 0.0
    #: Neighbours estimated to be farther than this are skipped (edge-of-range
    #: candidates have likely drifted out of range since their last beacon).
    max_neighbor_distance_m: float = 230.0


class ScoredForwardingProtocol(RoutingProtocol):
    """Base class: forward data to the best-scoring neighbour."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[ScoredForwardingConfig] = None,
        location_service: Optional[LocationService] = None,
    ) -> None:
        super().__init__(
            node, network, config if config is not None else ScoredForwardingConfig()
        )
        self.location = (
            location_service if location_service is not None else LocationService(network)
        )
        self.beacons = BeaconService(
            self,
            interval_s=self.config.hello_interval_s,
            timeout_s=self.config.neighbor_timeout_s,
        )
        self._seen = DuplicateCache(lifetime_s=30.0)

    # ------------------------------------------------------------------ hooks
    def neighbor_score(
        self,
        entry: NeighborEntry,
        destination: int,
        destination_position: Vec2,
        progress_m: float,
    ) -> float:
        """Score of forwarding via ``entry`` (higher is better); subclass hook."""
        raise NotImplementedError

    # ------------------------------------------------------------------ setup
    def start(self) -> None:
        """Start beaconing."""
        super().start()
        self.beacons.start()

    def stop(self) -> None:
        """Stop beaconing."""
        super().stop()
        self.beacons.stop()

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Forward to the best-scoring neighbour."""
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        self._seen.seen((packet.flow_key, self.node.node_id), self.now)
        self._forward(packet)

    # -------------------------------------------------------------- reception
    def handle_packet(self, packet: Packet, sender_id: int) -> None:
        """Handle beacons and data."""
        if packet.ptype == "HELLO":
            self.beacons.handle_beacon(packet, sender_id)
            return
        if not packet.is_data:
            return
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if self._seen.seen((packet.flow_key, self.node.node_id), self.now):
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        self._forward(packet.forwarded())

    # -------------------------------------------------------------- internals
    def _forward(self, packet: Packet) -> None:
        cfg: ScoredForwardingConfig = self.config  # type: ignore[assignment]
        destination_position = self.location.position_of(packet.destination)
        if destination_position is None:
            self.stats.no_route_drop()
            return
        neighbors = self.beacons.neighbors()
        by_id = {entry.node_id: entry for entry in neighbors}
        if packet.destination in by_id:
            self.unicast(packet, packet.destination)
            return
        own_distance = self.node.position.distance_to(destination_position)
        best_id: Optional[int] = None
        best_score = cfg.min_score
        for entry in neighbors:
            neighbor_position = entry.predicted_position(self.now)
            if self.node.position.distance_to(neighbor_position) > cfg.max_neighbor_distance_m:
                continue
            progress = own_distance - neighbor_position.distance_to(destination_position)
            if cfg.require_progress and progress <= 0:
                continue
            score = self.neighbor_score(
                entry, packet.destination, destination_position, progress
            )
            if score > best_score:
                best_score = score
                best_id = entry.node_id
        if best_id is None:
            self.stats.no_route_drop()
            return
        self.unicast(packet, best_id)
