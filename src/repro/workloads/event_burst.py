"""Event-triggered emergency warnings with geo-scoped flooding."""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.sim.node import NodeKind
from repro.sim.packet import BROADCAST, make_data_packet
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload, register_workload_preset
from repro.workloads.safety_beacon import SCOPE_LINGER_S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import BuiltScenario
    from repro.harness.scenario import Scenario
    from repro.sim.node import Node
    from repro.sim.packet import Packet

#: ptype of application-layer emergency warnings.
EVT_PTYPE = "EVT"


@register_workload("event-burst")
class EventBurstWorkload(Workload):
    """Randomly triggered emergency warnings flooded within a geographic scope.

    Models DENM-style hazard warnings: at random instants a random vehicle
    becomes the epicenter of an event and repeatedly broadcasts a warning
    that must reach every vehicle inside a geographic scope around the
    epicenter.  Receivers inside the scope rebroadcast each warning once
    (TTL-bounded application-layer flooding), so the offered load spikes in
    space and time -- the broadcast-storm regime the paper's connectivity
    category is criticised for.

    Delivery accounting is per receiver against the scope membership frozen
    at trigger time: ``delivery_ratio`` reads as the fraction of in-scope
    vehicles reached per warning.  Frozen scope sets, the rebroadcast dedup
    and the stats collector's per-packet dedup are all released
    :data:`~repro.workloads.safety_beacon.SCOPE_LINGER_S` seconds after the
    burst ends -- past that bound no reception of the warning can still be
    counted, so the tables stay proportional to the in-flight event window
    instead of accumulating over the whole run.

    Constructor keywords: ``event_count`` (default 4), ``radius_m`` (scope
    radius, default 600), ``repeats`` (warning retransmissions per event,
    default 3), ``repeat_interval_s`` (default 0.5), ``size_bytes``
    (default 300), ``flood_ttl`` (rebroadcast hop budget, default 4).
    """

    def __init__(
        self,
        event_count: int = 4,
        radius_m: float = 600.0,
        repeats: int = 3,
        repeat_interval_s: float = 0.5,
        size_bytes: int = 300,
        flood_ttl: int = 4,
    ) -> None:
        if event_count < 0:
            raise ValueError(f"event_count must be >= 0 (got {event_count})")
        self.event_count = event_count
        self.radius_m = radius_m
        self.repeats = max(1, repeats)
        self.repeat_interval_s = repeat_interval_s
        self.size_bytes = size_bytes
        self.flood_ttl = max(1, flood_ttl)

    def build(
        self, scenario: "Scenario", built: "BuiltScenario", rng: random.Random
    ) -> List[Dict[str, float]]:
        flows: List[Dict[str, float]] = []
        vehicles = built.vehicle_nodes
        if not vehicles or self.event_count == 0:
            return flows
        #: flow_id -> node ids inside the scope at trigger time.
        scopes: Dict[int, Set[int]] = {}
        #: flow_key -> node ids that already rebroadcast that warning, for
        #: dedup; keyed per packet identity so expiring one warning releases
        #: its whole entry at once.
        rebroadcast_done: Dict[Tuple, Set[int]] = {}
        #: Packet identities still inside their linger window.  The scope
        #: set expires per *flow* (after the burst's last warning) but
        #: retirement is per *packet* (SCOPE_LINGER_S after its own send);
        #: a reception landing in that gap used to be re-counted against a
        #: retired key, silently re-creating its dedup entry.  Receivers
        #: consult this set, so a warning stops being countable at the
        #: same instant its accounting state is released.
        live_keys: Set[Tuple] = set()
        for node in built.network.nodes.values():
            node.app_frame_handler = self._make_receiver(
                built, node, scopes, rebroadcast_done, live_keys
            )
        # Both the trigger instants and the epicenter vehicles are drawn up
        # front in event order, so the draw sequence is independent of how
        # the events later interleave with the simulation.
        window_start = min(1.0, scenario.duration_s)
        window_end = scenario.duration_s - self.repeats * self.repeat_interval_s
        window_end = max(window_start, window_end)
        triggers = sorted(
            rng.uniform(window_start, window_end) for _ in range(self.event_count)
        )
        epicenters = [rng.randrange(len(vehicles)) for _ in range(self.event_count)]
        sends = []
        for flow_id, (trigger_time, vehicle_index) in enumerate(
            zip(triggers, epicenters), start=1
        ):
            source = vehicles[vehicle_index]
            flows.append(
                {"flow_id": flow_id, "source": source.node_id, "destination": BROADCAST}
            )
            sends.append(
                (
                    trigger_time,
                    self._trigger_event,
                    (built, source, flow_id, scopes, rebroadcast_done, live_keys),
                    0,
                )
            )
        # One bulk queue insert, in trigger order -- trace-identical to the
        # legacy per-event loop.
        built.sim.schedule_at_many(sends)
        return flows

    def _trigger_event(
        self,
        built: "BuiltScenario",
        source: "Node",
        flow_id: int,
        scopes: Dict[int, Set[int]],
        rebroadcast_done: Dict[Tuple, Set[int]],
        live_keys: Set[Tuple],
    ) -> None:
        """Freeze the scope set and start the warning burst."""
        in_scope = {
            node.node_id
            for node in built.network.nodes_within(
                source.position, self.radius_m, exclude=source.node_id
            )
            if node.kind is not NodeKind.RSU
        }
        scopes[flow_id] = in_scope
        built.stats.register_flow(
            flow_id, source.node_id, BROADCAST, mode="broadcast"
        )
        last_delay = 0.0
        for repeat in range(self.repeats):
            delay = repeat * self.repeat_interval_s
            # Like every other workload, nothing originates past the
            # evaluated window -- the drain period is for in-flight packets,
            # not fresh traffic.
            if built.sim.now + delay > built.scenario.duration_s:
                break
            last_delay = delay
            built.sim.schedule(
                delay,
                self._send_warning,
                built,
                source,
                flow_id,
                repeat + 1,
                len(in_scope),
                rebroadcast_done,
                live_keys,
            )
        # The frozen scope expires on the safety-beacon linger bound after
        # the last warning of the burst: past it no reception of this event
        # can still be counted against the set.
        built.sim.schedule(last_delay + SCOPE_LINGER_S, scopes.pop, flow_id, None)

    def _send_warning(
        self,
        built: "BuiltScenario",
        source: "Node",
        flow_id: int,
        seq: int,
        expected: int,
        rebroadcast_done: Dict[Tuple, Set[int]],
        live_keys: Set[Tuple],
    ) -> None:
        packet = make_data_packet(
            "app",
            source.node_id,
            BROADCAST,
            size_bytes=self.size_bytes,
            created_at=built.sim.now,
            flow_id=flow_id,
            seq=seq,
            ttl=self.flood_ttl,
        )
        packet.ptype = EVT_PTYPE
        live_keys.add(packet.flow_key)
        built.stats.data_originated(packet, expected_receivers=expected)
        source.send(packet, BROADCAST)
        # Same linger bound as the scope: stop counting receptions of this
        # warning, then release its rebroadcast dedup entry and the stats
        # collector's per-(receiver, packet) dedup.  The liveness discard is
        # scheduled *first* so that at the expiry instant no receiver can
        # observe a retired-but-still-countable key (that ordering is what
        # keeps the conservation-invariant probe's ledger exact).
        built.sim.schedule(SCOPE_LINGER_S, live_keys.discard, packet.flow_key)
        built.sim.schedule(
            SCOPE_LINGER_S, rebroadcast_done.pop, packet.flow_key, None
        )
        built.sim.schedule(
            SCOPE_LINGER_S, built.stats.packet_retired, flow_id, packet.flow_key
        )

    @staticmethod
    def _make_receiver(
        built: "BuiltScenario",
        node: "Node",
        scopes: Dict[int, Set[int]],
        rebroadcast_done: Dict[Tuple, Set[int]],
        live_keys: Set[Tuple],
    ):
        def receive(packet: "Packet", sender_id: int) -> bool:
            if packet.ptype != EVT_PTYPE:
                return False
            in_scope = scopes.get(packet.flow_id)
            if in_scope is None:
                return True
            # The flow's scope may outlive an individual warning (the scope
            # expires after the burst's *last* repeat, each warning lingers
            # from its own send): once a warning's key left the live set its
            # accounting state is retired, so the frame is consumed without
            # being counted or relayed.
            if packet.flow_key not in live_keys:
                return True
            if node.node_id in in_scope:
                built.stats.data_delivered(packet, built.sim.now, receiver=node.node_id)
                # Geo-scoped flooding: every in-scope receiver relays each
                # warning exactly once while the hop budget lasts.
                done = rebroadcast_done.setdefault(packet.flow_key, set())
                if packet.ttl > 1 and node.node_id not in done:
                    done.add(node.node_id)
                    node.send(packet.forwarded(), BROADCAST)
            return True

        return receive

    def extra_metrics(self, built: "BuiltScenario") -> Dict[str, float]:
        return {"events_triggered": float(len(built.stats.flows))}


register_workload_preset(
    "event-burst-storm",
    lambda **overrides: EventBurstWorkload(
        **{"event_count": 8, "repeats": 5, "repeat_interval_s": 0.2, **overrides}
    ),
    "8 emergency events, 5 rapid warning repeats each (stress burst)",
    kind="event-burst",
)
