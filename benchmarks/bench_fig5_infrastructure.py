"""E5 -- Fig. 5: infrastructure (RSU) routing.

Fig. 5 shows road-side units bridging vehicles over a wired backbone.  The
measurable claims of Sec. V / Table I are: with RSUs deployed, delivery in
sparse traffic is high (the backbone relays and buffers packets); without
them ("rural area"), delivery collapses to whatever pure vehicle-to-vehicle
forwarding achieves; and the price is the deployed hardware (RSUs per km)
plus backbone traffic.

Every spacing is replicated over ``FIGURE_SEEDS`` via
:func:`repro.harness.sweep.sweep_replications`; the table reports means with
95% confidence intervals and the claims are asserted on means.

Expected shape: delivery ratio increases with RSU density; the no-RSU point
is the worst; backbone transmissions and RSU count grow as the spacing
shrinks.
"""

from __future__ import annotations

from repro.mobility.generator import TrafficDensity

from benchmarks.common import FIGURE_SEEDS, replicate, report, run_once, small_highway

#: RSU spacings swept (None = no infrastructure, the rural case).
SPACINGS = [None, 1500.0, 1000.0, 500.0, 250.0]

METRICS = [
    "delivery_ratio",
    "mean_delay_s",
    "backbone_transmissions",
    "store_carry_events",
    "control_transmissions",
]


def _spacing_label(spacing) -> str:
    return "none" if spacing is None else f"{int(spacing)}m"


def _run_rsu_sweep():
    scenarios = [
        small_highway(
            TrafficDensity.SPARSE,
            duration_s=25.0,
            max_vehicles=60,
            flows=5,
            rsu_spacing_m=spacing,
            name=f"sparse-rsu-{_spacing_label(spacing)}",
        )
        for spacing in SPACINGS
    ]
    return replicate(scenarios, ["RSU-Relay"], seeds=FIGURE_SEEDS)


def test_fig5_rsu_density_sweep(benchmark):
    """Delivery vs. RSU deployment density in sparse traffic."""
    sweep = run_once(benchmark, _run_rsu_sweep)

    #: RSU count per scenario (identical across seeds: placement is
    #: deterministic in the spacing), read off the per-seed records.
    rsus_deployed = {}
    for record in sweep.records:
        rsus_deployed[record.scenario_name] = record.rsu_count

    rows = []
    for spacing, aggregate in zip(SPACINGS, sweep.replicated):
        row = {
            "rsu_spacing_m": 0 if spacing is None else spacing,
            "rsus_deployed": rsus_deployed[aggregate.scenario_name],
        }
        row.update(aggregate.row(METRICS))
        del row["scenario"], row["protocol"]
        rows.append(row)
    report(
        "fig5_infrastructure",
        rows,
        title=(
            "Fig. 5 -- RSU relay routing in sparse traffic vs. deployment density "
            f"(mean +- 95% CI over {len(FIGURE_SEEDS)} seeds)"
        ),
    )

    by_spacing = {row["rsu_spacing_m"]: row for row in rows}
    no_rsu = by_spacing[0]
    densest = by_spacing[250.0]
    dense = by_spacing[500.0]
    mid = by_spacing[1000.0]
    # Infrastructure rescues sparse traffic: full coverage clearly beats the
    # rural (no-RSU) baseline, and the best-covered deployments are the best
    # performers overall.
    best_with_rsus = max(
        densest["delivery_ratio_mean"], dense["delivery_ratio_mean"]
    )
    assert best_with_rsus > no_rsu["delivery_ratio_mean"] + 0.1
    assert densest["delivery_ratio_mean"] >= no_rsu["delivery_ratio_mean"]
    assert densest["delivery_ratio_mean"] >= mid["delivery_ratio_mean"] - 0.05
    # ...but costs hardware and backbone traffic.
    assert densest["rsus_deployed"] > mid["rsus_deployed"] > 0
    assert no_rsu["rsus_deployed"] == 0
    assert no_rsu["backbone_transmissions_mean"] == 0
    assert densest["backbone_transmissions_mean"] > 0
