"""Biswas-style flooding with implicit acknowledgements (paper ref. [9]).

Biswas et al. extend flooding for highway safety messaging: after a vehicle
rebroadcasts a packet, it listens for the same packet being rebroadcast by a
vehicle behind it.  Hearing that rebroadcast is an implicit acknowledgement
that the message keeps propagating; if no rebroadcast is overheard within a
timeout, the vehicle retransmits, up to a retry limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.taxonomy import Category, register_protocol
from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import DuplicateCache
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import BROADCAST, Packet


@dataclass
class BiswasConfig(ProtocolConfig):
    """Implicit-acknowledgement flooding parameters.

    Attributes:
        ack_timeout_s: How long to wait for an overheard rebroadcast.
        max_retransmissions: Retransmissions before giving up on a packet.
    """

    ack_timeout_s: float = 0.3
    max_retransmissions: int = 3


@register_protocol(
    "Biswas",
    Category.CONNECTIVITY,
    "Flooding with implicit acknowledgements and periodic retransmission.",
    paper_reference="[9], Sec. III.B",
)
class BiswasProtocol(RoutingProtocol):
    """Flooding where overheard rebroadcasts act as acknowledgements."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[BiswasConfig] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else BiswasConfig())
        self._seen = DuplicateCache(lifetime_s=60.0)
        #: flow_key -> {"packet", "retries", "acked"}
        self._awaiting_ack: Dict[Tuple, Dict[str, object]] = {}

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Flood the packet and watch for implicit acknowledgements."""
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        self._seen.seen(packet.flow_key, self.now)
        self._transmit_with_ack(packet)

    # -------------------------------------------------------------- reception
    def handle_packet(self, packet: Packet, sender_id: int) -> None:
        """Deliver / rebroadcast new packets; treat duplicates as implicit ACKs."""
        if not packet.is_data:
            return
        key = packet.flow_key
        pending = self._awaiting_ack.get(key)
        if pending is not None:
            pending["acked"] = True
        if self._seen.seen(key, self.now):
            return
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if packet.destination == BROADCAST:
            self.deliver_locally(packet)
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        self._transmit_with_ack(packet.forwarded())

    # -------------------------------------------------------------- internals
    def _transmit_with_ack(self, packet: Packet) -> None:
        key = packet.flow_key
        self._awaiting_ack[key] = {"packet": packet, "retries": 0, "acked": False}
        self.broadcast(packet)
        self.sim.schedule(self.config.ack_timeout_s, self._check_ack, key)

    def _check_ack(self, key: Tuple) -> None:
        pending = self._awaiting_ack.get(key)
        if pending is None:
            return
        if pending["acked"]:
            del self._awaiting_ack[key]
            return
        retries = int(pending["retries"])
        if retries >= self.config.max_retransmissions:
            del self._awaiting_ack[key]
            return
        pending["retries"] = retries + 1
        packet: Packet = pending["packet"]  # type: ignore[assignment]
        self.broadcast(packet.copy())
        self.sim.schedule(self.config.ack_timeout_s, self._check_ack, key)
