"""Unit tests for the built-in probes, driven through a real EventTap."""

from __future__ import annotations

import json

import pytest

from repro.geometry import Vec2
from repro.monitors import (
    BufferSink,
    LatencyDistributionMonitor,
    TimeSeriesMonitor,
    TransmissionHeatmapMonitor,
    check_telemetry_schema_version,
    telemetry_line,
)
from repro.sim.packet import BROADCAST, make_data_packet
from repro.sim.statistics import StatsCollector
from repro.sim.tap import EventTap


class _Clock:
    """Minimal Simulator stand-in: the tap only reads ``.now``."""

    def __init__(self) -> None:
        self.now = 0.0


def _tapped(*monitors):
    """(clock, stats, sink) with ``monitors`` bound and tapped."""
    clock = _Clock()
    stats = StatsCollector()
    sink = BufferSink()
    for monitor in monitors:
        monitor.bind(stats, sink)
    stats.tap = EventTap(clock, monitors)
    return clock, stats, sink


def _parse(lines):
    decoded = [json.loads(line) for line in lines]
    for payload in decoded:
        check_telemetry_schema_version(payload)
    return decoded


def test_telemetry_line_is_canonical_and_versioned():
    line = telemetry_line("latency", 1.5, "latency-dist", samples=3)
    assert line == '{"event":"latency","monitor":"latency-dist","samples":3,"t":1.5,"v":1}'
    check_telemetry_schema_version(json.loads(line))


def test_schema_check_rejects_unknown_and_incomplete():
    with pytest.raises(ValueError, match="no telemetry schema version"):
        check_telemetry_schema_version({"event": "x"})
    with pytest.raises(ValueError, match="unknown telemetry schema version 99"):
        check_telemetry_schema_version({"v": 99})
    with pytest.raises(ValueError, match="non-integer"):
        check_telemetry_schema_version({"v": True})
    with pytest.raises(ValueError, match="missing envelope keys"):
        check_telemetry_schema_version({"v": 1, "event": "x"})


def test_latency_probe_streams_and_summarises():
    probe = LatencyDistributionMonitor(emit_interval_s=1.0)
    clock, stats, sink = _tapped(probe)
    packet = make_data_packet("app", 1, 2, flow_id=1, seq=1, created_at=0.0)
    for now in (0.2, 0.4, 1.2):
        clock.now = now
        fresh = packet if now == 0.2 else make_data_packet(
            "app", 1, 2, flow_id=1, seq=int(now * 10), created_at=0.0
        )
        stats.data_delivered(fresh, now)
    summary = probe.finalize(2.0)
    assert summary["latency_samples"] == 3.0
    assert summary["latency_p50_s"] >= 0.2
    assert summary["latency_p99_s"] >= summary["latency_p50_s"]
    events = _parse(sink.lines)
    # One lazy mid-run emission (crossing t=1.0) plus the final snapshot.
    assert [e["event"] for e in events] == ["latency", "latency"]
    assert events[-1]["final"] is True


def test_latency_probe_ignores_duplicate_deliveries():
    probe = LatencyDistributionMonitor(emit_interval_s=0.0)
    clock, stats, _ = _tapped(probe)
    stats.register_flow(1, 1, BROADCAST, mode="broadcast")
    packet = make_data_packet("app", 1, BROADCAST, flow_id=1, seq=1)
    stats.data_originated(packet, expected_receivers=2)
    clock.now = 0.5
    stats.data_delivered(packet, 0.5, receiver=2)
    stats.data_delivered(packet, 0.5, receiver=2)  # dedup-suppressed duplicate
    assert probe.sketch.count == 1


def test_timeseries_probe_buckets_and_pdr():
    probe = TimeSeriesMonitor(bucket_s=1.0)
    clock, stats, sink = _tapped(probe)
    packet = make_data_packet("app", 1, 2, flow_id=1, seq=1)
    stats.data_originated(packet)
    clock.now = 0.4
    stats.data_delivered(packet, 0.4)
    clock.now = 0.9
    stats.collision(3)
    # Crossing into bucket 2 flushes bucket 0; bucket 1 stays empty and is
    # skipped entirely.
    clock.now = 2.5
    stats.ttl_drop()
    summary = probe.finalize(3.0)
    events = _parse(sink.lines)
    buckets = [e for e in events if e["event"] == "bucket"]
    assert [b["bucket"] for b in buckets] == [0, 2]
    assert buckets[0]["originated"] == 1
    assert buckets[0]["delivered"] == 1
    assert buckets[0]["collisions"] == 3
    assert buckets[0]["pdr"] == 1.0
    assert buckets[1]["dropped"] == 1
    assert summary["timeseries_buckets"] == 2.0
    assert summary["timeseries_peak_collisions"] == 3.0


def test_heatmap_probe_grids_by_sender_position():
    probe = TransmissionHeatmapMonitor(cell_size_m=100.0)
    clock, _, sink = _tapped(probe)
    tap = EventTap(clock, [probe])
    packet = make_data_packet("app", 1, 2, flow_id=1, seq=1)
    tap.transmission(packet, 1, Vec2(10.0, 10.0))
    tap.transmission(packet, 1, Vec2(90.0, 10.0))  # same 100 m cell
    tap.transmission(packet, 2, Vec2(250.0, -20.0))
    summary = probe.finalize(1.0)
    assert summary == {
        "heatmap_active_cells": 2.0,
        "heatmap_total_tx": 3.0,
        "heatmap_peak_cell_tx": 2.0,
    }
    (event,) = _parse(sink.lines)
    assert event["cells"] == [[0, 0, 2], [2, -1, 1]]


def test_probes_validate_constructor_parameters():
    with pytest.raises(ValueError, match="bucket_s"):
        TimeSeriesMonitor(bucket_s=0.0)
    with pytest.raises(ValueError, match="cell_size_m"):
        TransmissionHeatmapMonitor(cell_size_m=-1.0)


def test_untapped_collector_pays_only_the_none_check():
    # The seam's zero-cost contract: a collector without a tap runs every
    # counter method without touching monitor machinery.
    stats = StatsCollector()
    assert stats.tap is None
    packet = make_data_packet("app", 1, 2, flow_id=1, seq=1)
    stats.data_originated(packet)
    stats.data_delivered(packet, 0.1)
    stats.collision()
    stats.ttl_drop()
    assert stats.total_delivered == 1
