"""The application-workload interface.

A :class:`Workload` turns a scenario into offered traffic: it registers
application flows with the statistics collector and schedules sends through
the protocol API (or, for single-hop broadcast traffic, directly through the
MAC).  Workloads are resolved by name through the registry
(:mod:`repro.workloads.registry`), the same way protocols and scenario kinds
are -- the runner never hardcodes a traffic shape.

The contract mirrors the scenario builders: :meth:`Workload.build` receives
the declarative :class:`~repro.harness.scenario.Scenario`, the instantiated
:class:`~repro.harness.runner.BuiltScenario` (nodes, network, stats, sim) and
the simulator's seeded ``"traffic"`` random stream.  Every stochastic choice
a workload makes must draw from that stream so runs are byte-identical per
scenario seed, serial or parallel.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for typing only
    from repro.harness.runner import BuiltScenario
    from repro.harness.scenario import Scenario
    from repro.sim.node import Node

from abc import ABC, abstractmethod


class Workload(ABC):
    """Base class for application-traffic generators.

    One instance describes one traffic shape (its parameters are constructor
    keywords, surfaced through ``Scenario.workload_params``); :meth:`build`
    instantiates that shape against a built scenario.  A workload object is
    stateless across runs except for what :meth:`build` installs on the run's
    own objects, so one instance may be reused for several runs.
    """

    #: Registry key; set by the ``@register_workload`` decorator.
    workload_name: str = "base"

    @abstractmethod
    def build(
        self, scenario: "Scenario", built: "BuiltScenario", rng: random.Random
    ) -> List[Dict[str, float]]:
        """Register flows and schedule this run's application sends.

        Args:
            scenario: The declarative scenario (duration, flow shim, radio).
            built: The instantiated scenario; protocols are already attached
                but the network has not started yet.
            rng: The simulator's ``"traffic"`` stream -- the only source of
                randomness a workload may use.

        Returns:
            One descriptor dictionary per created flow (``flow_id``,
            ``source``, ``destination``); the runner keeps them for derived
            metrics and reporting.
        """

    def extra_metrics(self, built: "BuiltScenario") -> Dict[str, float]:
        """Workload-specific derived metrics, merged into ``RunResult.extra``.

        Called after the simulation has drained; the default contributes
        nothing.
        """
        return {}

    # ----------------------------------------------------------------- helpers
    def send_unicast(
        self,
        built: "BuiltScenario",
        source: "Node",
        destination: "Node",
        size_bytes: int,
        flow_id: int,
        seq: int,
    ) -> None:
        """Originate one unicast data packet through the routing protocol.

        Samples the ideal (straight-line) hop count at the send instant so
        the runner can derive the path stretch of delivered packets.
        """
        built.ideal_hop_samples[(source.node_id, flow_id, seq)] = self.ideal_hops(
            built, source, destination
        )
        if source.protocol is not None:
            source.protocol.send_data(
                destination.node_id, size_bytes=size_bytes, flow_id=flow_id, seq=seq
            )

    @staticmethod
    def ideal_hops(built: "BuiltScenario", source: "Node", destination: "Node") -> float:
        """Lower bound on hop count: straight-line distance over the radio range.

        The range is the *resolved* radio stack's nominal range
        (``built.radio_range_m``), so the estimate tracks whichever channel
        the run actually uses, not the legacy unit-disk shim.
        """
        range_m = built.radio_range_m
        distance = source.position.distance_to(destination.position)
        return max(1.0, math.ceil(distance / max(range_m, 1.0)))

    @staticmethod
    def pick_pair(rng: random.Random, count: int) -> tuple:
        """Draw a (source, destination) index pair with distinct endpoints."""
        source = rng.randrange(count)
        destination = rng.randrange(count)
        while destination == source:
            destination = rng.randrange(count)
        return source, destination

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}()"
