"""Yan ticket-based probing with stability constraint (TBP-SS, paper ref. [27]).

Yan et al. replace brute-force flooded discovery with *selective probing*: the
source issues a small number of tickets; each probe travels hop by hop, and
every node forwards it only to its few most *stable* neighbours (ranked by
expected link duration computed from the probabilistic link model),
splitting its tickets among them.  The destination answers the probe whose
path has the best bottleneck stability, and data follows that source route.
Because only a handful of probes exist per discovery, the control overhead is
O(tickets x path length) instead of O(network size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.stability import LinkStabilityModel
from repro.core.taxonomy import Category, register_protocol
from repro.geometry import Vec2
from repro.protocols.mobility_based.lifetime_routing import (
    PathDiscoveryConfig,
    PathMetricDiscoveryProtocol,
)
from repro.protocols.neighbors import NeighborEntry
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import Packet


@dataclass
class YanTbpConfig(PathDiscoveryConfig):
    """Ticket-based probing parameters.

    Attributes:
        tickets: Number of probes the source issues per discovery.
        max_fanout: Maximum neighbours one node forwards a probe to.
        communication_range_m: Range parameter of the stability model.
        relative_speed_std_mps: Calibrated relative-speed spread of the
            stability model (the "certain traffic" the model is tuned for).
    """

    tickets: int = 3
    max_fanout: int = 2
    communication_range_m: float = 250.0
    relative_speed_std_mps: float = 2.0
    #: Hop budget of a probe.  Probes that miss the destination must die out
    #: quickly -- an unbounded probe would wander the platoon and erase the
    #: cost advantage over flooded discovery.
    probe_ttl: int = 12


@register_protocol(
    "Yan-TBP",
    Category.PROBABILITY,
    "Ticket-based probing: a few probes follow the most stable links (expected link "
    "duration from a probability model) instead of flooding.",
    paper_reference="[27], Sec. VII.B",
)
class YanTbpProtocol(PathMetricDiscoveryProtocol):
    """Ticket-based probing with stability-constrained path selection."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[YanTbpConfig] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else YanTbpConfig())
        cfg: YanTbpConfig = self.config  # type: ignore[assignment]
        self.stability = LinkStabilityModel(
            communication_range=cfg.communication_range_m,
            relative_speed_std=cfg.relative_speed_std_mps,
        )

    # ------------------------------------------------------- metric and score
    def link_metric(
        self,
        previous_position: Vec2,
        previous_velocity: Vec2,
        own_position: Vec2,
        own_velocity: Vec2,
        headers: dict,
    ) -> float:
        """Expected duration (stability) of the link the probe just crossed."""
        return self.stability.expected_duration(
            previous_position, previous_velocity, own_position, own_velocity
        )

    def path_score(self, metric: float, path: List[int]) -> float:
        """Best bottleneck stability wins; shorter paths break ties."""
        return metric - 1e-3 * len(path)

    # ----------------------------------------------------- selective probing
    def _start_discovery(self, destination: int, retries: int) -> None:
        """Issue up to ``tickets`` probes to the most stable neighbours."""
        cfg: YanTbpConfig = self.config  # type: ignore[assignment]
        self._request_id += 1
        self._discoveries[destination] = {"started": self.now, "retries": retries}
        self.stats.route_discovery_started()
        candidates = self._stable_neighbors(
            exclude=[self.node.node_id], toward=self._target_position(destination)
        )
        if not candidates:
            # No neighbours known yet: fall back to one broadcast probe so the
            # discovery can still succeed right after start-up.
            request = self._make_probe(destination, cfg.tickets)
            self.broadcast(request)
        else:
            chosen = candidates[: cfg.tickets]
            share = max(1, cfg.tickets // max(1, len(chosen)))
            for entry in chosen:
                probe = self._make_probe(destination, share)
                self.unicast(probe, entry.node_id)
        self.sim.schedule(
            self.config.discovery_timeout_s, self._discovery_timeout, destination
        )

    def _make_probe(self, destination: int, tickets: int) -> Packet:
        cfg: YanTbpConfig = self.config  # type: ignore[assignment]
        probe = self.make_control(
            "MREQ",
            size_bytes=self.config.request_size_bytes,
            request_id=self._request_id,
            origin=self.node.node_id,
            target=destination,
            path=[self.node.node_id],
            metric=self.initial_metric(),
            prev_x=self.node.position.x,
            prev_y=self.node.position.y,
            prev_vx=self.node.velocity.x,
            prev_vy=self.node.velocity.y,
            origin_group="",
            tickets=tickets,
        )
        probe.ttl = cfg.probe_ttl
        return probe

    def _handle_request(self, packet: Packet, sender_id: int) -> None:
        """Forward the probe to the most stable next neighbours (ticket split)."""
        headers = packet.headers
        origin = headers["origin"]
        if origin == self.node.node_id:
            return
        path: List[int] = list(headers["path"])
        if self.node.node_id in path:
            return
        previous_position = Vec2(headers["prev_x"], headers["prev_y"])
        previous_velocity = Vec2(headers["prev_vx"], headers["prev_vy"])
        link_value = self.link_metric(
            previous_position, previous_velocity, self.node.position, self.node.velocity, headers
        )
        metric = self.accumulate_metric(headers["metric"], link_value)
        path.append(self.node.node_id)
        target = headers["target"]
        if target == self.node.node_id:
            self._collect_reply_candidate(origin, headers["request_id"], path, metric)
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        cfg: YanTbpConfig = self.config  # type: ignore[assignment]
        tickets = int(headers.get("tickets", 1))
        # If the probed destination is already a fresh neighbour, hand the
        # probe straight to it instead of splitting further tickets.
        if self.beacons.table.contains(target, self.now):
            forwarded = packet.forwarded()
            forwarded.headers.update(
                path=list(path),
                metric=metric,
                prev_x=self.node.position.x,
                prev_y=self.node.position.y,
                prev_vx=self.node.velocity.x,
                prev_vy=self.node.velocity.y,
                tickets=1,
            )
            self.unicast(forwarded, target)
            return
        destination_position = self._target_position(target)
        candidates = self._stable_neighbors(
            exclude=path + [sender_id],
            toward=destination_position,
            require_progress=True,
        )
        if not candidates:
            # No neighbour makes progress toward the destination: the ticket
            # dies here rather than wandering the platoon (selective probing,
            # not a random walk).
            return
        fanout = min(cfg.max_fanout, max(1, tickets), len(candidates))
        share = max(1, tickets // fanout)
        for entry in candidates[:fanout]:
            forwarded = packet.forwarded()
            forwarded.headers.update(
                path=list(path),
                metric=metric,
                prev_x=self.node.position.x,
                prev_y=self.node.position.y,
                prev_vx=self.node.velocity.x,
                prev_vy=self.node.velocity.y,
                tickets=share,
            )
            self.unicast(forwarded, entry.node_id)

    def _target_position(self, target: int) -> Optional[Vec2]:
        """Best-known position of the probed destination (None when unknown).

        The original protocol learns destination coordinates from the request
        initiator (GPS-equipped vehicles); the reproduction reads them from
        the shared location oracle the geographic protocols also use.
        """
        if not self.network.has_node(target):
            return None
        return self.network.node(target).position

    def _stable_neighbors(
        self,
        exclude: List[int],
        toward: Optional[Vec2] = None,
        require_progress: bool = False,
    ) -> List[NeighborEntry]:
        """Neighbours sorted by decreasing expected link duration.

        When ``toward`` is given, neighbours that make geographic progress
        toward it are preferred (tickets head toward the destination and the
        stability constraint ranks among them).  With ``require_progress``
        (used when forwarding tickets) non-progressing neighbours are never
        used; without it (the origin's first hop) they are a fallback.
        """
        excluded = set(exclude)
        progressing = []
        others = []
        own_distance = (
            self.node.position.distance_to(toward) if toward is not None else 0.0
        )
        for entry in self.beacons.neighbors():
            if entry.node_id in excluded:
                continue
            stability = self.stability.expected_duration(
                self.node.position, self.node.velocity, entry.position, entry.velocity
            )
            if toward is not None:
                progress = own_distance - entry.predicted_position(self.now).distance_to(toward)
                if progress > 0:
                    # Rank by stability weighted by progress so probes prefer
                    # stable links that also shorten the remaining path
                    # (stability alone produces meandering many-hop probes).
                    progressing.append((stability * progress, entry))
                else:
                    others.append((stability, entry))
            else:
                progressing.append((stability, entry))
        progressing.sort(key=lambda item: item[0], reverse=True)
        others.sort(key=lambda item: item[0], reverse=True)
        if require_progress:
            ordered = progressing
        else:
            ordered = progressing if progressing else others
        return [entry for _, entry in ordered]
