"""E5 -- Fig. 5: infrastructure (RSU) routing.

Fig. 5 shows road-side units bridging vehicles over a wired backbone.  The
measurable claims of Sec. V / Table I are: with RSUs deployed, delivery in
sparse traffic is high (the backbone relays and buffers packets); without
them ("rural area"), delivery collapses to whatever pure vehicle-to-vehicle
forwarding achieves; and the price is the deployed hardware (RSUs per km)
plus backbone traffic.

Expected shape: delivery ratio increases monotonically with RSU density;
the no-RSU point is the worst; backbone transmissions and RSU count grow as
the spacing shrinks.
"""

from __future__ import annotations

from repro.mobility.generator import TrafficDensity

from benchmarks.common import RUNNER, report, run_once, small_highway

#: RSU spacings swept (None = no infrastructure, the rural case).
SPACINGS = [None, 1500.0, 1000.0, 500.0, 250.0]


def _run_rsu_sweep():
    results = []
    for spacing in SPACINGS:
        scenario = small_highway(
            TrafficDensity.SPARSE,
            duration_s=25.0,
            max_vehicles=60,
            flows=5,
            seed=31,
            rsu_spacing_m=spacing,
        )
        label = "none" if spacing is None else f"{int(spacing)}m"
        scenario = scenario.with_overrides(name=f"sparse-rsu-{label}")
        results.append((spacing, RUNNER.run(scenario, "RSU-Relay")))
    return results


def test_fig5_rsu_density_sweep(benchmark):
    """Delivery vs. RSU deployment density in sparse traffic."""
    results = run_once(benchmark, _run_rsu_sweep)

    rows = []
    for spacing, result in results:
        summary = result.summary
        rows.append(
            {
                "rsu_spacing_m": 0 if spacing is None else spacing,
                "rsus_deployed": result.rsu_count,
                "delivery_ratio": summary["delivery_ratio"],
                "mean_delay_s": summary["mean_delay_s"],
                "backbone_tx": summary["backbone_transmissions"],
                "rsu_buffered_packets": summary["store_carry_events"],
                "control_tx": summary["control_transmissions"],
            }
        )
    report(
        "fig5_infrastructure",
        rows,
        title="Fig. 5 -- RSU relay routing in sparse traffic vs. deployment density",
    )

    by_spacing = {row["rsu_spacing_m"]: row for row in rows}
    no_rsu = by_spacing[0]
    densest = by_spacing[250.0]
    dense = by_spacing[500.0]
    mid = by_spacing[1000.0]
    # Infrastructure rescues sparse traffic: full coverage clearly beats the
    # rural (no-RSU) baseline, and the best-covered deployments are the best
    # performers overall.
    best_with_rsus = max(densest["delivery_ratio"], dense["delivery_ratio"])
    assert best_with_rsus > no_rsu["delivery_ratio"] + 0.1
    assert densest["delivery_ratio"] >= no_rsu["delivery_ratio"]
    assert densest["delivery_ratio"] >= mid["delivery_ratio"] - 0.05
    # ...but costs hardware and backbone traffic.
    assert densest["rsus_deployed"] > mid["rsus_deployed"] > 0
    assert no_rsu["rsus_deployed"] == 0
    assert no_rsu["backbone_tx"] == 0
    assert densest["backbone_tx"] > 0
