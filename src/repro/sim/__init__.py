"""Discrete-event packet-level network simulator.

This package is the substrate every routing protocol in the reproduction runs
on.  It provides:

* :class:`~repro.sim.engine.Simulator` -- the event loop and clock.
* :class:`~repro.sim.rng.RandomStreams` -- named, reproducible random streams.
* :class:`~repro.sim.packet.Packet` -- the unit of transmission.
* :class:`~repro.sim.node.Node` -- a network node (vehicle, RSU or bus).
* :class:`~repro.sim.medium.WirelessMedium` -- the shared broadcast channel.
* :class:`~repro.sim.network.Network` -- glue that assembles nodes, medium
  and mobility into a runnable simulation.
* :class:`~repro.sim.statistics.StatsCollector` -- metric collection.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.medium import WirelessMedium
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, StaticPositionProvider
from repro.sim.packet import BROADCAST, Packet, PacketKind
from repro.sim.rng import RandomStreams
from repro.sim.statistics import FlowStats, StatsCollector
from repro.sim.trace import EventTrace, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "WirelessMedium",
    "Network",
    "NetworkConfig",
    "Node",
    "StaticPositionProvider",
    "BROADCAST",
    "Packet",
    "PacketKind",
    "RandomStreams",
    "FlowStats",
    "StatsCollector",
    "EventTrace",
    "TraceRecord",
]
