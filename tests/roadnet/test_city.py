"""Tests for the synthetic arterial+grid city generator."""

import pytest

from repro.geometry import Vec2
from repro.roadnet.city import (
    CityConfig,
    arterial_intersections,
    build_city_graph,
    place_city_rsus,
)


class TestCityGraph:
    def test_dimensions_and_counts(self):
        config = CityConfig(blocks_x=4, blocks_y=3, block_size_m=100.0)
        graph = build_city_graph(config)
        assert len(graph.intersections) == 5 * 4
        # Horizontal segments: blocks_x per row x rows; vertical: blocks_y
        # per column x columns.
        assert len(graph.segments) == 4 * 4 + 3 * 5

    def test_arterials_get_wider_faster_roads(self):
        config = CityConfig(blocks_x=4, blocks_y=4, block_size_m=100.0, arterial_every=2)
        graph = build_city_graph(config)
        # Street row 0 is an arterial line; row 1 is a local street.
        arterial = graph.segment_between("I0_0", "I1_0")
        local = graph.segment_between("I0_1", "I1_1")
        assert arterial.lanes == config.arterial_lanes
        assert arterial.speed_limit_mps == config.arterial_speed_mps
        assert local.lanes == config.street_lanes
        assert local.speed_limit_mps == config.street_speed_mps

    def test_no_arterials_when_disabled(self):
        config = CityConfig(blocks_x=2, blocks_y=2, arterial_every=0)
        graph = build_city_graph(config)
        assert arterial_intersections(config) == []
        for segment in graph.segments:
            assert segment.lanes == config.street_lanes

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ValueError):
            build_city_graph(CityConfig(blocks_x=0))


class TestCityRsuPlacement:
    def test_no_spacing_no_rsus(self):
        config = CityConfig()
        graph = build_city_graph(config)
        assert place_city_rsus(config, graph, 0.0) == []
        assert place_city_rsus(config, graph, float("inf")) == []

    def test_spacing_equal_to_arterial_spacing_covers_all_crossings(self):
        config = CityConfig(blocks_x=10, blocks_y=10, block_size_m=200.0, arterial_every=5)
        graph = build_city_graph(config)
        positions = place_city_rsus(config, graph, 1000.0)
        assert len(positions) == len(arterial_intersections(config)) == 9

    def test_wider_spacing_strides_the_crossing_lattice_spatially(self):
        """Regression: striding a flattened sorted name list selected
        spatially adjacent crossings; the stride must apply independently
        per axis so the realised spacing honours the request."""
        config = CityConfig(blocks_x=20, blocks_y=20, block_size_m=100.0, arterial_every=2)
        graph = build_city_graph(config)
        positions = place_city_rsus(config, graph, 400.0)
        assert positions
        min_separation = min(
            a.distance_to(b)
            for i, a in enumerate(positions)
            for b in positions[i + 1:]
        )
        assert min_separation >= 400.0

    def test_area_coverage_when_arterials_disabled(self):
        config = CityConfig(
            blocks_x=5, blocks_y=5, block_size_m=200.0, rsu_on_arterials_only=False
        )
        graph = build_city_graph(config)
        positions = place_city_rsus(config, graph, 500.0)
        assert positions
        for position in positions:
            assert 0.0 <= position.x <= config.width_m
            assert 0.0 <= position.y <= config.height_m
