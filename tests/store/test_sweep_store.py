"""sweep_replications(store=...): resume, cache hits, shards, equivalence."""

import sys

import pytest

from repro.harness.reporting import sweep_from_store
from repro.harness.scenario import Scenario, highway_scenario
from repro.harness.sweep import build_matrix, sweep_replications
from repro.mobility.generator import TrafficDensity
from repro.store.keys import cell_key, code_version
from repro.store.store import ExperimentStore, union_stores

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="process-pool tests assume a POSIX fork context"
)


def _tiny_scenario(name: str = "tiny") -> Scenario:
    return highway_scenario(
        TrafficDensity.SPARSE,
        name=name,
        duration_s=6.0,
        max_vehicles=15,
        default_flow_count=2,
    )


def _strip(record):
    payload = record.to_dict()
    payload["wall_clock_s"] = 0.0
    return payload


class TestResume:
    def test_warm_rerun_executes_zero_cells(self, tmp_path):
        scenario = _tiny_scenario()
        first = sweep_replications(
            [scenario], ["Greedy"], [1, 2], store=tmp_path / "store"
        )
        assert (first.executed_cells, first.reused_cells) == (2, 0)
        second = sweep_replications(
            [scenario], ["Greedy"], [1, 2], store=tmp_path / "store"
        )
        assert (second.executed_cells, second.reused_cells) == (0, 2)
        assert [_strip(a) for a in first.records] == [_strip(b) for b in second.records]
        assert [c.to_dict() for c in first.replicated] == [
            c.to_dict() for c in second.replicated
        ]

    def test_partial_store_resumes_only_missing_cells(self, tmp_path):
        scenario = _tiny_scenario()
        cells = build_matrix([scenario], ["Greedy", "Flooding"], [1, 2])
        reference = sweep_replications([scenario], ["Greedy", "Flooding"], [1, 2])
        # Pre-seed the store with two of the four cells, as an interrupted
        # run would have left it.
        code = code_version()
        store = ExperimentStore(tmp_path / "store")
        for cell, record in list(zip(cells, reference.records))[:2]:
            store.append(cell_key(cell.scenario, cell.protocol, None, code), record)
        resumed = sweep_replications(
            [scenario], ["Greedy", "Flooding"], [1, 2], store=store
        )
        assert (resumed.executed_cells, resumed.reused_cells) == (2, 2)
        assert [_strip(a) for a in resumed.records] == [
            _strip(b) for b in reference.records
        ]
        assert [c.to_dict() for c in resumed.replicated] == [
            c.to_dict() for c in reference.replicated
        ]

    def test_no_resume_reexecutes_everything(self, tmp_path):
        scenario = _tiny_scenario()
        sweep_replications([scenario], ["Greedy"], [1], store=tmp_path / "store")
        forced = sweep_replications(
            [scenario], ["Greedy"], [1], store=tmp_path / "store", resume=False
        )
        assert (forced.executed_cells, forced.reused_cells) == (1, 0)
        store = ExperimentStore(tmp_path / "store")
        report = store.verify()
        assert report.record_count == 2  # appended twice, one duplicated key
        assert report.duplicate_keys == 1

    def test_storeless_sweep_reports_everything_executed(self):
        result = sweep_replications([_tiny_scenario()], ["Greedy"], [1, 2])
        assert (result.executed_cells, result.reused_cells) == (2, 0)


class TestStoreEquivalence:
    def test_serial_and_parallel_stores_are_byte_identical(self, tmp_path):
        scenario = _tiny_scenario()
        sweep_replications(
            [scenario], ["Greedy", "Flooding"], [1, 2], store=tmp_path / "serial"
        )
        sweep_replications(
            [scenario],
            ["Greedy", "Flooding"],
            [1, 2],
            store=tmp_path / "parallel",
            workers=2,
        )
        serial = ExperimentStore(tmp_path / "serial")
        parallel = ExperimentStore(tmp_path / "parallel")
        assert serial.content_digest() == parallel.content_digest()
        # Same records in the same (matrix) append order, too.
        assert [key for key, _ in serial.entries()] == [
            key for key, _ in parallel.entries()
        ]

    def test_shared_mobility_store_matches_plain(self, tmp_path):
        scenario = _tiny_scenario()
        sweep_replications([scenario], ["Greedy"], [1, 2], store=tmp_path / "plain")
        sweep_replications(
            [scenario],
            ["Greedy"],
            [1, 2],
            store=tmp_path / "staged",
            shared_mobility=True,
            workers=2,
        )
        assert (
            ExperimentStore(tmp_path / "plain").content_digest()
            == ExperimentStore(tmp_path / "staged").content_digest()
        )

    def test_union_of_shards_equals_full_store(self, tmp_path):
        scenario = _tiny_scenario()
        full = sweep_replications(
            [scenario], ["Greedy", "Flooding"], [1, 2], store=tmp_path / "full"
        )
        shard_results = [
            sweep_replications(
                [scenario],
                ["Greedy", "Flooding"],
                [1, 2],
                store=tmp_path / f"shard{i}",
                shard=f"{i}/3",
            )
            for i in (1, 2, 3)
        ]
        assert sum(result.executed_cells for result in shard_results) == 4
        union = ExperimentStore(tmp_path / "union")
        union_stores(
            union, [ExperimentStore(tmp_path / f"shard{i}") for i in (1, 2, 3)]
        )
        assert union.content_digest() == ExperimentStore(
            tmp_path / "full"
        ).content_digest()
        assert len(union) == len(full.records)

    def test_shard_without_store_filters_cells(self):
        scenario = _tiny_scenario()
        results = [
            sweep_replications([scenario], ["Greedy", "Flooding"], [1, 2], shard=(i, 2))
            for i in (1, 2)
        ]
        assert sum(len(result.records) for result in results) == 4

    def test_bad_shard_tuple_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            sweep_replications([_tiny_scenario()], ["Greedy"], [1], shard=(3, 2))


class TestSweepFromStore:
    def test_aggregates_match_the_sweep(self, tmp_path):
        scenario = _tiny_scenario()
        result = sweep_replications(
            [scenario], ["Greedy", "Flooding"], [1, 2], store=tmp_path / "store"
        )
        loaded = sweep_from_store(tmp_path / "store")
        assert [_strip(a) for a in loaded.records] == [
            _strip(b) for b in result.records
        ]
        assert [c.to_dict() for c in loaded.replicated] == [
            c.to_dict() for c in result.replicated
        ]

    def test_reads_partial_store_mid_run(self, tmp_path):
        scenario = _tiny_scenario()
        cells = build_matrix([scenario], ["Greedy"], [1, 2])
        reference = sweep_replications([scenario], ["Greedy"], [1, 2])
        code = code_version()
        store = ExperimentStore(tmp_path / "store")
        store.append(
            cell_key(cells[0].scenario, cells[0].protocol, None, code),
            reference.records[0],
        )
        partial = sweep_from_store(tmp_path / "store")
        assert len(partial.records) == 1
        assert partial.replicated[0].replications == 1
