"""Probability-model-based routing protocols (paper Sec. VII).

A probability model of the wireless link (its existence, its residual
duration, or the receipt probability of a frame) is the routing metric.
Links are probed *selectively* rather than flooded, which makes these
protocols efficient -- but the model is calibrated for particular traffic
conditions and degrades when reality deviates from it (Table I: "only
working for a certain traffic").
"""

from repro.protocols.probability.car import CarConfig, CarProtocol
from repro.protocols.probability.gvgrid import GvGridConfig, GvGridProtocol
from repro.protocols.probability.niude import NiuDeConfig, NiuDeProtocol
from repro.protocols.probability.rear import RearConfig, RearProtocol
from repro.protocols.probability.scored_forwarding import (
    ScoredForwardingConfig,
    ScoredForwardingProtocol,
)
from repro.protocols.probability.yan_tbp import YanTbpConfig, YanTbpProtocol

__all__ = [
    "CarConfig",
    "CarProtocol",
    "GvGridConfig",
    "GvGridProtocol",
    "NiuDeConfig",
    "NiuDeProtocol",
    "RearConfig",
    "RearProtocol",
    "ScoredForwardingConfig",
    "ScoredForwardingProtocol",
    "YanTbpConfig",
    "YanTbpProtocol",
]
