"""E1 -- Fig. 1: the five-category taxonomy of VANET routing protocols.

The paper's Fig. 1 is a tree mapping protocols to the five routing-metric
categories.  This benchmark regenerates that mapping from the implementation
itself: every protocol class registers its category, and every category must
be populated.  The timing measures how long instantiating one protocol of
every kind on a small network takes (the "cost of the taxonomy").
"""

from __future__ import annotations

from repro.core.taxonomy import Category, global_registry
from repro.protocols.registry import available_protocols, make_protocol_factory
from repro.harness.runner import ExperimentRunner
from repro.mobility.generator import TrafficDensity

from benchmarks.common import report, run_once, small_highway


def _instantiate_every_protocol():
    runner = ExperimentRunner()
    scenario = small_highway(TrafficDensity.SPARSE, max_vehicles=12, duration_s=1.0, flows=0)
    built = runner.build(scenario)
    instances = []
    for name in available_protocols():
        factory = make_protocol_factory(name, road_graph=built.road_graph)
        instances.append(factory(built.vehicle_nodes[0]))
    return instances


def test_fig1_taxonomy(benchmark):
    """Regenerate Fig. 1: every implemented protocol and its category."""
    instances = run_once(benchmark, _instantiate_every_protocol)
    assert len(instances) == len(available_protocols())

    rows = global_registry.as_table()
    report(
        "fig1_taxonomy",
        rows,
        columns=["category", "protocol", "reference", "description"],
        title="Fig. 1 -- taxonomy of implemented VANET routing protocols",
    )

    # The reproduction covers every category of Fig. 1 with >= 2 protocols.
    for category in Category:
        members = global_registry.in_category(category)
        assert len(members) >= 2, f"category {category.value} under-populated"
    # And every registered protocol can actually be constructed.
    assert {type(p).protocol_name for p in instances} == set(available_protocols())
