"""Packet model.

The paper's surveyed protocols exchange two kinds of packets (Sec. III.A):
*control* packets (HELLO, RREQ, RREP, RERR, beacons, probes, tickets) and
*data* packets.  A single :class:`Packet` class models both; protocol-specific
fields travel in the ``headers`` dictionary so the simulator core stays
protocol-agnostic.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

#: Link-layer broadcast address.  A packet sent to ``BROADCAST`` is delivered
#: to every node that successfully receives the frame.
BROADCAST: int = -1

_uid_counter = itertools.count(1)

#: Types that deep-copy to themselves; header/payload values of these types
#: are shared, everything else is copied.
_ATOMIC_TYPES = frozenset({int, float, str, bool, bytes, type(None)})


def _copy_value(value: Any) -> Any:
    """Deep-copy a header/payload value, fast-pathing the common shapes.

    Equivalent to :func:`copy.deepcopy` for dicts, lists and atomic values
    (the overwhelming majority of header content); anything else falls back
    to deepcopy proper.  Frame delivery copies the packet once per receiver,
    so this sits on the hottest path in the simulator.
    """
    cls = value.__class__
    if cls is dict:
        return {key: _copy_value(item) for key, item in value.items()}
    if cls in _ATOMIC_TYPES:
        return value
    if cls is list:
        return [_copy_value(item) for item in value]
    return copy.deepcopy(value)


class PacketKind(Enum):
    """Coarse classification used by the statistics collector."""

    DATA = "data"
    CONTROL = "control"


@dataclass
class Packet:
    """A network-layer packet.

    Attributes:
        uid: Globally unique identifier of this packet instance.
        kind: Data or control (drives the overhead accounting).
        protocol: Name of the routing protocol that created the packet.
        ptype: Protocol-specific type, e.g. ``"RREQ"``, ``"HELLO"``, ``"DATA"``.
        source: Node id of the original sender (end-to-end).
        destination: Node id of the final destination, or :data:`BROADCAST`.
        size_bytes: Size used for transmission-duration and overhead accounting.
        created_at: Simulation time at which the packet was originated.
        ttl: Remaining hop budget; decremented at each forward.
        hop_count: Number of hops traversed so far.
        flow_id: Identifier of the application flow (data packets only).
        seq: Application/flow sequence number (data packets only).
        headers: Protocol-specific header fields.
        payload: Opaque application payload description.
        rx_power_dbm: Receiver-side metadata -- the signal strength at which
            this copy of the packet was received, stamped by the medium on
            delivery.  ``None`` while the packet is in flight.
    """

    kind: PacketKind
    protocol: str
    ptype: str
    source: int
    destination: int
    size_bytes: int = 512
    created_at: float = 0.0
    ttl: int = 64
    hop_count: int = 0
    flow_id: Optional[int] = None
    seq: Optional[int] = None
    headers: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    rx_power_dbm: Optional[float] = None
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def copy(self, **overrides: Any) -> "Packet":
        """Return a copy with a fresh uid, optionally overriding fields.

        Forwarding a packet across a hop conceptually creates a new frame, so
        copies always receive a new ``uid``; the end-to-end identity of a data
        packet is ``(source, flow_id, seq)`` and of a control packet whatever
        the protocol puts in its headers (e.g. an RREQ id).

        The medium calls this once per delivered frame, so the copy is
        hand-rolled (``dataclasses.replace`` re-runs field resolution per
        call) with headers and payload duplicated through the deepcopy fast
        path above.
        """
        fresh = object.__new__(self.__class__)
        state = fresh.__dict__
        state.update(self.__dict__)
        headers = state["headers"]
        if headers:
            state["headers"] = {key: _copy_value(item) for key, item in headers.items()}
        else:
            state["headers"] = {}
        payload = state["payload"]
        if payload:
            state["payload"] = {key: _copy_value(item) for key, item in payload.items()}
        else:
            state["payload"] = {}
        state["uid"] = next(_uid_counter)
        if overrides:
            state.update(overrides)
        return fresh

    def forwarded(self) -> "Packet":
        """Copy of this packet with the hop count incremented and TTL decremented."""
        return self.copy(hop_count=self.hop_count + 1, ttl=self.ttl - 1)

    @property
    def is_data(self) -> bool:
        """True for application data packets."""
        return self.kind is PacketKind.DATA

    @property
    def is_control(self) -> bool:
        """True for routing control packets."""
        return self.kind is PacketKind.CONTROL

    @property
    def flow_key(self) -> tuple[int, Optional[int], Optional[int]]:
        """End-to-end identity of a data packet: ``(source, flow_id, seq)``."""
        return (self.source, self.flow_id, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Packet(uid={self.uid}, {self.protocol}/{self.ptype}, "
            f"{self.source}->{self.destination}, hops={self.hop_count}, ttl={self.ttl})"
        )


def make_data_packet(
    protocol: str,
    source: int,
    destination: int,
    *,
    size_bytes: int = 512,
    created_at: float = 0.0,
    flow_id: Optional[int] = None,
    seq: Optional[int] = None,
    ttl: int = 64,
    headers: Optional[Dict[str, Any]] = None,
) -> Packet:
    """Convenience constructor for an application data packet."""
    return Packet(
        kind=PacketKind.DATA,
        protocol=protocol,
        ptype="DATA",
        source=source,
        destination=destination,
        size_bytes=size_bytes,
        created_at=created_at,
        flow_id=flow_id,
        seq=seq,
        ttl=ttl,
        headers=dict(headers or {}),
    )


def make_control_packet(
    protocol: str,
    ptype: str,
    source: int,
    destination: int = BROADCAST,
    *,
    size_bytes: int = 64,
    created_at: float = 0.0,
    ttl: int = 64,
    headers: Optional[Dict[str, Any]] = None,
) -> Packet:
    """Convenience constructor for a routing control packet."""
    return Packet(
        kind=PacketKind.CONTROL,
        protocol=protocol,
        ptype=ptype,
        source=source,
        destination=destination,
        size_bytes=size_bytes,
        created_at=created_at,
        ttl=ttl,
        headers=dict(headers or {}),
    )
