"""String-keyed monitor registry -- the fifth registry.

Mirrors the protocol/scenario/workload/radio registries: monitor *kinds*
(classes) register under kebab-case names via :func:`register_monitor`,
named *presets* (pre-parameterised factories) via
:func:`register_monitor_preset`, and :func:`monitor_from_name` resolves
either -- preset first, kind second -- applying keyword overrides.

Monitors are a fixed per-run set, not a sweep axis: a sweep attaches the
same monitors to every cell via ``Scenario.monitors``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Type

from repro.monitors.base import Monitor

MONITOR_TYPES: Dict[str, Type[Monitor]] = {}


def register_monitor(name: str) -> Callable[[Type[Monitor]], Type[Monitor]]:
    """Class decorator registering a monitor kind under ``name``."""

    def decorator(cls: Type[Monitor]) -> Type[Monitor]:
        if name in MONITOR_TYPES:
            raise ValueError(f"monitor kind {name!r} is already registered")
        MONITOR_TYPES[name] = cls
        cls.monitor_name = name
        return cls

    return decorator


def unregister_monitor(name: str) -> None:
    """Remove a monitor kind (tests only)."""
    MONITOR_TYPES.pop(name, None)


def available_monitors() -> List[str]:
    """Sorted names of all registered monitor kinds."""
    return sorted(MONITOR_TYPES)


@dataclass(frozen=True)
class MonitorPreset:
    """A named, pre-parameterised monitor configuration."""

    name: str
    factory: Callable[..., Monitor]
    description: str
    kind: str = ""
    defaults: Dict[str, object] = field(default_factory=dict)

    def build(self, **overrides: object) -> Monitor:
        """Instantiate the preset's monitor, applying keyword overrides."""
        params = dict(self.defaults)
        params.update(overrides)
        return self.factory(**params)


MONITOR_PRESETS: Dict[str, MonitorPreset] = {}


def register_monitor_preset(
    name: str,
    factory: Callable[..., Monitor],
    description: str,
    kind: str = "",
    **defaults: object,
) -> MonitorPreset:
    """Register a named monitor preset; returns the preset object."""
    if name in MONITOR_PRESETS:
        raise ValueError(f"monitor preset {name!r} is already registered")
    preset = MonitorPreset(
        name=name, factory=factory, description=description, kind=kind, defaults=dict(defaults)
    )
    MONITOR_PRESETS[name] = preset
    return preset


def unregister_monitor_preset(name: str) -> None:
    """Remove a monitor preset (tests only)."""
    MONITOR_PRESETS.pop(name, None)


def available_monitor_presets() -> List[str]:
    """Sorted names of all registered monitor presets."""
    return sorted(MONITOR_PRESETS)


def monitor_from_name(spec: str, **params: object) -> Monitor:
    """Build a monitor from a preset or kind name, with keyword overrides.

    Presets win over kinds when both share a name (same precedence rule
    as the other registries).
    """
    preset = MONITOR_PRESETS.get(spec)
    if preset is not None:
        return preset.build(**params)
    cls = MONITOR_TYPES.get(spec)
    if cls is not None:
        return cls(**params)
    raise KeyError(
        f"unknown monitor {spec!r}; known kinds: {available_monitors()}, "
        f"presets: {available_monitor_presets()}"
    )


def monitor_rows() -> List[Dict[str, str]]:
    """One row per monitor kind (first docstring line), for the CLI table."""
    rows = []
    for name in available_monitors():
        doc = MONITOR_TYPES[name].__doc__ or ""
        rows.append(
            {
                "monitor": name,
                "description": doc.strip().splitlines()[0] if doc.strip() else "",
            }
        )
    return rows


def monitor_preset_rows() -> List[Dict[str, str]]:
    """One row per monitor preset, for the CLI table."""
    return [
        {"preset": preset.name, "monitor": preset.kind, "description": preset.description}
        for preset in (MONITOR_PRESETS[name] for name in available_monitor_presets())
    ]
