"""Mobility-based routing protocols (paper Sec. IV).

These protocols use relative mobility -- predicted link lifetime, travel
direction, speed -- as the routing metric, so that established paths avoid
links that are about to break.  The cost is neighbour-awareness overhead
(periodic beacons, kinematic fields in control packets), and the predictions
degrade in sparse or congested traffic.
"""

from repro.protocols.mobility_based.abedi import AbediConfig, AbediProtocol
from repro.protocols.mobility_based.lifetime_routing import (
    PathDiscoveryConfig,
    PathMetricDiscoveryProtocol,
)
from repro.protocols.mobility_based.pbr import PbrConfig, PbrProtocol
from repro.protocols.mobility_based.taleb import TalebConfig, TalebProtocol
from repro.protocols.mobility_based.wedde import WeddeConfig, WeddeProtocol

__all__ = [
    "AbediConfig",
    "AbediProtocol",
    "PathDiscoveryConfig",
    "PathMetricDiscoveryProtocol",
    "PbrConfig",
    "PbrProtocol",
    "TalebConfig",
    "TalebProtocol",
    "WeddeConfig",
    "WeddeProtocol",
]
