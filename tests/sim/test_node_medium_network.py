"""Tests for nodes, the wireless medium and network assembly."""

import pytest

from repro.geometry import Vec2
from repro.sim.node import Node, NodeKind, StaticPositionProvider
from repro.sim.packet import BROADCAST, make_data_packet
from tests.helpers import LinearMotionProvider, build_static_network, line_positions


class RecordingProtocol:
    """Minimal protocol stub that records what it receives."""

    def __init__(self):
        self.received = []
        self.backbone = []

    def start(self):  # pragma: no cover - not used by these tests
        pass

    def handle_packet(self, packet, sender_id):
        self.received.append((packet, sender_id))

    def handle_backbone_packet(self, packet, sender_id):
        self.backbone.append((packet, sender_id))


class TestNode:
    def test_static_node_kinematics(self):
        node = Node(1, StaticPositionProvider(Vec2(10, 20)))
        assert node.position == Vec2(10, 20)
        assert node.speed == 0.0
        assert node.heading == 0.0
        assert node.kind is NodeKind.VEHICLE
        assert not node.is_infrastructure

    def test_moving_node_reads_provider(self, sim):
        node = Node(1, LinearMotionProvider(sim, Vec2(0, 0), Vec2(10, 0)))
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert node.position.x == pytest.approx(20.0)
        assert node.speed == pytest.approx(10.0)

    def test_send_without_medium_raises(self):
        node = Node(1, StaticPositionProvider(Vec2(0, 0)))
        with pytest.raises(RuntimeError):
            node.send(make_data_packet("p", 1, 2))

    def test_distance_between_nodes(self):
        a = Node(1, StaticPositionProvider(Vec2(0, 0)))
        b = Node(2, StaticPositionProvider(Vec2(3, 4)))
        assert a.distance_to(b) == pytest.approx(5.0)


class TestMediumDelivery:
    def test_broadcast_reaches_nodes_in_range_only(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0), (600, 0)], comm_range=250.0
        )
        protocols = [RecordingProtocol() for _ in nodes]
        for node, protocol in zip(nodes, protocols):
            node.attach_protocol(protocol)
        nodes[0].send(make_data_packet("p", nodes[0].node_id, BROADCAST), BROADCAST)
        sim.run(until=1.0)
        assert len(protocols[1].received) == 1
        assert len(protocols[2].received) == 0
        assert len(protocols[0].received) == 0  # sender never hears itself

    def test_unicast_only_delivered_to_next_hop(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0), (150, 0)], comm_range=250.0
        )
        protocols = [RecordingProtocol() for _ in nodes]
        for node, protocol in zip(nodes, protocols):
            node.attach_protocol(protocol)
        nodes[0].send(make_data_packet("p", nodes[0].node_id, nodes[1].node_id), nodes[1].node_id)
        sim.run(until=1.0)
        assert len(protocols[1].received) == 1
        assert len(protocols[2].received) == 0

    def test_transmissions_are_counted(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (100, 0)])
        for node in nodes:
            node.attach_protocol(RecordingProtocol())
        nodes[0].send(make_data_packet("p", nodes[0].node_id, nodes[1].node_id), nodes[1].node_id)
        sim.run(until=1.0)
        assert stats.data_transmissions == 1

    def test_failed_unicast_is_retried_by_mac(self):
        # The destination is out of range, so the MAC retries and eventually
        # gives up; every attempt occupies the channel and is counted.
        sim, network, stats, nodes = build_static_network([(0, 0), (1000, 0)], comm_range=250.0)
        for node in nodes:
            node.attach_protocol(RecordingProtocol())
        nodes[0].send(make_data_packet("p", nodes[0].node_id, nodes[1].node_id), nodes[1].node_id)
        sim.run(until=2.0)
        mac = nodes[0].mac
        assert mac.unicast_retries == mac.config.max_unicast_retries
        assert mac.unicast_failures == 1
        assert stats.data_transmissions == 1 + mac.config.max_unicast_retries

    def test_concurrent_transmissions_collide_at_receiver(self):
        # Nodes 0 and 2 are hidden from each other (500 m apart) but both in
        # range of node 1; transmitting simultaneously causes a collision at 1.
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (250, 0), (500, 0)], comm_range=260.0
        )
        for node in nodes:
            node.attach_protocol(RecordingProtocol())
        packet_a = make_data_packet("p", nodes[0].node_id, BROADCAST, size_bytes=1000)
        packet_b = make_data_packet("p", nodes[2].node_id, BROADCAST, size_bytes=1000)
        sim.schedule(0.0, nodes[0].send, packet_a, BROADCAST)
        sim.schedule(0.0, nodes[2].send, packet_b, BROADCAST)
        sim.run(until=1.0)
        assert stats.mac_collisions >= 1
        assert len(nodes[1].protocol.received) == 0

    def test_nominal_range_of_unit_disk(self):
        sim, network, stats, nodes = build_static_network([(0, 0)], comm_range=250.0)
        assert network.medium.nominal_range() == pytest.approx(250.0)

    def test_nodes_in_range_oracle(self):
        sim, network, stats, nodes = build_static_network(line_positions(4, 100))
        in_range = network.medium.nodes_in_range(nodes[0], 250.0)
        assert {n.node_id for n in in_range} == {nodes[1].node_id, nodes[2].node_id}


class TestNetworkAssembly:
    def test_node_kinds_and_lookup(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0)], rsu_positions=[(50, -15)]
        )
        assert len(network.vehicles) == 2
        assert len(network.rsus) == 1
        rsu = network.rsus[0]
        assert rsu.is_infrastructure
        assert network.node(rsu.node_id) is rsu
        assert network.has_node(nodes[0].node_id)

    def test_duplicate_node_id_rejected(self):
        sim, network, stats, nodes = build_static_network([(0, 0)])
        with pytest.raises(ValueError):
            network.add_vehicle(StaticPositionProvider(Vec2(1, 1)), node_id=nodes[0].node_id)

    def test_backbone_send_delivers_between_rsus(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0)], rsu_positions=[(0, -15), (5000, -15)]
        )
        rsu_a, rsu_b = network.rsus
        protocol = RecordingProtocol()
        rsu_b.attach_protocol(protocol)
        packet = make_data_packet("p", rsu_a.node_id, rsu_b.node_id)
        network.backbone_send(rsu_a, rsu_b, packet)
        sim.run(until=1.0)
        assert len(protocol.backbone) == 1
        assert stats.backbone_transmissions == 1

    def test_backbone_rejects_non_rsu_nodes(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (10, 0)], rsu_positions=[(0, -15)]
        )
        with pytest.raises(ValueError):
            network.backbone_send(nodes[0], network.rsus[0], make_data_packet("p", 1, 2))

    def test_neighbors_of_uses_nominal_range(self):
        sim, network, stats, nodes = build_static_network(line_positions(3, 200), comm_range=250.0)
        neighbors = network.neighbors_of(nodes[0])
        assert {n.node_id for n in neighbors} == {nodes[1].node_id}

    def test_mobility_stepping(self):
        class CountingMobility:
            def __init__(self):
                self.steps = 0

            def step(self, dt, now):
                self.steps += 1

        sim, network, stats, nodes = build_static_network([(0, 0)])
        mobility = CountingMobility()
        network.mobility = mobility
        network.start()
        sim.run(until=5.0)
        assert mobility.steps == pytest.approx(10, abs=1)

    def test_remove_node(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (10, 0)])
        network.remove_node(nodes[0].node_id)
        assert not network.has_node(nodes[0].node_id)
        assert nodes[0].node_id not in network.medium.nodes
