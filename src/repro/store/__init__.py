"""Experiment store: streaming, resumable, content-addressed sweep persistence.

The sweep layer's persistence model (replacing "one JSON file at the end"):

* :class:`ExperimentStore` -- a directory holding an append-only JSONL
  record log (one fsync'd line per completed cell) plus an atomically
  updated manifest, readable mid-run and tolerant of a crash-truncated
  tail.
* :mod:`repro.store.keys` -- content addressing: every cell is keyed by a
  stable hash of (scenario, protocol, protocol config, code version), so
  the store doubles as a cache (resume skips completed cells; a code
  change re-keys, and therefore re-runs, exactly the affected cells) and
  as a coordination-free sharder (``shard K/N`` partitions any matrix by
  key hash).
* :mod:`repro.store.schema` -- explicit schema versioning of every
  persisted record payload; readers fail loudly on unknown versions.

Entry points: ``sweep_replications(store=..., resume=..., shard=...)``
writes through the store, ``repro-vanet store {list,summary,verify}``
inspects one, and :func:`repro.harness.reporting.sweep_from_store`
aggregates from one.

This ``__init__`` re-exports the public names lazily (PEP 562):
:mod:`repro.harness.runner` imports :mod:`repro.store.schema` while the
store modules import the runner's :class:`RunRecord`, and an eager
re-export here would turn that pairing into a circular import.
"""

from __future__ import annotations

import importlib
from typing import Dict, List

from repro.store.schema import (  # noqa: F401  (re-exported)
    KNOWN_RECORD_SCHEMA_VERSIONS,
    RECORD_FIELDS,
    RECORD_SCHEMA_VERSION,
    check_record_schema_version,
)

#: Lazily re-exported name -> defining submodule.
_LAZY_EXPORTS: Dict[str, str] = {
    "ExperimentStore": "repro.store.store",
    "StoreReport": "repro.store.store",
    "read_record_log": "repro.store.store",
    "union_stores": "repro.store.store",
    "canonical": "repro.store.keys",
    "canonical_json": "repro.store.keys",
    "cell_key": "repro.store.keys",
    "code_version": "repro.store.keys",
    "parse_shard": "repro.store.keys",
    "shard_of": "repro.store.keys",
}

__all__ = [
    "KNOWN_RECORD_SCHEMA_VERSIONS",
    "RECORD_FIELDS",
    "RECORD_SCHEMA_VERSION",
    "check_record_schema_version",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str) -> object:
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(target), name)
    globals()[name] = value  # cache: subsequent lookups skip this hook
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
