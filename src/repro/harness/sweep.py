"""Parameter sweeps over scenarios, protocols, workloads, radios and seeds.

The paper's category comparison (Table I / Figs. 2-6) is only meaningful when
every (scenario, protocol) cell is replicated over several random seeds.  This
module provides the machinery for that:

* :func:`build_matrix` expands scenarios x protocols x workloads x radios x
  seeds into an explicit list of :class:`SweepCell` run descriptions,
* :func:`execute_cells` runs any picklable cell list through a worker
  function, either serially or across a ``ProcessPoolExecutor``, always
  returning results in cell order (so parallel and serial execution are
  byte-identical),
* :func:`aggregate_records` folds the per-seed
  :class:`~repro.harness.runner.RunRecord` list into per-cell
  :class:`ReplicatedResult` objects (per-metric mean / stddev / 95% CI),
* :func:`sweep_replications` ties it all together and returns a
  :class:`SweepResult`.

The single-scenario helpers (:func:`sweep_protocols`, :func:`sweep_densities`,
:func:`sweep_scenarios`) remain for interactive use; they run in-process and
return rich :class:`~repro.harness.runner.RunResult` objects that still carry
the live stats collector.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.harness.runner import ExperimentRunner, RunRecord, RunResult
from repro.harness.scenario import Scenario
from repro.mobility.generator import TrafficDensity
from repro.monitors.telemetry import BufferSink, resolve_sink
from repro.protocols.base import ProtocolConfig
from repro.radio.registry import DEFAULT_RADIO
from repro.store.keys import cell_key, code_version, parse_shard, shard_of
from repro.store.schema import RECORD_SCHEMA_VERSION, check_record_schema_version
from repro.store.store import ExperimentStore

_CellT = TypeVar("_CellT")
_ResultT = TypeVar("_ResultT")

#: Two-sided 95% Student-t critical values by degrees of freedom.  Replication
#: counts are small (a handful of seeds per cell), where the normal
#: approximation badly understates the interval; beyond df=30 the normal
#: z-value is accurate to < 2%.
_T95: Dict[int, float] = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z95 = 1.960


def t_critical_95(n: int) -> float:
    """Two-sided 95% t critical value for a sample of size ``n``."""
    df = n - 1
    if df < 1:
        return 0.0
    return _T95.get(df, _Z95)


# --------------------------------------------------------------- run matrix
@dataclass(frozen=True)
class SweepCell:
    """One run of the matrix: a scenario (carrying its seed) under one protocol."""

    scenario: Scenario
    protocol: str
    protocol_config: Optional[ProtocolConfig] = None


def build_matrix(
    scenarios: Sequence[Scenario],
    protocol_names: Sequence[str],
    seeds: Sequence[int],
    protocol_configs: Optional[Dict[str, ProtocolConfig]] = None,
    workloads: Optional[Sequence[str]] = None,
    radios: Optional[Sequence[str]] = None,
    spatial_backends: Optional[Sequence[str]] = None,
) -> List[SweepCell]:
    """Expand scenarios x protocols x workloads x radios x seeds into cells.

    The matrix order is deterministic (scenario-major, then protocol, then
    workload, then radio, then spatial backend, then seed), which fixes both
    the execution schedule and the ordering of every downstream report.
    ``workloads`` is an optional sweep axis of workload kind/preset names;
    when omitted every cell keeps the scenario's own ``workload`` (``"cbr"``
    by default).  ``radios`` is the optional radio axis (radio kind/preset
    names resolved through :mod:`repro.radio.registry`); when omitted every
    cell keeps the scenario's own radio stack (``ideal-disk-250m`` by
    default).  ``spatial_backends`` is the optional medium-backend axis
    (names from :data:`repro.sim.spatial.SPATIAL_BACKENDS`); backends are
    varied through the scenario *name* (``<name>-<backend>``) because the
    aggregation key is (scenario name, protocol, workload, radio) and the
    backends' byte-identical metrics would otherwise be merged into a single
    cell with duplicated seeds.
    """
    if not seeds:
        raise ValueError("at least one replication seed is required")
    if len(set(seeds)) != len(seeds):
        # Repeating a seed reruns the identical deterministic cell: the
        # aggregate would report extra replications with zero added variance.
        raise ValueError("replication seeds must be unique")
    if workloads is not None and len(set(workloads)) != len(workloads):
        # Same reasoning as seeds: a repeated workload duplicates cells.
        raise ValueError("sweep workloads must be unique")
    if radios is not None and len(set(radios)) != len(radios):
        # Same reasoning as seeds: a repeated radio duplicates cells.
        raise ValueError("sweep radios must be unique")
    if spatial_backends is not None and len(set(spatial_backends)) != len(spatial_backends):
        # Same reasoning as seeds: a repeated backend duplicates cells.
        raise ValueError("sweep spatial backends must be unique")
    names = [scenario.name for scenario in scenarios]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        # Aggregation groups by (scenario name, protocol, workload, radio);
        # scenarios sharing a name would be merged into one cell and corrupt
        # the statistics.
        raise ValueError(f"scenario names must be unique, duplicated: {duplicates}")
    configs = protocol_configs or {}
    cells: List[SweepCell] = []
    for scenario in scenarios:
        if workloads is None:
            # No axis: every cell keeps the scenario's own workload and its
            # parameters.
            varied_scenarios = [scenario]
        else:
            # Axis cells name a kind/preset; the scenario's own
            # workload_params belong to *its* workload and would be passed
            # as foreign constructor keywords to the others (TypeError at
            # run time), so the axis resets them -- parameterised axis
            # entries should be presets.
            varied_scenarios = [
                scenario.with_overrides(workload=workload, workload_params={})
                for workload in workloads
            ]
        if radios is not None:
            # Same reset logic as the workload axis: radio_params belong to
            # the scenario's own stack, not to the axis entries.
            varied_scenarios = [
                varied.with_overrides(radio_stack=radio, radio_params={})
                for varied in varied_scenarios
                for radio in radios
            ]
        if spatial_backends is not None:
            # Backends ride on the scenario name (the way sweep_densities
            # varies densities) so identical-by-construction metrics still
            # land in distinct aggregation cells.
            varied_scenarios = [
                varied.with_overrides(
                    spatial_backend=backend, name=f"{varied.name}-{backend}"
                )
                for varied in varied_scenarios
                for backend in spatial_backends
            ]
        for protocol in protocol_names:
            for varied in varied_scenarios:
                for seed in seeds:
                    cells.append(
                        SweepCell(
                            scenario=varied.with_overrides(seed=seed),
                            protocol=protocol,
                            protocol_config=configs.get(protocol),
                        )
                    )
    return cells


def run_cell(cell: SweepCell) -> RunRecord:
    """Execute one cell in a fresh runner and return its picklable record.

    Module-level (not a closure) so ``ProcessPoolExecutor`` can ship it to
    worker processes; a fresh :class:`ExperimentRunner` per cell guarantees
    runs cannot contaminate each other through runner state.
    """
    runner = ExperimentRunner()
    result = runner.run(cell.scenario, cell.protocol, protocol_config=cell.protocol_config)
    return result.to_record()


@dataclass
class MonitoredCellOutcome:
    """A cell's record plus the telemetry lines its monitors emitted.

    Workers buffer telemetry in memory and ship it back alongside the
    record; the parent's in-order ``on_result`` hook writes the lines to
    the sweep's sink.  Because that hook always fires in cell order (in
    both the serial and the pool path of :func:`execute_cells`), the
    telemetry file of a ``workers=N`` sweep is byte-identical to the
    serial one.
    """

    record: RunRecord
    telemetry: List[str] = field(default_factory=list)


def run_cell_telemetry(cell: SweepCell) -> MonitoredCellOutcome:
    """Like :func:`run_cell`, but captures the run's telemetry lines."""
    sink = BufferSink()
    runner = ExperimentRunner()
    result = runner.run(
        cell.scenario,
        cell.protocol,
        protocol_config=cell.protocol_config,
        telemetry=sink,
    )
    return MonitoredCellOutcome(record=result.to_record(), telemetry=list(sink.lines))


def execute_cells(
    cells: Sequence[_CellT],
    worker: Callable[[_CellT], _ResultT],
    workers: int = 1,
    mp_context=None,
    on_result: Optional[Callable[[int, _ResultT], None]] = None,
) -> List[_ResultT]:
    """Run ``worker`` over every cell, serially or across processes.

    Results are always returned in cell order regardless of which worker
    finishes first, so ``workers=N`` and ``workers=1`` produce identical
    output for a deterministic worker.  ``worker`` and the cells must be
    picklable when ``workers > 1``.

    ``on_result(index, result)`` is invoked in this process as each cell's
    result becomes available, always in cell order (the pool map yields
    in submission order as results arrive).  The experiment store hangs
    its streaming per-cell appends off this hook, which is why it runs in
    the parent: a hard kill of the sweep process stops the record log at a
    line boundary instead of stranding half-written worker output.
    """
    results: List[_ResultT] = []
    if workers <= 1:
        for index, cell in enumerate(cells):
            result = worker(cell)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    max_workers = min(workers, len(cells)) or 1
    with ProcessPoolExecutor(max_workers=max_workers, mp_context=mp_context) as pool:
        for index, result in enumerate(pool.map(worker, cells)):
            if on_result is not None:
                on_result(index, result)
            results.append(result)
    return results


# -------------------------------------------------------------- aggregation
@dataclass(frozen=True)
class MetricAggregate:
    """Mean / spread of one metric over the replication seeds of a cell."""

    mean: float
    stddev: float
    ci95: float
    n: int

    def to_dict(self) -> Dict[str, float]:
        return {"mean": self.mean, "stddev": self.stddev, "ci95": self.ci95, "n": self.n}

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "MetricAggregate":
        return cls(
            mean=float(payload["mean"]),
            stddev=float(payload["stddev"]),
            ci95=float(payload["ci95"]),
            n=int(payload["n"]),
        )

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricAggregate":
        """Aggregate raw per-seed values (sample stddev, Student-t 95% CI)."""
        n = len(values)
        if n == 0:
            return cls(0.0, 0.0, 0.0, 0)
        mean = sum(values) / n
        if n < 2:
            return cls(mean, 0.0, 0.0, n)
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stddev = math.sqrt(variance)
        ci95 = t_critical_95(n) * stddev / math.sqrt(n)
        return cls(mean, stddev, ci95, n)


#: Metrics surfaced by default in replicated report rows.
HEADLINE_METRICS: Tuple[str, ...] = (
    "delivery_ratio",
    "mean_delay_s",
    "mean_hops",
    "overhead_ratio",
    "transmissions_per_delivery",
    "mac_collisions",
)


@dataclass
class ReplicatedResult:
    """Per-(scenario, protocol, workload, radio) aggregate over seeds."""

    scenario_name: str
    protocol: str
    seeds: Tuple[int, ...]
    metrics: Dict[str, MetricAggregate]
    workload: str = "cbr"
    radio: str = DEFAULT_RADIO

    @property
    def replications(self) -> int:
        """Number of seeds aggregated into this cell."""
        return len(self.seeds)

    def metric(self, name: str) -> MetricAggregate:
        """The aggregate for ``name`` (zeros if the metric never appeared)."""
        return self.metrics.get(name, MetricAggregate(0.0, 0.0, 0.0, 0))

    def row(self, metric_names: Optional[Sequence[str]] = None) -> Dict[str, object]:
        """Flat report row: ``<metric>_mean`` / ``<metric>_ci95`` / ``<metric>_n``.

        The per-metric ``_n`` matters because a metric may be absent from
        some seeds' records (e.g. ``path_stretch`` when a run delivers
        nothing) and is then aggregated over fewer than ``replications``
        runs.
        """
        selected = list(metric_names) if metric_names is not None else list(HEADLINE_METRICS)
        row: Dict[str, object] = {
            "scenario": self.scenario_name,
            "protocol": self.protocol,
            "workload": self.workload,
            "radio": self.radio,
            "replications": self.replications,
        }
        for name in selected:
            aggregate = self.metric(name)
            row[f"{name}_mean"] = aggregate.mean
            row[f"{name}_ci95"] = aggregate.ci95
            row[f"{name}_n"] = aggregate.n
        return row

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario_name": self.scenario_name,
            "protocol": self.protocol,
            "workload": self.workload,
            "radio": self.radio,
            "seeds": list(self.seeds),
            "metrics": {name: agg.to_dict() for name, agg in sorted(self.metrics.items())},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ReplicatedResult":
        return cls(
            scenario_name=str(payload["scenario_name"]),
            protocol=str(payload["protocol"]),
            seeds=tuple(int(seed) for seed in payload.get("seeds", [])),
            metrics={
                str(name): MetricAggregate.from_dict(agg)
                for name, agg in payload.get("metrics", {}).items()
            },
            workload=str(payload.get("workload", "cbr")),
            radio=str(payload.get("radio", DEFAULT_RADIO)),
        )


def aggregate_records(records: Iterable[RunRecord]) -> List[ReplicatedResult]:
    """Fold per-seed records into one :class:`ReplicatedResult` per cell.

    Cells are keyed by (scenario name, protocol, workload, radio) and appear
    in first-seen order; within a cell, every metric present in any seed's
    record is aggregated over the seeds that report it.
    """
    grouped: Dict[Tuple[str, str, str, str], List[RunRecord]] = {}
    for record in records:
        grouped.setdefault(
            (record.scenario_name, record.protocol, record.workload, record.radio), []
        ).append(record)
    replicated: List[ReplicatedResult] = []
    for (scenario_name, protocol, workload, radio), bucket in grouped.items():
        metric_names = sorted({name for record in bucket for name in record.metrics})
        metrics = {
            name: MetricAggregate.of(
                [record.metrics[name] for record in bucket if name in record.metrics]
            )
            for name in metric_names
        }
        replicated.append(
            ReplicatedResult(
                scenario_name=scenario_name,
                protocol=protocol,
                seeds=tuple(record.seed for record in bucket),
                metrics=metrics,
                workload=workload,
                radio=radio,
            )
        )
    return replicated


@dataclass
class SweepResult:
    """Everything a replicated sweep produced.

    Attributes:
        records: One :class:`RunRecord` per matrix cell, in matrix order.
        replicated: Per-(scenario, protocol) aggregates over the seeds.
        executed_cells: Cells actually run by this sweep (excluded from
            comparison and serialisation: a resumed sweep and a fresh one
            that produced the same records are the same result).
        reused_cells: Cells satisfied from the experiment store instead of
            executing.
    """

    records: List[RunRecord] = field(default_factory=list)
    replicated: List[ReplicatedResult] = field(default_factory=list)
    executed_cells: int = field(default=0, compare=False)
    reused_cells: int = field(default=0, compare=False)

    def record_rows(self) -> List[Dict[str, object]]:
        """One flat row per individual run."""
        return [record.row() for record in self.records]

    def rows(self, metric_names: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
        """One flat row per aggregated (scenario, protocol) cell."""
        return [result.row(metric_names) for result in self.replicated]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": RECORD_SCHEMA_VERSION,
            "records": [record.to_dict() for record in self.records],
            "replicated": [result.to_dict() for result in self.replicated],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepResult":
        check_record_schema_version(payload, "sweep artifact")
        return cls(
            records=[RunRecord.from_dict(item) for item in payload.get("records", [])],
            replicated=[
                ReplicatedResult.from_dict(item) for item in payload.get("replicated", [])
            ],
        )


def sweep_replications(
    scenarios: Sequence[Scenario],
    protocol_names: Sequence[str],
    seeds: Sequence[int],
    workers: int = 1,
    protocol_configs: Optional[Dict[str, ProtocolConfig]] = None,
    workloads: Optional[Sequence[str]] = None,
    radios: Optional[Sequence[str]] = None,
    spatial_backends: Optional[Sequence[str]] = None,
    shared_mobility: bool = False,
    store: Optional[Union[str, Path, ExperimentStore]] = None,
    resume: bool = True,
    shard: Optional[Union[str, Tuple[int, int]]] = None,
    monitors: Optional[Sequence[str]] = None,
    monitor_params: Optional[Dict[str, Dict[str, object]]] = None,
    telemetry: Optional[Union[str, Path]] = None,
) -> SweepResult:
    """Run the scenario x protocol x workload x radio x seed matrix.

    ``workers=1`` runs serially in-process; ``workers > 1`` fans the cells
    out over a process pool.  Both schedules produce identical
    :class:`SweepResult` contents because every cell is seeded explicitly and
    results are re-assembled in matrix order.  ``workloads`` adds the
    workload axis, ``radios`` the radio axis and ``spatial_backends`` the
    medium-backend axis; omitted, every cell keeps the scenario's own
    workload / radio stack / spatial backend.

    ``shared_mobility=True`` stages each distinct mobility build once in
    this process and publishes it through a shared-memory arena (see
    :mod:`repro.harness.shared_build`): workers map the staged substrate
    instead of rebuilding it per cell, which cuts per-cell setup to one
    pickle load while keeping the records byte-identical (pinned by the
    staged-equality suite).  The arena lives exactly as long as the sweep.

    ``store`` (a directory path or :class:`ExperimentStore`) streams every
    completed cell into a content-addressed record log as it finishes, so
    partial results survive a crash.  With ``resume=True`` (the default)
    cells whose key is already in the store are *not* executed -- their
    stored records flow straight into the result -- which makes an
    interrupted sweep restartable and an identical re-run free.
    ``resume=False`` re-executes (and re-appends) everything.

    ``shard="K/N"`` (or ``(K, N)``, 1-based K) keeps only the cells whose
    content key falls into shard ``K`` of an ``N``-way hash partition.
    Every machine computes the same partition independently, so ``N``
    machines each running one shard into their own store cover the matrix
    exactly once with no coordination; union the stores afterwards.

    ``monitors`` attaches the given monitor kinds/presets (resolved by
    name through :mod:`repro.monitors`) to *every* cell -- a fixed
    observability set, not a matrix axis -- with optional per-monitor
    ``monitor_params`` overrides.  Their summary metrics land in each
    record's ``extra`` and therefore in the aggregates and artifacts.
    ``telemetry`` names a JSONL file that receives every executed cell's
    streaming telemetry, written by the parent in cell order (so serial
    and parallel sweeps produce byte-identical files); cells reused from
    the store emit no telemetry (they did not run).
    """
    if monitors:
        monitor_set = tuple(monitors)
        params = dict(monitor_params or {})
        unknown = sorted(set(params) - set(monitor_set))
        if unknown:
            raise ValueError(
                f"monitor_params for monitors not in the sweep's monitor set: {unknown}"
            )
        scenarios = [
            scenario.with_overrides(monitors=monitor_set, monitor_params=params)
            for scenario in scenarios
        ]
    elif monitor_params:
        raise ValueError("monitor_params given without monitors")
    collect_telemetry = telemetry is not None and bool(monitors)
    if telemetry is not None and not monitors:
        raise ValueError("telemetry sink given without monitors")
    if collect_telemetry and shared_mobility:
        raise ValueError(
            "telemetry collection is not supported with shared_mobility "
            "(the staged-cell worker returns bare records)"
        )
    cells = build_matrix(
        scenarios,
        protocol_names,
        seeds,
        protocol_configs,
        workloads,
        radios,
        spatial_backends,
    )
    total_cells = len(cells)
    keys: Optional[List[str]] = None
    code: Optional[str] = None
    if store is not None or shard is not None:
        code = code_version()
        keys = [
            cell_key(cell.scenario, cell.protocol, cell.protocol_config, code)
            for cell in cells
        ]
    shard_spec: Optional[str] = None
    if shard is not None:
        if isinstance(shard, str):
            shard_index, shard_count = parse_shard(shard)
        else:
            shard_index, shard_count = shard
            if shard_count < 1 or not 1 <= shard_index <= shard_count:
                raise ValueError(
                    f"shard {shard!r} out of range: need 1 <= K <= N with N >= 1"
                )
        assert keys is not None
        mine = [
            position
            for position, key in enumerate(keys)
            if shard_of(key, shard_count) == shard_index - 1
        ]
        cells = [cells[position] for position in mine]
        keys = [keys[position] for position in mine]
        shard_spec = f"{shard_index}/{shard_count}"

    exp_store: Optional[ExperimentStore] = None
    cached: Dict[str, RunRecord] = {}
    if store is not None:
        exp_store = store if isinstance(store, ExperimentStore) else ExperimentStore(store)
        assert keys is not None
        # No timestamps in the manifest: a resumed sweep and a fresh one
        # over the same matrix must leave byte-identical store metadata.
        exp_store.write_manifest(
            {
                "code_version": code,
                "matrix": {
                    "scenarios": [scenario.name for scenario in scenarios],
                    "protocols": list(protocol_names),
                    "seeds": [int(seed) for seed in seeds],
                    "workloads": list(workloads) if workloads is not None else None,
                    "radios": list(radios) if radios is not None else None,
                    "spatial_backends": (
                        list(spatial_backends) if spatial_backends is not None else None
                    ),
                    "monitors": list(monitors) if monitors else None,
                    "total_cells": total_cells,
                    "shard": shard_spec,
                },
            }
        )
        if resume:
            index = exp_store.load_index()
            cached = {key: index[key] for key in keys if key in index}

    if keys is not None:
        pending = [
            (cell, key) for cell, key in zip(cells, keys) if key not in cached
        ]
        pending_cells = [cell for cell, _key in pending]
        pending_keys: List[str] = [key for _cell, key in pending]
    else:
        pending_cells = list(cells)
        pending_keys = []

    telemetry_sink, telemetry_owned = (
        resolve_sink(telemetry) if collect_telemetry else (None, False)
    )

    def _unwrap(outcome) -> RunRecord:
        return outcome.record if isinstance(outcome, MonitoredCellOutcome) else outcome

    on_result: Optional[Callable[[int, object], None]] = None
    if exp_store is not None or telemetry_sink is not None:
        # Both the store append and the telemetry write run in the parent,
        # in cell order (the execute_cells contract): a hard kill stops the
        # files at a line boundary, and workers=N telemetry is byte-equal
        # to serial because ordering never depends on worker completion.
        def _stream_result(index: int, outcome) -> None:
            if telemetry_sink is not None and isinstance(outcome, MonitoredCellOutcome):
                for line in outcome.telemetry:
                    telemetry_sink.write(line)
            if exp_store is not None:
                exp_store.append(pending_keys[index], _unwrap(outcome))

        on_result = _stream_result

    try:
        if shared_mobility:
            from repro.harness import shared_build

            with shared_build.MobilityArena() as arena:
                try:
                    staged = [
                        shared_build.StagedCell(cell, arena.stage(cell.scenario))
                        for cell in pending_cells
                    ]
                    fresh = execute_cells(
                        staged,
                        shared_build.run_staged_cell,
                        workers=workers,
                        on_result=on_result,
                    )
                finally:
                    # Serial runs attach in *this* process; drop those mappings
                    # with the arena (worker processes die with the pool).
                    shared_build.detach_all()
        else:
            worker = run_cell_telemetry if collect_telemetry else run_cell
            fresh = execute_cells(
                pending_cells, worker, workers=workers, on_result=on_result
            )
    finally:
        if exp_store is not None:
            exp_store.close()
        if telemetry_owned and telemetry_sink is not None:
            telemetry_sink.close()

    fresh_records = [_unwrap(outcome) for outcome in fresh]
    if cached:
        by_key = dict(zip(pending_keys, fresh_records))
        assert keys is not None
        records = [cached[key] if key in cached else by_key[key] for key in keys]
    else:
        records = fresh_records
    return SweepResult(
        records=records,
        replicated=aggregate_records(records),
        executed_cells=len(pending_cells),
        reused_cells=len(cached),
    )


# ----------------------------------------------------- single-runner sweeps
def sweep_protocols(
    scenario: Scenario,
    protocol_names: Sequence[str],
    runner: Optional[ExperimentRunner] = None,
    protocol_configs: Optional[Dict[str, ProtocolConfig]] = None,
    telemetry=None,
) -> List[RunResult]:
    """Run every protocol in ``protocol_names`` through the same scenario.

    ``telemetry`` is forwarded to every run: pass one shared
    :class:`~repro.monitors.telemetry.TelemetrySink` to collect all
    protocols' monitor telemetry into a single stream (each run frames
    its lines with ``run_start``/``run_end`` events).
    """
    runner = runner if runner is not None else ExperimentRunner()
    configs = protocol_configs or {}
    results: List[RunResult] = []
    for name in protocol_names:
        results.append(
            runner.run(
                scenario, name, protocol_config=configs.get(name), telemetry=telemetry
            )
        )
    return results


def sweep_densities(
    base_scenario: Scenario,
    protocol_names: Sequence[str],
    densities: Iterable[TrafficDensity] = (
        TrafficDensity.SPARSE,
        TrafficDensity.NORMAL,
        TrafficDensity.CONGESTED,
    ),
    runner: Optional[ExperimentRunner] = None,
    protocol_configs: Optional[Dict[str, ProtocolConfig]] = None,
) -> List[RunResult]:
    """Run every protocol at every traffic density derived from ``base_scenario``."""
    runner = runner if runner is not None else ExperimentRunner()
    results: List[RunResult] = []
    for density in densities:
        scenario = base_scenario.with_overrides(
            density=density, name=f"{base_scenario.name}-{density.value}"
        )
        results.extend(
            sweep_protocols(scenario, protocol_names, runner=runner, protocol_configs=protocol_configs)
        )
    return results


def sweep_scenarios(
    scenarios: Sequence[Scenario],
    protocol_names: Sequence[str],
    runner: Optional[ExperimentRunner] = None,
) -> List[RunResult]:
    """Run every protocol through every scenario."""
    runner = runner if runner is not None else ExperimentRunner()
    results: List[RunResult] = []
    for scenario in scenarios:
        results.extend(sweep_protocols(scenario, protocol_names, runner=runner))
    return results
