"""Bus-ferry routing in the style of Kitani et al. (paper ref. [19]).

Buses travel regular routes and have larger storage than ordinary vehicles;
they collect packets from cars they pass and carry them until the destination
(or a car closer to it) comes within range.  This is a store-carry-forward
scheme: it trades latency for delivery in sparse traffic, the regime where
the paper says pure vehicle-to-vehicle forwarding fails.

The same protocol class runs on cars and on buses; buses are nodes of kind
``BUS`` and simply get a much larger buffer and an active delivery loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.taxonomy import Category, register_protocol
from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import DuplicateCache
from repro.protocols.location import LocationService
from repro.protocols.neighbors import BeaconService, NeighborEntry
from repro.sim.network import Network
from repro.sim.node import Node, NodeKind
from repro.sim.packet import Packet


@dataclass
class BusFerryConfig(ProtocolConfig):
    """Bus-ferry parameters.

    Attributes:
        car_buffer_capacity: Store-carry buffer size on ordinary cars.
        bus_buffer_capacity: Store-carry buffer size on buses.
        buffer_timeout_s: Maximum time a packet is carried before being dropped.
        delivery_check_interval_s: How often carried packets are re-evaluated.
    """

    car_buffer_capacity: int = 8
    bus_buffer_capacity: int = 512
    buffer_timeout_s: float = 60.0
    delivery_check_interval_s: float = 1.0


@register_protocol(
    "Bus-Ferry",
    Category.INFRASTRUCTURE,
    "Buses on regular routes store, carry and forward packets collected from cars.",
    paper_reference="[19], Sec. V",
)
class BusFerryProtocol(RoutingProtocol):
    """Store-carry-forward routing with buses as high-capacity ferries."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[BusFerryConfig] = None,
        location_service: Optional[LocationService] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else BusFerryConfig())
        self.location = (
            location_service if location_service is not None else LocationService(network)
        )
        self.beacons = BeaconService(
            self,
            interval_s=self.config.hello_interval_s,
            timeout_s=self.config.neighbor_timeout_s,
            extra_fields=lambda: {"is_bus": self.node.kind is NodeKind.BUS},
        )
        self._buffer: List[Tuple[float, Packet]] = []
        self._seen = DuplicateCache(lifetime_s=60.0)
        self._delivery_task = None

    # ------------------------------------------------------------------ setup
    @property
    def is_bus(self) -> bool:
        """True when this protocol instance runs on a bus."""
        return self.node.kind is NodeKind.BUS

    @property
    def buffer_capacity(self) -> int:
        """Store-carry capacity of this node."""
        cfg: BusFerryConfig = self.config  # type: ignore[assignment]
        return cfg.bus_buffer_capacity if self.is_bus else cfg.car_buffer_capacity

    def start(self) -> None:
        """Start beaconing and the periodic carried-packet delivery check."""
        super().start()
        self.beacons.start()
        self._delivery_task = self.sim.schedule_periodic(
            self.config.delivery_check_interval_s,
            self._try_deliver_buffered,
            start_delay=self.config.delivery_check_interval_s,
            jitter=0.2,
            rng_stream=f"busferry-{self.node.node_id}",
        )

    def stop(self) -> None:
        """Stop beaconing and the delivery loop."""
        super().stop()
        self.beacons.stop()
        if self._delivery_task is not None:
            self._delivery_task.cancel()
            self._delivery_task = None

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Deliver directly, forward toward the destination, hand to a bus, or carry."""
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        neighbors = self.beacons.neighbors()
        by_id = {entry.node_id: entry for entry in neighbors}
        if packet.destination in by_id:
            self.unicast(packet, packet.destination)
            return
        greedy_hop = self._greedy_next_hop(packet.destination, neighbors)
        if greedy_hop is not None:
            self.unicast(packet, greedy_hop)
            return
        if not self.is_bus:
            bus_neighbor = self._nearest_bus(neighbors)
            if bus_neighbor is not None:
                self.unicast(packet, bus_neighbor.node_id)
                return
        self._carry(packet)

    # -------------------------------------------------------------- reception
    def handle_packet(self, packet: Packet, sender_id: int) -> None:
        """Handle beacons and data frames."""
        if packet.ptype == "HELLO":
            self.beacons.handle_beacon(packet, sender_id)
            return
        if not packet.is_data:
            return
        if packet.destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if self._seen.seen((packet.flow_key, self.node.node_id), self.now):
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        self.route_data(packet.forwarded())

    # -------------------------------------------------------------- internals
    def _greedy_next_hop(
        self, destination: int, neighbors: List[NeighborEntry]
    ) -> Optional[int]:
        destination_position = self.location.position_of(destination)
        if destination_position is None:
            return None
        own_distance = self.node.position.distance_to(destination_position)
        best_id: Optional[int] = None
        best_distance = own_distance
        for entry in neighbors:
            predicted = entry.predicted_position(self.now)
            if self.node.position.distance_to(predicted) > 230.0:
                continue
            distance = predicted.distance_to(destination_position)
            if distance < best_distance:
                best_distance = distance
                best_id = entry.node_id
        return best_id

    @staticmethod
    def _nearest_bus(neighbors: List[NeighborEntry]) -> Optional[NeighborEntry]:
        buses = [entry for entry in neighbors if entry.extra.get("is_bus")]
        if not buses:
            return None
        return buses[0]

    def _carry(self, packet: Packet) -> None:
        cfg: BusFerryConfig = self.config  # type: ignore[assignment]
        self._expire_buffer()
        if len(self._buffer) >= self.buffer_capacity:
            self.stats.buffer_drop()
            return
        self.stats.store_carry()
        self._buffer.append((self.now, packet))
        del cfg

    def _try_deliver_buffered(self) -> None:
        if not self._buffer:
            return
        self._expire_buffer()
        neighbors = self.beacons.neighbors()
        if not neighbors:
            return
        by_id = {entry.node_id: entry for entry in neighbors}
        remaining: List[Tuple[float, Packet]] = []
        for buffered_at, packet in self._buffer:
            if packet.destination in by_id:
                self.unicast(packet, packet.destination)
                continue
            greedy_hop = self._greedy_next_hop(packet.destination, neighbors)
            if greedy_hop is not None:
                self.unicast(packet, greedy_hop)
                continue
            remaining.append((buffered_at, packet))
        self._buffer = remaining

    def _expire_buffer(self) -> None:
        cfg: BusFerryConfig = self.config  # type: ignore[assignment]
        fresh = [
            (buffered_at, packet)
            for buffered_at, packet in self._buffer
            if self.now - buffered_at <= cfg.buffer_timeout_s
        ]
        dropped = len(self._buffer) - len(fresh)
        for _ in range(dropped):
            self.stats.buffer_drop()
        self._buffer = fresh
