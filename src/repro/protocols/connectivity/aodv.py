"""AODV: Ad hoc On-demand Distance Vector routing (RFC 3561, paper ref. [6]).

AODV is the canonical connectivity-based protocol the survey repeatedly uses
as the base other protocols extend (Abedi, DisjLi).  The implementation
follows the two-phase structure the paper describes (Sec. III.B): *route
discovery* with flooded RREQs answered by unicast RREPs, and *route
maintenance* with HELLO-based link sensing and RERRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.taxonomy import Category, register_protocol
from repro.protocols.base import ProtocolConfig, RoutingProtocol
from repro.protocols.discovery import (
    DuplicateCache,
    PendingPacketBuffer,
    RouteEntry,
    RouteTable,
)
from repro.protocols.neighbors import BeaconService
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.packet import BROADCAST, Packet


@dataclass
class AodvConfig(ProtocolConfig):
    """AODV parameters.

    Attributes:
        route_lifetime_s: Validity period of an installed route.
        discovery_timeout_s: Time to wait for an RREP before retrying.
        max_discovery_retries: RREQ retries before giving up on a destination.
        use_hello: Enable HELLO beacons for link-break detection.
        rreq_size_bytes / rrep_size_bytes / rerr_size_bytes: Control sizes.
    """

    route_lifetime_s: float = 10.0
    discovery_timeout_s: float = 1.0
    max_discovery_retries: int = 2
    use_hello: bool = True
    rreq_size_bytes: int = 52
    rrep_size_bytes: int = 44
    rerr_size_bytes: int = 32
    #: Random delay before re-broadcasting an RREQ, which desynchronises the
    #: flood and keeps the broadcast storm from destroying itself.
    rreq_forward_jitter_s: float = 0.02


@register_protocol(
    "AODV",
    Category.CONNECTIVITY,
    "On-demand distance-vector routing with flooded RREQ and unicast RREP.",
    paper_reference="[6], Sec. III.B",
)
class AodvProtocol(RoutingProtocol):
    """Ad hoc On-demand Distance Vector routing."""

    def __init__(
        self,
        node: Node,
        network: Network,
        config: Optional[AodvConfig] = None,
    ) -> None:
        super().__init__(node, network, config if config is not None else AodvConfig())
        self.routes = RouteTable()
        self.pending = PendingPacketBuffer()
        self._rreq_cache = DuplicateCache(lifetime_s=10.0)
        self._sequence = 0
        self._rreq_id = 0
        #: destination -> (start time, retries) of an in-flight discovery.
        self._discoveries: Dict[int, Dict[str, float]] = {}
        self.beacons: Optional[BeaconService] = None
        if self.config.use_hello:
            self.beacons = BeaconService(
                self,
                interval_s=self.config.hello_interval_s,
                timeout_s=self.config.neighbor_timeout_s,
            )

    # ------------------------------------------------------------------ setup
    def start(self) -> None:
        """Start HELLO beaconing if enabled."""
        super().start()
        if self.beacons is not None:
            self.beacons.start()

    def stop(self) -> None:
        """Stop beaconing."""
        super().stop()
        if self.beacons is not None:
            self.beacons.stop()

    # ------------------------------------------------------------------- data
    def route_data(self, packet: Packet) -> None:
        """Forward along a known route or buffer and start a discovery."""
        destination = packet.destination
        if destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        route = self.routes.get(destination, self.now)
        if route is not None and self._next_hop_alive(route.next_hop):
            self.unicast(packet, route.next_hop)
            return
        if route is not None:
            # The route exists but its next hop disappeared: treat as broken.
            self._handle_broken_link(route.next_hop)
        if not self.pending.add(packet, self.now):
            self.stats.buffer_drop()
        self._ensure_discovery(destination)

    # -------------------------------------------------------------- reception
    def handle_packet(self, packet: Packet, sender_id: int) -> None:
        """Dispatch on the AODV packet type."""
        ptype = packet.ptype
        if ptype == "HELLO":
            if self.beacons is not None:
                self.beacons.handle_beacon(packet, sender_id)
            return
        if ptype == "RREQ":
            self._handle_rreq(packet, sender_id)
        elif ptype == "RREP":
            self._handle_rrep(packet, sender_id)
        elif ptype == "RERR":
            self._handle_rerr(packet, sender_id)
        elif packet.is_data:
            self._handle_data(packet, sender_id)

    # -------------------------------------------------------------- discovery
    def _ensure_discovery(self, destination: int) -> None:
        state = self._discoveries.get(destination)
        if state is not None:
            return
        self._start_discovery(destination, retries=0)

    def _start_discovery(self, destination: int, retries: int) -> None:
        self._rreq_id += 1
        self._sequence += 1
        self._discoveries[destination] = {"started": self.now, "retries": retries}
        self.stats.route_discovery_started()
        rreq = self.make_control(
            "RREQ",
            size_bytes=self.config.rreq_size_bytes,
            rreq_id=self._rreq_id,
            origin=self.node.node_id,
            origin_seq=self._sequence,
            target=destination,
            hop_count=0,
        )
        # Mark our own RREQ as seen so we do not rebroadcast it.
        self._rreq_cache.seen((self.node.node_id, self._rreq_id), self.now)
        self.broadcast(rreq)
        self.sim.schedule(
            self.config.discovery_timeout_s, self._discovery_timeout, destination, self._rreq_id
        )

    def _discovery_timeout(self, destination: int, rreq_id: int) -> None:
        state = self._discoveries.get(destination)
        if state is None:
            return
        if self.routes.get(destination, self.now) is not None:
            self._discoveries.pop(destination, None)
            return
        retries = int(state["retries"])
        if retries < self.config.max_discovery_retries:
            self._start_discovery(destination, retries=retries + 1)
        else:
            self._discoveries.pop(destination, None)
            dropped = self.pending.drop_all(destination)
            for _ in range(dropped):
                self.stats.no_route_drop()

    def _handle_rreq(self, packet: Packet, sender_id: int) -> None:
        headers = packet.headers
        origin = headers["origin"]
        key = (origin, headers["rreq_id"])
        if origin == self.node.node_id:
            return
        if self._rreq_cache.seen(key, self.now):
            return
        hop_count = headers["hop_count"] + 1
        # Install / refresh the reverse route toward the origin.
        self.routes.update_if_better(
            RouteEntry(
                destination=origin,
                next_hop=sender_id,
                hop_count=hop_count,
                expiry=self.now + self.config.route_lifetime_s,
                sequence=headers["origin_seq"],
                established_at=self.now,
            ),
            self.now,
        )
        target = headers["target"]
        if target == self.node.node_id:
            self._sequence += 1
            rrep = self.make_control(
                "RREP",
                destination=origin,
                size_bytes=self.config.rrep_size_bytes,
                origin=origin,
                target=target,
                target_seq=self._sequence,
                hop_count=0,
            )
            self.unicast(rrep, sender_id)
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        forwarded = packet.forwarded()
        forwarded.headers["hop_count"] = hop_count
        jitter = self.rng.uniform(0.0, self.config.rreq_forward_jitter_s)
        self.sim.schedule(jitter, self.broadcast, forwarded)

    def _handle_rrep(self, packet: Packet, sender_id: int) -> None:
        headers = packet.headers
        target = headers["target"]
        origin = headers["origin"]
        hop_count = headers["hop_count"] + 1
        # Install / refresh the forward route toward the target.
        self.routes.update_if_better(
            RouteEntry(
                destination=target,
                next_hop=sender_id,
                hop_count=hop_count,
                expiry=self.now + self.config.route_lifetime_s,
                sequence=headers["target_seq"],
                established_at=self.now,
            ),
            self.now,
        )
        if origin == self.node.node_id:
            state = self._discoveries.pop(target, None)
            if state is not None:
                self.stats.route_discovery_completed(self.now - state["started"])
            for data_packet in self.pending.pop_all(target, self.now):
                self.route_data(data_packet)
            return
        reverse = self.routes.get(origin, self.now)
        if reverse is None:
            self.stats.no_route_drop()
            return
        forwarded = packet.forwarded()
        forwarded.headers["hop_count"] = hop_count
        self.unicast(forwarded, reverse.next_hop)

    def _handle_rerr(self, packet: Packet, sender_id: int) -> None:
        unreachable = packet.headers.get("unreachable", [])
        for destination in unreachable:
            route = self.routes.get(destination, self.now)
            if route is not None and route.next_hop == sender_id:
                self.routes.invalidate(destination)

    def _handle_data(self, packet: Packet, sender_id: int) -> None:
        destination = packet.destination
        if destination == self.node.node_id:
            self.deliver_locally(packet)
            return
        if packet.ttl <= 1:
            self.stats.ttl_drop()
            return
        route = self.routes.get(destination, self.now)
        if route is None or not self._next_hop_alive(route.next_hop):
            if route is not None:
                self._handle_broken_link(route.next_hop)
            self.stats.no_route_drop()
            self._send_rerr([destination])
            return
        self.unicast(packet.forwarded(), route.next_hop)

    # ------------------------------------------------------------ maintenance
    def _next_hop_alive(self, next_hop: int) -> bool:
        if self.beacons is None:
            return True
        return self.beacons.table.contains(next_hop, self.now)

    def _handle_broken_link(self, next_hop: int) -> None:
        affected = self.routes.invalidate_via(next_hop)
        if affected:
            self.stats.link_break()
            self._send_rerr(affected)

    def _send_rerr(self, unreachable: list) -> None:
        rerr = self.make_control(
            "RERR",
            size_bytes=self.config.rerr_size_bytes,
            unreachable=list(unreachable),
        )
        self.broadcast(rerr)
