"""Lint entry point: ``python -m repro.devtools.lint [paths...]``.

Exit codes: 0 when the tree lints clean, 1 when findings survive
suppression, 2 on usage errors.  With no paths, lints the installed
``repro`` package source, so ``python -m repro.devtools.lint`` is always a
valid self-check.  Also reachable as ``repro-vanet lint``.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.engine import lint_paths
from repro.devtools.reporters import REPORTERS


def default_lint_target() -> str:
    """The installed ``repro`` package directory (the default lint tree)."""
    import repro

    return str(Path(repro.__file__).resolve().parent)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the lint entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Determinism & registry-contract static analysis over repro "
            "source trees (see 'repro-vanet list-lint-rules' for the rule "
            "catalogue)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text; 'github' emits CI annotations)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    return parser


def run_lint(
    paths: Sequence[str], output_format: str = "text", select: Optional[str] = None
) -> int:
    """Lint ``paths`` and print the report; returns the process exit code."""
    selected: Optional[List[str]] = None
    if select:
        selected = [part.strip() for part in select.split(",") if part.strip()]
    try:
        report = lint_paths(list(paths) or [default_lint_target()], select=selected)
    except KeyError as exc:
        print(exc.args[0] if exc.args else str(exc))
        return 2
    except OSError as exc:
        print(str(exc))
        return 2
    print(REPORTERS[output_format](report))
    return 0 if report.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.devtools.lint``."""
    args = build_parser().parse_args(argv)
    return run_lint(args.paths, output_format=args.format, select=args.select)


if __name__ == "__main__":
    raise SystemExit(main())
