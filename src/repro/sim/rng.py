"""Reproducible named random-number streams.

Every stochastic component of the simulator (mobility, radio fading, MAC
backoff, traffic generation, ...) draws from its own named stream.  Streams
are derived deterministically from a single master seed, so adding a new
consumer of randomness never perturbs the draws seen by existing components.
This is the standard discipline for reproducible network simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed all streams are derived from."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same ``(master_seed, name)`` pair always yields an identical
        sequence of draws, independently of the order in which streams are
        requested.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived_seed = self._derive_seed(name)
        stream = random.Random(derived_seed)
        self._streams[name] = stream
        return stream

    def adopt(self, name: str, stream: random.Random) -> random.Random:
        """Install a pre-advanced stream object under ``name``.

        The shared-memory sweep stages mobility once per distinct scenario
        core: the parent derives the ``"mobility"`` stream exactly as
        :meth:`stream` would, advances it through the build, and ships the
        resulting :class:`random.Random` (pickled together with the built
        model, preserving shared references) to workers -- which adopt it
        here so the run continues the stream from the post-build state
        instead of replaying the build draws.  Adopting a stream that was
        already created (or adopted) raises: by then a consumer may hold
        the old object and the two would silently diverge.
        """
        if name in self._streams:
            raise ValueError(
                f"stream {name!r} already created; adopt must precede first use"
            )
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child :class:`RandomStreams` keyed by ``name``.

        Useful to give a sub-system (e.g. one protocol instance per node) its
        own namespace of streams.
        """
        return RandomStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        material = f"{self._master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")
