"""Parameter sweeps over scenarios and protocols."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.harness.runner import ExperimentRunner, RunResult
from repro.harness.scenario import Scenario
from repro.mobility.generator import TrafficDensity
from repro.protocols.base import ProtocolConfig


def sweep_protocols(
    scenario: Scenario,
    protocol_names: Sequence[str],
    runner: Optional[ExperimentRunner] = None,
    protocol_configs: Optional[Dict[str, ProtocolConfig]] = None,
) -> List[RunResult]:
    """Run every protocol in ``protocol_names`` through the same scenario."""
    runner = runner if runner is not None else ExperimentRunner()
    configs = protocol_configs or {}
    results: List[RunResult] = []
    for name in protocol_names:
        results.append(runner.run(scenario, name, protocol_config=configs.get(name)))
    return results


def sweep_densities(
    base_scenario: Scenario,
    protocol_names: Sequence[str],
    densities: Iterable[TrafficDensity] = (
        TrafficDensity.SPARSE,
        TrafficDensity.NORMAL,
        TrafficDensity.CONGESTED,
    ),
    runner: Optional[ExperimentRunner] = None,
    protocol_configs: Optional[Dict[str, ProtocolConfig]] = None,
) -> List[RunResult]:
    """Run every protocol at every traffic density derived from ``base_scenario``."""
    runner = runner if runner is not None else ExperimentRunner()
    results: List[RunResult] = []
    for density in densities:
        scenario = base_scenario.with_overrides(
            density=density, name=f"{base_scenario.name}-{density.value}"
        )
        results.extend(
            sweep_protocols(scenario, protocol_names, runner=runner, protocol_configs=protocol_configs)
        )
    return results


def sweep_scenarios(
    scenarios: Sequence[Scenario],
    protocol_names: Sequence[str],
    runner: Optional[ExperimentRunner] = None,
) -> List[RunResult]:
    """Run every protocol through every scenario."""
    runner = runner if runner is not None else ExperimentRunner()
    results: List[RunResult] = []
    for scenario in scenarios:
        results.extend(sweep_protocols(scenario, protocol_names, runner=runner))
    return results
