"""Road graphs: intersections connected by road segments.

Built on :mod:`networkx` so the geographic and probability protocols (CAR,
GVGrid) can run shortest-path and best-reliability queries over road
topology, the way they would over a digital map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.geometry import Vec2
from repro.roadnet.segments import RoadSegment


class RoadGraph:
    """An undirected graph of intersections and road segments."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._segments: Dict[int, RoadSegment] = {}
        self._next_segment_id = 0

    # ------------------------------------------------------------- structure
    def add_intersection(self, name: str, position: Vec2) -> str:
        """Add an intersection node (idempotent for the same name)."""
        self._graph.add_node(name, position=position)
        return name

    def add_road(
        self,
        a: str,
        b: str,
        lanes: int = 2,
        speed_limit_mps: float = 13.9,
    ) -> RoadSegment:
        """Connect two existing intersections by a straight road segment."""
        if a not in self._graph or b not in self._graph:
            raise KeyError("both intersections must exist before adding a road")
        segment = RoadSegment(
            segment_id=self._next_segment_id,
            start=self.position_of(a),
            end=self.position_of(b),
            lanes=lanes,
            speed_limit_mps=speed_limit_mps,
        )
        self._next_segment_id += 1
        self._segments[segment.segment_id] = segment
        self._graph.add_edge(
            a, b, length=segment.length, segment_id=segment.segment_id
        )
        return segment

    # ---------------------------------------------------------------- queries
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only use recommended)."""
        return self._graph

    @property
    def intersections(self) -> List[str]:
        """Names of all intersections."""
        return list(self._graph.nodes)

    @property
    def segments(self) -> List[RoadSegment]:
        """All road segments."""
        return list(self._segments.values())

    def segment(self, segment_id: int) -> RoadSegment:
        """Look up a segment by id."""
        return self._segments[segment_id]

    def segment_between(self, a: str, b: str) -> Optional[RoadSegment]:
        """The segment connecting two intersections, if any."""
        if not self._graph.has_edge(a, b):
            return None
        return self._segments[self._graph.edges[a, b]["segment_id"]]

    def position_of(self, name: str) -> Vec2:
        """Position of an intersection."""
        return self._graph.nodes[name]["position"]

    def neighbors(self, name: str) -> List[str]:
        """Intersections directly connected to ``name``."""
        return list(self._graph.neighbors(name))

    def nearest_intersection(self, position: Vec2) -> str:
        """The intersection closest to ``position``."""
        if self._graph.number_of_nodes() == 0:
            raise ValueError("road graph has no intersections")
        return min(
            self._graph.nodes,
            key=lambda name: position.distance_to(self.position_of(name)),
        )

    def nearest_segment(self, position: Vec2) -> Optional[RoadSegment]:
        """The road segment closest to ``position`` (None for an empty graph)."""
        if not self._segments:
            return None
        return min(self._segments.values(), key=lambda s: s.distance_to(position))

    def shortest_path(self, a: str, b: str) -> List[str]:
        """Shortest path (by road length) between two intersections."""
        return nx.shortest_path(self._graph, a, b, weight="length")

    def shortest_path_length(self, a: str, b: str) -> float:
        """Length in metres of the shortest path between two intersections."""
        return nx.shortest_path_length(self._graph, a, b, weight="length")

    def best_path(
        self, a: str, b: str, edge_cost: Dict[Tuple[str, str], float]
    ) -> List[str]:
        """Shortest path under an arbitrary per-edge cost.

        ``edge_cost`` maps (intersection, intersection) pairs (either order)
        to a non-negative cost.  Edges missing from the map use their length.
        This is the primitive CAR-style protocols use to pick the road path
        with the best connectivity (lowest ``-log`` connectivity probability).
        """

        def weight(u: str, v: str, data: dict) -> float:
            if (u, v) in edge_cost:
                return edge_cost[(u, v)]
            if (v, u) in edge_cost:
                return edge_cost[(v, u)]
            return data["length"]

        return nx.shortest_path(self._graph, a, b, weight=weight)

    def path_segments(self, path: Sequence[str]) -> List[RoadSegment]:
        """Segments along a path of intersection names."""
        result: List[RoadSegment] = []
        for a, b in zip(path, path[1:]):
            segment = self.segment_between(a, b)
            if segment is None:
                raise KeyError(f"no road between {a} and {b}")
            result.append(segment)
        return result
