"""Lightweight event-tap seam between the sim core and monitor probes.

The simulator's hot paths (:class:`~repro.sim.statistics.StatsCollector`
counter methods, :meth:`WirelessMedium.begin_transmission`, node
join/leave in :class:`~repro.sim.network.Network`) carry a single
``if tap is not None:`` guard.  When no monitors are registered the tap
is ``None`` and every call site pays one attribute load and a truthy
check -- nothing else.  When monitors *are* registered, an
:class:`EventTap` fans each lifecycle event out to every monitor's
``on_*`` handler, stamping it with the simulator clock.

The tap deliberately exposes a *semantic* event stream (packet
originated / delivered / dropped / retired, transmission, collision,
node join/leave) rather than raw frames: the events mirror exactly what
the :class:`StatsCollector` already counts, so a probe that consumes the
tap can reconcile its own view against the collector's totals -- the
basis of the conservation-invariant probe.

Drops are *count-only* events tagged with a reason string: the fifty-odd
protocol call sites that report ``ttl``/``no_route``/``queue``/
``buffer``/``weak_signal`` drops do not carry the packet, and the tap
does not pretend otherwise.

Monitors must stay **passive**: they never schedule events, touch the
RNG, or mutate sim state.  A monitored run therefore produces traces and
metrics byte-identical to an unmonitored one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim <-> monitors)
    from repro.geometry import Vec2
    from repro.monitors.base import Monitor
    from repro.sim.engine import Simulator
    from repro.sim.packet import Packet
    from repro.sim.statistics import FlowStats


class EventTap:
    """Fans sim-core lifecycle events out to a fixed list of monitors.

    One tap per run, built by the harness when ``Scenario.monitors`` is
    non-empty and installed as ``StatsCollector.tap``.  Every ``emit``
    method reads the simulator clock itself, so the (many) stats call
    sites do not need to thread ``now`` through.
    """

    __slots__ = ("sim", "monitors")

    def __init__(self, sim: "Simulator", monitors: Sequence["Monitor"]):
        self.sim = sim
        self.monitors = tuple(monitors)

    # ------------------------------------------------------------- lifecycle
    def packet_originated(
        self, packet: "Packet", flow: "FlowStats", expected_receivers: int
    ) -> None:
        """An application originated a data packet (after flow accounting)."""
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_packet_originated(now, packet, flow, expected_receivers)

    def packet_delivered(
        self,
        packet: "Packet",
        flow: "FlowStats",
        receiver: Optional[int],
        new: bool,
        delay: float,
    ) -> None:
        """A data packet reached a destination.

        ``new`` is False for dedup-suppressed duplicates -- those are still
        emitted (the invariant probe distinguishes a benign duplicate from
        a delivery re-counted after retirement).
        """
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_packet_delivered(now, packet, flow, receiver, new, delay)

    def packet_dropped(self, reason: str, count: int = 1) -> None:
        """``count`` packets/frames dropped for ``reason`` (count-only)."""
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_packet_dropped(now, reason, count)

    def packet_retired(self, flow_id: int, key: Tuple, known: bool) -> None:
        """A broadcast packet identity left flight (dedup state released).

        ``known`` is False when the collector had no flow record for
        ``flow_id`` -- the invariant probe treats that as suspicious.
        """
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_packet_retired(now, flow_id, key, known)

    # --------------------------------------------------------------- channel
    def transmission(
        self,
        packet: "Packet",
        sender_id: int,
        position: "Vec2",
    ) -> None:
        """A frame was handed to the wireless channel at ``position``."""
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_transmission(now, packet, sender_id, position)

    def collision(self, count: int) -> None:
        """``count`` frames lost to interference at some receiver(s)."""
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_collision(now, count)

    # --------------------------------------------------------------- topology
    def node_join(self, node_id: int, kind: str) -> None:
        """A node registered with the network (``kind``: vehicle/bus/rsu...)."""
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_node_join(now, node_id, kind)

    def node_leave(self, node_id: int) -> None:
        """A node was removed from the network mid-run."""
        now = self.sim.now
        for monitor in self.monitors:
            monitor.on_node_leave(now, node_id)
