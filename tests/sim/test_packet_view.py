"""Unit tests for the zero-copy delivery path: PacketView and CowMapping."""

import pytest

from repro.sim.packet import (
    BROADCAST,
    CowMapping,
    Packet,
    PacketView,
    make_control_packet,
    make_data_packet,
)


def _fresh_packet(**overrides):
    packet = make_data_packet(
        "test", source=1, destination=2, size_bytes=256, flow_id=7, seq=3
    )
    packet.headers.update({"path": [1], "weight": 2.5})
    packet.payload.update({"blob": {"k": "v"}})
    for name, value in overrides.items():
        setattr(packet, name, value)
    return packet


class TestCowMapping:
    def test_reads_delegate_to_shared_dict(self):
        shared = {"a": 1, "b": [2, 3]}
        cow = CowMapping(shared)
        assert cow["a"] == 1
        assert list(cow) == ["a", "b"]
        assert len(cow) == 2
        assert bool(cow)
        assert cow.content() is shared

    def test_first_write_materializes_private_copy(self):
        shared = {"a": 1, "nested": {"x": 1}}
        cow = CowMapping(shared)
        cow["a"] = 99
        assert shared["a"] == 1
        assert cow["a"] == 99
        assert cow.content() is not shared
        # Nested values were deep-copied at materialization, so later
        # in-place mutation through the cow cannot leak either.
        cow["nested"]["x"] = 42
        assert shared["nested"]["x"] == 1

    def test_delete_materializes_too(self):
        shared = {"a": 1, "b": 2}
        cow = CowMapping(shared)
        del cow["a"]
        assert "a" in shared
        assert "a" not in cow
        assert len(cow) == 1


class TestPacketView:
    def test_view_delegates_every_field(self):
        packet = _fresh_packet()
        view = packet.view()
        assert isinstance(view, PacketView)
        for name in (
            "kind",
            "protocol",
            "ptype",
            "source",
            "destination",
            "size_bytes",
            "created_at",
            "ttl",
            "hop_count",
            "flow_id",
            "seq",
            "rx_power_dbm",
        ):
            assert getattr(view, name) == getattr(packet, name)

    def test_view_uid_is_fresh_and_from_the_shared_counter(self):
        packet = _fresh_packet()
        view = packet.view()
        copy = packet.copy()
        assert view.uid != packet.uid
        # Same counter: uids are strictly increasing across view/copy.
        assert copy.uid == view.uid + 1

    def test_attribute_write_shadows_base(self):
        packet = _fresh_packet()
        view = packet.view()
        view.rx_power_dbm = -61.5
        assert view.rx_power_dbm == -61.5
        assert packet.rx_power_dbm is None

    def test_header_item_write_is_isolated(self):
        packet = _fresh_packet()
        view = packet.view()
        view.headers["hop"] = 4
        assert view.headers["hop"] == 4
        assert "hop" not in packet.headers
        # Reads that never wrote still share storage.
        other = packet.view()
        assert other.headers.content() is packet.headers

    def test_two_views_do_not_alias_each_other(self):
        packet = _fresh_packet()
        a, b = packet.view(), packet.view()
        a.headers["only-a"] = 1
        assert "only-a" not in b.headers
        assert "only-a" not in packet.headers

    def test_copy_materializes_full_packet(self):
        packet = _fresh_packet()
        view = packet.view()
        view.headers["mark"] = True
        materialized = view.copy()
        assert type(materialized) is Packet
        assert materialized.headers["mark"] is True
        assert "mark" not in packet.headers
        materialized.headers["path"].append(99)
        assert packet.headers["path"] == [1]

    def test_forwarded_from_view_does_not_touch_base(self):
        packet = _fresh_packet()
        view = packet.view()
        forwarded = view.forwarded()
        assert forwarded.hop_count == packet.hop_count + 1
        assert forwarded.ttl == packet.ttl - 1
        assert packet.hop_count == 0

    def test_view_of_view_walks_the_chain(self):
        packet = _fresh_packet()
        first = packet.view()
        first.rx_power_dbm = -70.0
        second = first.view()
        assert second.rx_power_dbm == -70.0
        assert second.source == packet.source
        materialized = second.copy()
        assert materialized.rx_power_dbm == -70.0

    def test_flow_key_and_kind_predicates(self):
        packet = _fresh_packet()
        view = packet.view()
        assert view.flow_key == packet.flow_key
        assert view.is_data and not view.is_control
        control = make_control_packet("test", "HELLO", 5, BROADCAST)
        assert control.view().is_control


class TestMutatesInFlightOptOut:
    def test_attach_protocol_reads_the_flag(self):
        from repro.sim.node import Node

        class InPlaceMutator:
            mutates_in_flight = True

        class ReadOnly:
            pass

        mutating = Node.__new__(Node)
        mutating.attach_protocol(InPlaceMutator())
        assert mutating.cow_frames_ok is False

        safe = Node.__new__(Node)
        safe.attach_protocol(ReadOnly())
        assert safe.cow_frames_ok is True

    def test_base_protocol_defaults_to_cow_safe(self):
        from repro.protocols.base import RoutingProtocol

        assert RoutingProtocol.mutates_in_flight is False
