"""Tests for the experiment harness (scenarios, runner, sweeps, comparison, reporting)."""

import pytest

from repro.core.taxonomy import Category
from repro.harness.compare import (
    DEFAULT_REPRESENTATIVES,
    best_in_metric,
    category_comparison,
    category_of_protocol,
    category_representatives,
)
from repro.harness.reporting import format_table, rows_to_csv, summarize_results
from repro.harness.runner import ExperimentRunner, RunResult
from repro.harness.scenario import (
    FlowSpec,
    RadioConfig,
    Scenario,
    highway_scenario,
    manhattan_scenario,
)
from repro.harness.sweep import sweep_densities, sweep_protocols
from repro.mobility.generator import TrafficDensity
from repro.sim.statistics import StatsCollector


def _small_scenario(**overrides) -> Scenario:
    base = highway_scenario(
        TrafficDensity.SPARSE,
        duration_s=12.0,
        max_vehicles=25,
        default_flow_count=2,
        seed=3,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestScenario:
    def test_highway_and_manhattan_constructors(self):
        highway = highway_scenario(TrafficDensity.CONGESTED)
        urban = manhattan_scenario(TrafficDensity.SPARSE)
        assert highway.kind == "highway"
        assert urban.kind == "manhattan"
        assert "congested" in highway.name
        assert "sparse" in urban.name

    def test_with_overrides_returns_modified_copy(self):
        scenario = _small_scenario()
        other = scenario.with_overrides(duration_s=99.0, name="changed")
        assert other.duration_s == 99.0
        assert scenario.duration_s == 12.0
        assert other.name == "changed"

    def test_flow_spec_defaults(self):
        spec = FlowSpec()
        assert spec.packet_count > 0
        assert spec.interval_s > 0


class TestRunner:
    def test_build_creates_vehicles_and_rsus(self):
        runner = ExperimentRunner()
        scenario = _small_scenario(rsu_spacing_m=500.0)
        built = runner.build(scenario)
        assert len(built.vehicle_nodes) > 0
        assert len(built.network.rsus) == 4
        assert built.road_graph is not None

    def test_run_produces_summary_and_flows(self):
        runner = ExperimentRunner()
        result = runner.run(_small_scenario(), "Greedy")
        assert isinstance(result, RunResult)
        assert result.protocol == "Greedy"
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert result.summary["data_sent"] > 0
        assert result.flow_details
        assert result.vehicle_count > 0
        assert "path_stretch" in result.extra
        row = result.row()
        assert row["scenario"] == result.scenario_name

    def test_same_seed_is_reproducible(self):
        runner = ExperimentRunner()
        first = runner.run(_small_scenario(), "Greedy")
        second = runner.run(_small_scenario(), "Greedy")
        assert first.summary == second.summary

    def test_different_seeds_differ(self):
        runner = ExperimentRunner()
        first = runner.run(_small_scenario(), "Greedy")
        second = runner.run(_small_scenario(seed=77), "Greedy")
        assert first.summary != second.summary

    def test_explicit_flows_are_used(self):
        scenario = _small_scenario()
        scenario.flows.append(
            FlowSpec(source_index=0, destination_index=1, start_time_s=2.0, packet_count=3)
        )
        runner = ExperimentRunner()
        result = runner.run(scenario, "Flooding")
        assert result.summary["data_sent"] == 3.0

    def test_manhattan_scenario_runs(self):
        scenario = manhattan_scenario(
            TrafficDensity.SPARSE, duration_s=10.0, max_vehicles=20, default_flow_count=2
        )
        runner = ExperimentRunner()
        result = runner.run(scenario, "Greedy")
        assert result.summary["data_sent"] > 0

    def test_unknown_propagation_rejected(self):
        scenario = _small_scenario(radio=RadioConfig(propagation="warp-drive"))
        runner = ExperimentRunner()
        with pytest.raises(ValueError):
            runner.run(scenario, "Greedy")

    def test_shadowing_propagation_runs(self):
        scenario = _small_scenario(radio=RadioConfig(propagation="shadowing"))
        runner = ExperimentRunner()
        result = runner.run(scenario, "Flooding")
        assert result.summary["data_sent"] > 0

    def _waypoint_scenario(self, seed: int) -> Scenario:
        return Scenario(
            name="rwp",
            kind="random_waypoint",
            duration_s=10.0,
            max_vehicles=12,
            default_flow_count=2,
            seed=seed,
        )

    def _waypoint_positions(self, seed: int):
        built = ExperimentRunner().build(self._waypoint_scenario(seed))
        mobility = built.network.mobility
        for _ in range(10):
            mobility.step(0.5)
        return [(v.position.x, v.position.y) for v in mobility.vehicles]

    def test_random_waypoint_trajectories_follow_scenario_seed(self):
        """Regression: random-waypoint mobility used a fixed Random(0)
        regardless of ``scenario.seed``, so every seed produced the same
        trajectories."""
        assert self._waypoint_positions(3) == self._waypoint_positions(3)
        assert self._waypoint_positions(3) != self._waypoint_positions(77)

    def test_random_waypoint_runs_differ_across_seeds(self):
        runner = ExperimentRunner()
        first = runner.run(self._waypoint_scenario(3), "Flooding")
        second = runner.run(self._waypoint_scenario(77), "Flooding")
        assert first.summary != second.summary

    def test_ideal_hop_samples_do_not_leak_across_runs(self):
        """Regression: the ideal-hop samples lived on the runner and were not
        reset on the <2-vehicle early return, so a reused runner carried the
        previous run's samples around."""
        runner = ExperimentRunner()
        first = runner.run(_small_scenario(), "Greedy")
        assert "mean_ideal_hops" in first.extra
        # A run with a single vehicle schedules no flows; it must neither
        # report path metrics nor retain samples from the previous run.
        lonely = runner.run(_small_scenario(max_vehicles=1), "Greedy")
        assert "mean_ideal_hops" not in lonely.extra
        assert "path_stretch" not in lonely.extra
        assert not getattr(runner, "_ideal_hop_samples", [])
        # And the fix must not disturb a following normal run.
        second = runner.run(_small_scenario(), "Greedy")
        assert second.extra["mean_ideal_hops"] == pytest.approx(
            first.extra["mean_ideal_hops"]
        )

    def test_run_result_to_record_round_trip(self):
        runner = ExperimentRunner()
        result = runner.run(_small_scenario(), "Greedy")
        record = result.to_record()
        assert record.seed == 3
        assert record.scenario_name == result.scenario_name
        assert record.summary == result.summary
        assert record.extra == result.extra
        assert record.metrics["delivery_ratio"] == result.summary["delivery_ratio"]
        rebuilt = type(record).from_dict(record.to_dict())
        assert rebuilt == record


class TestSweeps:
    def test_sweep_protocols_returns_one_result_each(self):
        results = sweep_protocols(_small_scenario(), ["Greedy", "Flooding"])
        assert [r.protocol for r in results] == ["Greedy", "Flooding"]

    def test_sweep_densities_covers_requested_densities(self):
        results = sweep_densities(
            _small_scenario(),
            ["Greedy"],
            densities=[TrafficDensity.SPARSE, TrafficDensity.NORMAL],
        )
        names = {r.scenario_name for r in results}
        assert len(results) == 2
        assert any("sparse" in name for name in names)
        assert any("normal" in name for name in names)


class TestComparison:
    def _fake_result(self, protocol, scenario="s", pdr=0.5):
        stats = StatsCollector()
        summary = {
            "delivery_ratio": pdr,
            "mean_delay_s": 0.1,
            "overhead_ratio": 2.0,
            "transmissions_per_delivery": 4.0,
            "mean_route_lifetime_s": 3.0,
            "mac_collisions": 10.0,
        }
        return RunResult(scenario, protocol, summary, stats, extra={"path_stretch": 1.2})

    def test_default_representatives_cover_all_categories(self):
        assert set(DEFAULT_REPRESENTATIVES) == set(Category)
        chosen = category_representatives({Category.GEOGRAPHIC: "Zone"})
        assert chosen[Category.GEOGRAPHIC] == "Zone"
        assert chosen[Category.MOBILITY] == DEFAULT_REPRESENTATIVES[Category.MOBILITY]

    def test_category_of_protocol(self):
        assert category_of_protocol("AODV") is Category.CONNECTIVITY
        assert category_of_protocol("Greedy") is Category.GEOGRAPHIC

    def test_category_comparison_groups_and_averages(self):
        results = [
            self._fake_result("AODV", pdr=0.4),
            self._fake_result("DSR", pdr=0.6),
            self._fake_result("Greedy", pdr=0.8),
        ]
        rows = category_comparison(results)
        by_category = {row["category"]: row for row in rows}
        assert by_category["connectivity"]["delivery_ratio"] == pytest.approx(0.5)
        assert by_category["geographic"]["delivery_ratio"] == pytest.approx(0.8)
        assert "broadcasting storm" in by_category["connectivity"]["paper_cons"]

    def test_best_in_metric(self):
        results = [self._fake_result("AODV", pdr=0.4), self._fake_result("Greedy", pdr=0.9)]
        best = best_in_metric(results, "delivery_ratio")
        assert best.protocol == "Greedy"
        worst = best_in_metric(results, "delivery_ratio", largest=False)
        assert worst.protocol == "AODV"
        assert best_in_metric([], "delivery_ratio") is None


class TestReporting:
    ROWS = [
        {"protocol": "AODV", "pdr": 0.51234, "hops": 3},
        {"protocol": "Greedy", "pdr": 0.76543, "hops": 2},
    ]

    def test_format_table_alignment_and_precision(self):
        table = format_table(self.ROWS, precision=2, title="Results")
        lines = table.splitlines()
        assert lines[0] == "Results"
        assert "protocol" in lines[1]
        assert "0.51" in table and "0.77" in table

    def test_format_table_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_format_table_column_selection(self):
        table = format_table(self.ROWS, columns=["protocol"])
        assert "pdr" not in table

    def test_rows_to_csv_round_trip(self, tmp_path):
        path = tmp_path / "out.csv"
        rows_to_csv(path, self.ROWS)
        text = path.read_text()
        assert text.splitlines()[0] == "protocol,pdr,hops"
        assert "Greedy" in text

    def test_summarize_results_groups_and_averages(self):
        rows = [
            {"protocol": "AODV", "pdr": 0.4},
            {"protocol": "AODV", "pdr": 0.6},
            {"protocol": "Greedy", "pdr": 0.8},
        ]
        summary = {row["protocol"]: row for row in summarize_results(rows, "protocol")}
        assert summary["AODV"]["pdr"] == pytest.approx(0.5)
        assert summary["AODV"]["runs"] == 2
