"""Road-side-unit placement strategies and coverage analysis.

Sec. V of the paper notes that infrastructure routing "is most reliable and
feasible in reality", but "the deployment of infrastructure is costly and
limited to urban area".  The placement helpers here let the benchmarks sweep
RSU density from zero (rural) to full coverage (dense urban) and quantify
both the delivery gain and the deployment cost.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry import Vec2
from repro.roadnet.graph import RoadGraph


def place_along_highway(
    length_m: float, spacing_m: float, lateral_offset_m: float = 15.0
) -> List[Vec2]:
    """RSUs every ``spacing_m`` metres along a highway of ``length_m`` metres.

    A non-positive or infinite spacing yields no RSUs (the "rural" case).
    """
    if spacing_m <= 0 or spacing_m == float("inf"):
        return []
    positions: List[Vec2] = []
    x = spacing_m / 2.0
    while x < length_m:
        positions.append(Vec2(x, -lateral_offset_m))
        x += spacing_m
    return positions


def place_at_intersections(graph: RoadGraph, every_k: int = 1) -> List[Vec2]:
    """RSUs at every ``every_k``-th intersection of a road graph."""
    if every_k < 1:
        raise ValueError("every_k must be at least 1")
    names = sorted(graph.intersections)
    return [graph.position_of(name) for i, name in enumerate(names) if i % every_k == 0]


def place_on_grid(
    width_m: float, height_m: float, spacing_m: float
) -> List[Vec2]:
    """RSUs on a regular grid covering a ``width_m`` x ``height_m`` area."""
    if spacing_m <= 0:
        return []
    positions: List[Vec2] = []
    y = spacing_m / 2.0
    while y < height_m:
        x = spacing_m / 2.0
        while x < width_m:
            positions.append(Vec2(x, y))
            x += spacing_m
        y += spacing_m
    return positions


def coverage_fraction(
    rsu_positions: Sequence[Vec2],
    sample_points: Sequence[Vec2],
    radio_range_m: float,
) -> float:
    """Fraction of ``sample_points`` within radio range of at least one RSU."""
    if not sample_points:
        return 0.0
    if not rsu_positions:
        return 0.0
    covered = 0
    for point in sample_points:
        for rsu in rsu_positions:
            if point.distance_to(rsu) <= radio_range_m:
                covered += 1
                break
    return covered / len(sample_points)


def sample_highway_points(length_m: float, step_m: float = 50.0) -> List[Vec2]:
    """Evenly spaced sample points along a highway, for coverage analysis."""
    if step_m <= 0:
        raise ValueError("step must be positive")
    count = int(length_m // step_m)
    return [Vec2(i * step_m, 0.0) for i in range(count + 1)]
