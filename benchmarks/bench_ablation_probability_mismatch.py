"""E9 (ablation) -- "Probability: only working for a certain traffic".

Table I's caveat for the probability category is that the model is calibrated
for particular traffic conditions: "if the condition is however not satisfied,
it may not work or work with lower performance" (Sec. VII.A).  This ablation
exercises that with CAR's segment-connectivity model: once with densities
*measured* from the actual traffic, and once with a fixed assumed density
calibrated for normal traffic but applied to sparse traffic.

A second sweep does the same for Yan-TBP's relative-speed calibration: the
stability model tuned for calm same-direction traffic (sigma = 2 m/s) versus
one wildly miscalibrated (sigma = 30 m/s), which makes every link look
equally unstable and destroys the ranking the tickets rely on.

Expected shape: the measured/correctly-calibrated variant delivers at least
as well as the miscalibrated one, and the connectivity estimates of the
miscalibrated CAR are overconfident in sparse traffic.
"""

from __future__ import annotations

from repro.mobility.generator import TrafficDensity
from repro.protocols.probability import CarConfig, YanTbpConfig

from benchmarks.common import RUNNER, report, run_once, small_highway


def _run_mismatch_experiments():
    results = {}
    # --- CAR: measured vs. assumed (normal-traffic) density, in sparse traffic.
    sparse = small_highway(TrafficDensity.SPARSE, duration_s=25.0, max_vehicles=60, flows=5, seed=71)
    results["car_measured"] = RUNNER.run(
        sparse, "CAR", protocol_config=CarConfig(use_measured_density=True)
    )
    results["car_assumed_normal"] = RUNNER.run(
        sparse,
        "CAR",
        protocol_config=CarConfig(use_measured_density=False, assumed_density_veh_per_km=15.0),
    )
    # --- Yan-TBP: correctly calibrated vs. miscalibrated stability model, normal traffic.
    normal = small_highway(TrafficDensity.NORMAL, duration_s=22.0, max_vehicles=90, flows=5, seed=72)
    results["tbp_calibrated"] = RUNNER.run(
        normal, "Yan-TBP", protocol_config=YanTbpConfig(relative_speed_std_mps=2.0)
    )
    results["tbp_miscalibrated"] = RUNNER.run(
        normal, "Yan-TBP", protocol_config=YanTbpConfig(relative_speed_std_mps=30.0)
    )
    return results


def test_ablation_probability_model_mismatch(benchmark):
    """Delivery under correct vs. mismatched probability-model calibration."""
    results = run_once(benchmark, _run_mismatch_experiments)

    rows = []
    for label, result in results.items():
        summary = result.summary
        rows.append(
            {
                "configuration": label,
                "scenario": result.scenario_name,
                "delivery_ratio": summary["delivery_ratio"],
                "mean_delay_s": summary["mean_delay_s"],
                "discovery_tx": summary["discovery_transmissions"],
                "no_route_drops": summary["no_route_drops"],
                "mean_hops": summary["mean_hops"],
            }
        )
    report(
        "ablation_probability_mismatch",
        rows,
        title="E9 -- probability-model calibration vs. actual traffic",
    )

    by_label = {row["configuration"]: row for row in rows}
    # Correct calibration never loses to the mismatched model, and the
    # experiment only counts if the protocols actually delivered something.
    assert by_label["car_measured"]["delivery_ratio"] >= 0.3
    assert (
        by_label["car_measured"]["delivery_ratio"]
        >= by_label["car_assumed_normal"]["delivery_ratio"] - 0.05
    )
    assert by_label["tbp_calibrated"]["delivery_ratio"] >= 0.3
    assert (
        by_label["tbp_calibrated"]["delivery_ratio"]
        >= by_label["tbp_miscalibrated"]["delivery_ratio"] - 0.05
    )
