"""The shared wireless broadcast medium.

Every frame handed to the medium is propagated to all registered nodes: the
propagation model attenuates it, concurrent transmissions interfere with it,
and the reception model decides per receiver whether the frame arrives.
Unicast frames (``next_hop`` set) are filtered at the receiver, but they
still occupy the channel for everybody -- which is what makes flooding
expensive and is the physical basis of Table I's "overhead / broadcast
storm" column for connectivity-based routing.

Receiver fan-out, carrier sensing and interference aggregation all go
through a pluggable :mod:`~repro.sim.spatial` index (``"grid"`` by default,
``"linear"`` as the exhaustive oracle).  Candidates from the index are
re-filtered against live positions and visited in registration order, so
with a finite-range propagation model (unit disk, the default) both
backends produce byte-identical event traces.  Models whose received
power never drops to ``NO_SIGNAL_DBM`` (two-ray, free-space, shadowing)
are approximated under the grid: transmitters beyond the carrier-sense
cutoff are excluded from carrier sensing and interference sums, the same
bounded-range tradeoff :meth:`WirelessMedium._reception_cutoff` already
applies to reception.

The third backend, ``"vectorized"``, keeps the grid index for candidate
lookups but registers every node in a struct-of-arrays
:class:`~repro.sim.position_store.PositionStore` and evaluates the
per-frame physics -- distances, received powers, interference sums and
reception decisions -- as numpy array expressions over the candidate rows.
Each array expression is chosen to be bit-identical to its scalar
counterpart (see :mod:`~repro.sim.position_store`), so the vectorized
backend reproduces the scalar backends' event traces byte for byte.  The
fast path applies when the propagation model is deterministic and the
interference model is additive (or unused); stochastic channels fall back
to the scalar per-receiver loop so RNG streams are consumed in exactly the
scalar order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.geometry import Vec2
from repro.radio.interference import (
    NO_SIGNAL_DBM,
    dbm_to_mw_batch,
    mw_to_dbm,
    mw_to_dbm_batch,
)
from repro.radio.propagation import PropagationModel
from repro.radio.reception import (
    BATCH_COLLISION,
    BATCH_RECEIVED,
    ReceptionDecision,
    ReceptionModel,
)
from repro.sim.engine import Simulator
from repro.sim.packet import BROADCAST, Packet
from repro.sim.spatial import UniformGridIndex, make_spatial_index
from repro.sim.statistics import StatsCollector
from repro.sim.trace import EventTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.mac import MacConfig
    from repro.radio.stack import RadioStack
    from repro.sim.node import Node

#: Default row-count threshold below which the vectorized completion hands
#: frames to the scalar loop (see ``WirelessMedium.vectorized_min_rows``).
#: Benchmarked: at N=100 (and marginally at N=400) the per-frame numpy
#: dispatch overhead made "vectorized" slower than the scalar backends.
VECTORIZED_MIN_ROWS = 512


@dataclass
class ActiveTransmission:
    """A frame currently (or recently) on the air."""

    sender_id: int
    sender_position: Vec2
    tx_power_dbm: float
    packet: Packet
    next_hop: int
    start: float
    end: float
    uid: int = field(default=0)


class WirelessMedium:
    """Shared channel connecting every registered node.

    The channel models come either from an assembled
    :class:`~repro.radio.stack.RadioStack` (``stack=...``, what the harness
    passes after resolving the scenario's radio through the registry) or
    from the individual ``propagation`` / ``reception`` / ``mac_config``
    arguments; explicit individual arguments override the stack's
    components, and whatever is still unset falls back to the defaults
    (unit disk, SNR threshold, additive interference, 802.11p MAC).

    Args:
        stack: A complete radio profile supplying propagation, reception,
            interference combination, MAC parameters and transmit power in
            one object.
        spatial_backend: ``"grid"`` (default), ``"linear"`` or
            ``"vectorized"`` -- how receiver and carrier-sense candidates
            are looked up (and, for ``"vectorized"``, whether per-frame
            physics runs as numpy array expressions; requires numpy).
        cell_size_m: Grid cell size; defaults to the reception cutoff.
        position_slack_m: How far a node may drift from its indexed position
            before a refresh without being missed by a query.
        position_refresh_s: Maximum staleness of indexed positions; queries
            lazily re-index all nodes once this much simulated time passed.
    """

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        reception: Optional[ReceptionModel] = None,
        stats: Optional[StatsCollector] = None,
        mac_config: Optional["MacConfig"] = None,
        trace: Optional[EventTrace] = None,
        carrier_sense_margin_db: float = 10.0,
        spatial_backend: str = "grid",
        cell_size_m: Optional[float] = None,
        position_slack_m: float = 100.0,
        position_refresh_s: float = 0.5,
        stack: Optional["RadioStack"] = None,
    ) -> None:
        self.sim = sim
        # Imported here (not at module level) to break the import cycle
        # radio.mac -> sim.packet -> sim.medium -> radio.mac, which made
        # `import repro.radio` fail when it ran before `import repro.sim`.
        from repro.radio.stack import RadioStack

        # Explicit component arguments override the stack's models on a
        # *copy*: the caller's stack object stays as it was resolved (it may
        # be shared with reporting or a later medium).  Without a stack they
        # fill one in over RadioStack's defaults (unit disk, SNR threshold,
        # additive interference, 802.11p MAC).
        overrides = {}
        if propagation is not None:
            overrides["propagation"] = propagation
        if reception is not None:
            overrides["reception"] = reception
        if mac_config is not None:
            overrides["mac"] = mac_config
        if stack is None:
            stack = RadioStack(**overrides)
        elif overrides:
            stack = replace(stack, **overrides)
        self.stack = stack
        self.propagation = stack.propagation
        self.reception = stack.reception
        self.interference = stack.interference
        self.stats = stats if stats is not None else StatsCollector()
        self.mac_config = stack.mac
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        #: Carrier sensing is typically more sensitive than frame decoding.
        self.carrier_sense_threshold_dbm = (
            self.reception.sensitivity_dbm - carrier_sense_margin_db
        )
        self._nodes: Dict[int, "Node"] = {}
        self._transmissions: List[ActiveTransmission] = []
        self._tx_by_uid: Dict[int, ActiveTransmission] = {}
        self._tx_counter = 0
        self._range_cache: Dict[float, float] = {}
        self._cs_range_cache: Dict[float, float] = {}
        self.spatial_backend = spatial_backend
        self._vectorized = spatial_backend == "vectorized"
        if self._vectorized:
            from repro.sim.position_store import PositionStore, require_numpy

            self._np = require_numpy()
            self.position_store: Optional["PositionStore"] = PositionStore()
        else:
            self._np = None
            self.position_store = None
        #: Cached (ids, cx, cy) from the last vectorized re-index; lets the
        #: next refresh touch only nodes whose grid cell actually changed.
        self._cell_cache = None
        if cell_size_m is None:
            cell_size_m = self._default_cell_size()
        self.position_refresh_s = position_refresh_s
        self._node_index = make_spatial_index(
            spatial_backend, cell_size_m, position_slack_m
        )
        #: Transmission positions are frozen at begin time, so no slack.
        self._tx_index = make_spatial_index(spatial_backend, cell_size_m, 0.0)
        #: Registration sequence: candidates are visited in this order so
        #: both spatial backends consume random streams identically.
        self._node_seq: Dict[int, int] = {}
        self._seq_counter = 0
        #: (structure_version, per-row registration sequence) for the
        #: vectorized candidate ordering; rebuilt only when rows move.
        self._row_seq_cache = None
        self._last_position_refresh = -float("inf")
        self._max_tx_power_dbm: Optional[float] = None
        #: Pooled per-frame scratch arrays for `_complete_vectorized`
        #: (two float64 buffers and one bool buffer, grown on demand);
        #: reception at 10 Hz x N nodes would otherwise allocate four
        #: store-sized arrays per frame.
        self._frame_scratch_arrays = None
        #: Row-order node list twin of ``_row_seq_cache`` (see
        #: :meth:`_node_row_list`).
        self._node_row_cache = None
        #: contribution mW -> (dBm fold table, max count); see
        #: :meth:`_fold_table`.
        self._fold_tables: Dict[float, tuple] = {}
        #: Below this many stored rows the vectorized completion routes to
        #: the scalar loop: per-frame numpy dispatch overhead beats the
        #: Python loop only once enough receivers amortize it, and the two
        #: paths are bit-identical so dispatch is free to pick either.
        self.vectorized_min_rows = VECTORIZED_MIN_ROWS

    def _default_cell_size(self) -> float:
        nominal = self.propagation.nominal_range(
            self.stack.tx_power_dbm, self.reception.sensitivity_dbm
        )
        return nominal * 2.0 if nominal > 0 else 500.0

    # --------------------------------------------------------------- topology
    def register(self, node: "Node") -> None:
        """Attach a node to the channel and give it a MAC instance."""
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        from repro.radio.mac import CsmaCaMac

        self._nodes[node.node_id] = node
        self._seq_counter += 1
        self._node_seq[node.node_id] = self._seq_counter
        self._node_index.insert(node.node_id, node.position)
        if self.position_store is not None:
            from repro.sim.node import StaticPositionProvider

            self.position_store.add(
                node.node_id,
                node.position,
                velocity=node.velocity,
                tx_power_dbm=node.tx_power_dbm,
                static=isinstance(node._position_provider, StaticPositionProvider),
            )
            node.bind_position_store(self.position_store)
            self._cell_cache = None
        node.mac = CsmaCaMac(
            node, self, self.mac_config, self.sim.rng.stream(f"mac-{node.node_id}")
        )

    def unregister(self, node_id: int) -> None:
        """Detach a node (e.g. a vehicle leaving the scenario)."""
        self._nodes.pop(node_id, None)
        self._node_seq.pop(node_id, None)
        self._node_index.remove(node_id)
        if self.position_store is not None and node_id in self.position_store:
            self.position_store.remove(node_id)
            self._cell_cache = None

    @property
    def nodes(self) -> Dict[int, "Node"]:
        """All registered nodes, keyed by node id."""
        return self._nodes

    # ---------------------------------------------------------- spatial index
    def refresh_positions(self) -> None:
        """Re-index every node's live position (called each mobility step)."""
        if self._vectorized:
            self._refresh_positions_vectorized()
            self._last_position_refresh = self.sim.now
            return
        index = self._node_index
        for node_id, node in self._nodes.items():
            index.update(node_id, node.position)
        self._last_position_refresh = self.sim.now

    def _refresh_positions_vectorized(self) -> None:
        """Bulk re-index from the position store.

        Rows owned by an array-capable mobility model are already current;
        everything else dynamic is pulled from its node's scalar position
        first.  Grid cells for all rows come from one ``floor(x / size)``
        array expression (bit-identical to the scalar ``_cell``), and only
        nodes whose cell changed since the last refresh touch the index.
        """
        np = self._np
        store = self.position_store
        nodes = self._nodes
        for node_id in store.unmanaged_dynamic_ids():
            store.set_position(node_id, nodes[node_id].position)
        store.touch()
        count = store.size
        index = self._node_index
        size = index.cell_size_m
        cx = np.floor(store.xs[:count] / size).astype(np.int64)
        cy = np.floor(store.ys[:count] / size).astype(np.int64)
        ids = store.ids()
        cache = self._cell_cache
        if cache is not None and cache[0] == ids:
            moved = np.nonzero((cx != cache[1]) | (cy != cache[2]))[0]
        else:
            moved = range(count)
        for i in moved:
            index.update_cell(ids[i], (int(cx[i]), int(cy[i])))
        self._cell_cache = (ids, cx, cy)

    def _maybe_refresh_positions(self) -> None:
        if self.sim.now - self._last_position_refresh >= self.position_refresh_s:
            self.refresh_positions()

    def _nodes_near(self, position: Vec2, radius: float) -> List["Node"]:
        """Candidate receivers around ``position``, in registration order.

        A superset of the nodes truly within ``radius``; callers must apply
        the exact live-position distance test.
        """
        self._maybe_refresh_positions()
        ids = self._node_index.query_ids(position, radius)
        ids.sort(key=self._node_seq.__getitem__)
        nodes = self._nodes
        return [nodes[node_id] for node_id in ids]

    def _transmissions_near(self, position: Vec2, radius: float) -> List[ActiveTransmission]:
        """Transmissions whose sender may be within ``radius``, in uid order.

        With only a handful of frames in flight (the common case: frames
        overlap for one airtime) a direct scan of ``_transmissions`` beats
        the grid query plus uid sort plus dict lookups.  The scan applies
        the *same cell-granular membership test* as
        :meth:`~repro.sim.spatial.UniformGridIndex.query_ids` -- not an
        exact distance test -- so the returned set is identical to the
        grid's whichever path runs (stochastic propagation models see the
        same interferer supersets either way).  ``_transmissions`` is
        append-ordered by uid and pruning preserves order, so the scan is
        already uid-sorted.
        """
        transmissions = self._transmissions
        index = self._tx_index
        if len(transmissions) <= 32 and isinstance(index, UniformGridIndex):
            reach = radius + index.slack_m
            if not math.isfinite(reach):
                return list(transmissions)
            size = index.cell_size_m
            floor = math.floor
            cx_min = floor((position.x - reach) / size)
            cx_max = floor((position.x + reach) / size)
            cy_min = floor((position.y - reach) / size)
            cy_max = floor((position.y + reach) / size)
            result = []
            for tx in transmissions:
                sender = tx.sender_position
                if (
                    cx_min <= floor(sender.x / size) <= cx_max
                    and cy_min <= floor(sender.y / size) <= cy_max
                ):
                    result.append(tx)
            return result
        ids = index.query_ids(position, radius)
        ids.sort()
        by_uid = self._tx_by_uid
        return [by_uid[uid] for uid in ids]

    def nodes_in_range(self, node: "Node", range_m: float) -> List["Node"]:
        """Oracle: nodes whose current distance to ``node`` is within ``range_m``."""
        return self.nodes_within(node.position, range_m, exclude=node.node_id)

    def nodes_within(
        self, position: Vec2, radius: float, exclude: Optional[int] = None
    ) -> List["Node"]:
        """Registered nodes within ``radius`` metres of ``position``."""
        if self._vectorized:
            return self._nodes_within_vectorized(position, radius, exclude)
        return [
            node
            for node in self._nodes_near(position, radius)
            if node.node_id != exclude and position.distance_to(node.position) <= radius
        ]

    def _nodes_within_vectorized(
        self, position: Vec2, radius: float, exclude: Optional[int]
    ) -> List["Node"]:
        """Array-expression distance filter over the candidate rows.

        Stored positions equal live positions at every event boundary (the
        mobility step refreshes the store in the same callback that moves
        the vehicles), and ``sqrt(dx*dx + dy*dy)`` is bit-identical to
        :meth:`Vec2.distance_to`, so the result matches the scalar filter
        exactly.
        """
        self._maybe_refresh_positions()
        np = self._np
        ids = self._node_index.query_ids(position, radius)
        ids.sort(key=self._node_seq.__getitem__)
        store = self.position_store
        rows = store.rows_for(ids)
        dx = store.xs[rows] - position.x
        dy = store.ys[rows] - position.y
        within = np.sqrt(dx * dx + dy * dy) <= radius
        nodes = self._nodes
        return [
            nodes[node_id]
            for node_id, ok in zip(ids, within)
            if ok and node_id != exclude
        ]

    def nominal_range(self, tx_power_dbm: float = 20.0) -> float:
        """Distance at which the mean received power hits the sensitivity."""
        return self.propagation.nominal_range(tx_power_dbm, self.reception.sensitivity_dbm)

    # ---------------------------------------------------------------- channel
    def channel_busy(self, node: "Node") -> bool:
        """True when ``node`` senses an ongoing transmission above the CS threshold."""
        now = self.sim.now
        position = node.position
        for tx in self._transmissions_near(position, self._carrier_sense_reach()):
            if tx.end <= now or tx.sender_id == node.node_id:
                continue
            rx_power = self.propagation.rx_power_dbm(
                tx.tx_power_dbm, tx.sender_position, position
            )
            if rx_power >= self.carrier_sense_threshold_dbm:
                return True
        return False

    def begin_transmission(
        self,
        sender: "Node",
        packet: Packet,
        next_hop: int,
        duration: float,
        schedule_completion: bool = True,
    ) -> tuple:
        """Put a frame on the air; reception is evaluated when it ends.

        Returns the frame's completion entry ``(delay, callback, args,
        priority)``.  With ``schedule_completion=False`` the caller takes
        over scheduling it -- the MAC batches the entry together with its
        own transmission-done timer through ``Simulator.schedule_many``.
        """
        now = self.sim.now
        self._tx_counter += 1
        transmission = ActiveTransmission(
            sender_id=sender.node_id,
            sender_position=sender.position,
            tx_power_dbm=sender.tx_power_dbm,
            packet=packet,
            next_hop=next_hop,
            start=now,
            end=now + duration,
            uid=self._tx_counter,
        )
        self._transmissions.append(transmission)
        self._tx_by_uid[transmission.uid] = transmission
        self._tx_index.insert(transmission.uid, transmission.sender_position)
        if (
            self._max_tx_power_dbm is None
            or sender.tx_power_dbm > self._max_tx_power_dbm
        ):
            self._max_tx_power_dbm = sender.tx_power_dbm
        self.stats.transmission(packet)
        tap = self.stats.tap
        if tap is not None:
            # The medium, not the collector, owns the sender position the
            # heatmap probe wants -- this is the one tap site outside stats.
            tap.transmission(packet, sender.node_id, transmission.sender_position)
        if self.trace.enabled:
            self.trace.record(
                now,
                "tx",
                sender.node_id,
                ptype=packet.ptype,
                protocol=packet.protocol,
                next_hop=next_hop,
                uid=packet.uid,
            )
        entry = (duration, self._complete, (transmission,), 0)
        if schedule_completion:
            self.sim.schedule(duration, self._complete, transmission)
        return entry

    # ------------------------------------------------------------- completion
    def _deliverable_frame(self, receiver: "Node", packet: Packet) -> Packet:
        """Per-receiver frame instance: a COW view, or a full copy on opt-out.

        This is the *only* sanctioned spot for per-receiver packet copying
        on the delivery path (lint rule COW-001 pins that): receivers that
        never mutate frames share the packet storage through a
        :meth:`~repro.sim.packet.Packet.view`, and nodes whose protocol
        declares ``mutates_in_flight`` get the old deep copy.
        """
        if receiver.cow_frames_ok:
            return packet.view()
        return packet.copy()

    def _complete(self, transmission: ActiveTransmission) -> None:
        if (
            self._vectorized
            and self.propagation.deterministic
            and (
                not self.interference.uses_contributions
                or self.interference.additive_mw
            )
            and self.position_store.size >= self.vectorized_min_rows
        ):
            self._complete_vectorized(transmission)
            return
        now = self.sim.now
        self._prune(now)
        cutoff = self._reception_cutoff(transmission.tx_power_dbm)
        rng = self.sim.rng.stream("phy-reception")
        is_unicast = transmission.next_hop != BROADCAST
        unicast_delivered = False
        # Every receiver of this frame sits within `cutoff` of the sender, so
        # (by the triangle inequality) every transmission that can interfere
        # at any of them sits within `cutoff + carrier-sense reach` of the
        # sender.  Fetching the overlap-filtered candidates once here keeps
        # the per-receiver interference loop free of index queries.  A model
        # that ignores contributions (NoInterference) skips the whole
        # gathering: per-interferer rx powers are a per-frame hot path.
        if self.interference.uses_contributions:
            interferers = [
                other
                for other in self._transmissions_near(
                    transmission.sender_position, cutoff + self._carrier_sense_reach()
                )
                if other.uid != transmission.uid
                and other.end > transmission.start
                and other.start < transmission.end
            ]
        else:
            interferers = []
        for node in self._nodes_near(transmission.sender_position, cutoff):
            if node.node_id == transmission.sender_id:
                continue
            receiver_position = node.position
            distance = transmission.sender_position.distance_to(receiver_position)
            if distance > cutoff:
                continue
            rx_power = self.propagation.rx_power_dbm(
                transmission.tx_power_dbm, transmission.sender_position, receiver_position
            )
            if rx_power <= NO_SIGNAL_DBM:
                continue
            interference = self._interference_at(receiver_position, interferers)
            outcome = self.reception.decide(rx_power, interference, rng)
            intended = (
                transmission.next_hop == BROADCAST
                or transmission.next_hop == node.node_id
            )
            if outcome.ok:
                if intended:
                    if is_unicast:
                        unicast_delivered = True
                    self.trace.record(
                        now,
                        "rx",
                        node.node_id,
                        ptype=transmission.packet.ptype,
                        sender=transmission.sender_id,
                        uid=transmission.packet.uid,
                    )
                    node.deliver(
                        self._deliverable_frame(node, transmission.packet),
                        transmission.sender_id,
                        rx_power_dbm=rx_power,
                    )
            elif outcome.decision is ReceptionDecision.COLLISION:
                if intended:
                    self.stats.collision()
                    self.trace.record(
                        now,
                        "collision",
                        node.node_id,
                        sender=transmission.sender_id,
                        uid=transmission.packet.uid,
                    )
            elif intended and transmission.next_hop == node.node_id:
                self.stats.weak_signal()
        if is_unicast:
            sender = self._nodes.get(transmission.sender_id)
            if sender is not None and sender.mac is not None:
                sender.mac.notify_unicast_result(
                    transmission.packet, transmission.next_hop, unicast_delivered
                )

    def _node_row_list(self):
        """Node objects in row order, cached across position writes.

        The delivery loops map surviving rows to receivers once per frame;
        a plain list index beats the ``row -> id -> node`` double lookup on
        that path.  Invalidation piggybacks on ``structure_version`` (rows
        are added or removed far more rarely than frames complete).
        """
        store = self.position_store
        cache = self._node_row_cache
        if cache is not None and cache[0] == store.structure_version:
            return cache[1]
        nodes = self._nodes
        row_nodes = [nodes[node_id] for node_id in store.ids_view()]
        self._node_row_cache = (store.structure_version, row_nodes)
        return row_nodes

    def _row_seq_array(self):
        """``(seq-per-row, already-sorted)`` cached across position writes.

        Ordering candidates is a per-frame operation; the id->seq dict walk
        is only paid when the row<->id mapping actually changed (node joined
        or left), which is rare next to frame completions.  While no node
        has left, rows sit in registration order and the per-frame argsort
        can be skipped entirely (``already-sorted`` is True).
        """
        store = self.position_store
        cache = self._row_seq_cache
        if cache is not None and cache[0] == store.structure_version:
            return cache[1], cache[2]
        np = self._np
        seq = self._node_seq
        arr = np.fromiter(
            (seq[node_id] for node_id in store.ids()),
            dtype=np.int64,
            count=store.size,
        )
        is_sorted = bool(np.all(arr[1:] > arr[:-1])) if len(arr) > 1 else True
        self._row_seq_cache = (store.structure_version, arr, is_sorted)
        return arr, is_sorted

    def _frame_scratch(self, count: int):
        """Pooled per-frame work buffers, grown (never shrunk) on demand.

        Returns ``count``-length views over two float64 buffers and one
        bool buffer.  Safe to reuse across frames: every value is fully
        overwritten before it is read, and nothing outlives the frame
        (downstream consumers index them into fresh result arrays).
        """
        np = self._np
        arrays = self._frame_scratch_arrays
        if arrays is None or arrays[0].size < count:
            capacity = max(64, count)
            current = 0 if arrays is None else arrays[0].size
            if current:
                while current < capacity:
                    current *= 2
                capacity = current
            arrays = (
                np.empty(capacity),
                np.empty(capacity),
                np.empty(capacity, dtype=bool),
            )
            self._frame_scratch_arrays = arrays
        return arrays[0][:count], arrays[1][:count], arrays[2][:count]

    def _complete_vectorized(self, transmission: ActiveTransmission) -> None:
        """Array-expression twin of the scalar :meth:`_complete` body.

        Distances to *every* stored row are evaluated as one array
        expression (cheaper than walking grid buckets and re-sorting their
        candidate lists in Python), then received powers, interference sums
        and reception decisions run over the in-cutoff survivors -- each
        expression chosen to be bit-identical to the scalar path (exact
        IEEE-754 ops vectorized, transcendentals evaluated per element with
        libm -- see :mod:`~repro.sim.position_store`).  Trace records, stats
        and deliveries then run in registration order over the survivors, so
        the emitted event stream is byte-identical to the scalar backends'.
        Only entered for deterministic propagation with additive (or unused)
        interference; RNG-drawing reception models are still exact because
        :meth:`~repro.radio.reception.ReceptionModel.decide_batch` consumes
        the ``"phy-reception"`` stream in candidate order like the scalar
        loop (the scalar loop skips out-of-cutoff and no-signal candidates
        before drawing, so filtering first preserves the stream).
        """
        now = self.sim.now
        self._prune(now)
        cutoff = self._reception_cutoff(transmission.tx_power_dbm)
        rng = self.sim.rng.stream("phy-reception")
        is_unicast = transmission.next_hop != BROADCAST
        unicast_delivered = False
        np = self._np
        store = self.position_store
        if self.interference.uses_contributions:
            interferers = [
                other
                for other in self._transmissions_near(
                    transmission.sender_position, cutoff + self._carrier_sense_reach()
                )
                if other.uid != transmission.uid
                and other.end > transmission.start
                and other.start < transmission.end
            ]
        else:
            interferers = []
        self._maybe_refresh_positions()
        sender_position = transmission.sender_position
        count = store.size
        dx, dy, keep = self._frame_scratch(count)
        # In-place twins of `(xs-x)^2 + (ys-y)^2`: the same elementwise
        # IEEE-754 ops, written into pooled buffers instead of fresh
        # allocations per frame.
        np.subtract(store.xs[:count], sender_position.x, out=dx)
        np.subtract(store.ys[:count], sender_position.y, out=dy)
        np.multiply(dx, dx, out=dx)
        np.multiply(dy, dy, out=dy)
        np.add(dx, dy, out=dx)
        # Prefilter on *squared* distance so the sqrt only runs over the
        # few in-range rows instead of the whole store.  `sqrt(d2) <= c`
        # implies `d2 <= c*c` to within a couple of ulps, so widening the
        # squared cutoff by 1e-12 relative makes the prefilter a strict
        # superset; the exact per-candidate `sqrt(d2) <= c` test below then
        # reproduces the scalar backends' membership bit for bit.
        np.less_equal(dx, cutoff * cutoff * (1.0 + 1e-12), out=keep)
        if transmission.sender_id in store:
            keep[store.row_of(transmission.sender_id)] = False
        prelim = keep.nonzero()[0]
        prelim_distances = np.sqrt(dx[prelim])
        in_range = prelim_distances <= cutoff
        candidates = prelim[in_range]
        candidate_distances = prelim_distances[in_range]
        if candidates.size > 1:
            # Visit candidates in registration order, like the scalar loop
            # (rows come back in row order, which IS registration order
            # until a node leaves and its slot gets recycled).
            row_seq, already_sorted = self._row_seq_array()
            if not already_sorted:
                order = np.argsort(row_seq[candidates], kind="stable")
                candidates = candidates[order]
                candidate_distances = candidate_distances[order]
        rx_powers = self.propagation.rx_power_dbm_batch(
            transmission.tx_power_dbm, candidate_distances
        )
        signal = rx_powers > NO_SIGNAL_DBM
        kept_rows = candidates[signal]
        rx_kept = rx_powers[signal]
        row_ids = store.ids_view()
        if interferers and len(kept_rows):
            kept_xs = store.xs[kept_rows]
            kept_ys = store.ys[kept_rows]
            # One (interferer x receiver) distance matrix instead of a
            # python loop of per-interferer arrays; subtraction, multiply
            # and sqrt are elementwise-exact, so each entry carries the
            # same bits the per-interferer expression produced.
            other_xs = np.array([o.sender_position.x for o in interferers])
            other_ys = np.array([o.sender_position.y for o in interferers])
            odx = kept_xs[np.newaxis, :] - other_xs[:, np.newaxis]
            ody = kept_ys[np.newaxis, :] - other_ys[:, np.newaxis]
            other_distances = np.sqrt(odx * odx + ody * ody)
            # Contributions go straight to linear units: the fold below sums
            # in mW, and the propagation model's mW batch is bit-identical
            # to converting its dBm batch element by element (out-of-range
            # entries land on exact 0.0, and 0.0 + x == x in the fold).
            tx_powers = [o.tx_power_dbm for o in interferers]
            same_power = len(set(tx_powers)) == 1
            profile = (
                self.propagation.constant_rx_profile(tx_powers[0])
                if same_power
                else None
            )
            if profile is not None:
                # Disk channels contribute one exact mW level in range and
                # exact zero beyond it, and zero terms are no-ops in the
                # sequential fold -- so a receiver's folded interference
                # depends only on its in-range interferer *count*.  Look the
                # fold (and its dBm conversion) up in a table of iterative
                # sums, which is bit-identical to running the fold.
                contribution_mw, reach = profile
                counts = (other_distances <= reach).sum(axis=0)
                interference_kept = self._fold_table(
                    contribution_mw, len(interferers)
                )[counts]
            else:
                if same_power:
                    contributions_mw = self.propagation.rx_power_mw_batch(
                        tx_powers[0], other_distances.ravel()
                    ).reshape(other_distances.shape)
                else:
                    contributions_mw = np.empty_like(other_distances)
                    for i, other in enumerate(interferers):
                        contributions_mw[i] = self.propagation.rx_power_mw_batch(
                            other.tx_power_dbm, other_distances[i]
                        )
                # Fold row by row: the scalar path sums contributions in
                # interferer order, and float addition is order-sensitive.
                total_mw = np.zeros(len(kept_rows))
                for i in range(len(interferers)):
                    total_mw += contributions_mw[i]
                interference_kept = mw_to_dbm_batch(total_mw)
        else:
            interference_kept = np.full(len(kept_rows), NO_SIGNAL_DBM)
        codes = self.reception.decide_batch(rx_kept, interference_kept, rng)
        nodes = self._nodes
        packet = transmission.packet
        sender_id = transmission.sender_id
        next_hop = transmission.next_hop
        trace = self.trace if self.trace.enabled else None
        if not is_unicast and trace is None and not isinstance(codes, list):
            # Broadcast with tracing off (the beacon-storm hot case): every
            # receiver is intended, no trace records interleave with
            # deliveries, and the loss counters are pure tallies -- so count
            # collisions in bulk and walk only the received indices, mapping
            # rows straight to nodes for those.  (Broadcast frames never hit
            # the weak-signal counter: it only fires for the addressed next
            # hop.)
            collisions = int(np.count_nonzero(codes == BATCH_COLLISION))
            if collisions:
                self.stats.collision(collisions)
            received = (codes == BATCH_RECEIVED).nonzero()[0]
            if not received.size:
                return
            row_nodes = self._node_row_list()
            view = packet.view
            frame_for = self._deliverable_frame
            for row, rx_power in zip(
                kept_rows[received].tolist(), rx_kept[received].tolist()
            ):
                receiver = row_nodes[row]
                # Inlined twin of _deliverable_frame (the sanctioned COW
                # seam): the bound view() call dominates this loop, so the
                # common opt-in case skips a frame of indirection.  The rx
                # power rides positionally -- deliver()'s third parameter.
                receiver.deliver(
                    view() if receiver.cow_frames_ok else frame_for(receiver, packet),
                    sender_id,
                    rx_power,
                )
            return
        rx_list = rx_kept.tolist()
        kept_ids = [row_ids[row] for row in kept_rows.tolist()]
        code_list = codes.tolist() if hasattr(codes, "tolist") else list(codes)
        for j, node_id in enumerate(kept_ids):
            code = code_list[j]
            intended = not is_unicast or next_hop == node_id
            if code == BATCH_RECEIVED:
                if intended:
                    if is_unicast:
                        unicast_delivered = True
                    if trace is not None:
                        trace.record(
                            now,
                            "rx",
                            node_id,
                            ptype=packet.ptype,
                            sender=sender_id,
                            uid=packet.uid,
                        )
                    receiver = nodes[node_id]
                    receiver.deliver(
                        self._deliverable_frame(receiver, packet),
                        sender_id,
                        rx_power_dbm=rx_list[j],
                    )
            elif code == BATCH_COLLISION:
                if intended:
                    self.stats.collision()
                    if trace is not None:
                        trace.record(
                            now, "collision", node_id, sender=sender_id, uid=packet.uid
                        )
            elif intended and next_hop == node_id:
                self.stats.weak_signal()
        if is_unicast:
            sender = nodes.get(sender_id)
            if sender is not None and sender.mac is not None:
                sender.mac.notify_unicast_result(packet, next_hop, unicast_delivered)

    def _fold_table(self, contribution_mw: float, max_count: int):
        """dBm results of sequentially folding 0..``max_count`` equal mW terms.

        ``table[j]`` carries the exact bits of ``mw_to_dbm`` applied to the
        running sum ``((contribution + contribution) + ...)`` of ``j`` terms
        -- the same left-to-right addition order the per-receiver fold (and
        the scalar backends' ``combine_dbm``) uses, so indexing the table by
        in-range counts reproduces the fold bit for bit.  Cached per
        contribution level and regrown when a frame sees more interferers.
        """
        np = self._np
        entry = self._fold_tables.get(contribution_mw)
        if entry is None or entry[1] < max_count:
            total = 0.0
            sums_mw = [0.0]
            for _ in range(max_count):
                total += contribution_mw
                sums_mw.append(total)
            entry = (np.array([mw_to_dbm(m) for m in sums_mw]), max_count)
            self._fold_tables[contribution_mw] = entry
        return entry[0]

    def _interference_at(
        self, position: Vec2, interferers: List[ActiveTransmission]
    ) -> float:
        """Aggregate power of the overlapping ``interferers`` at ``position``.

        How the contributions combine is the stack's interference model
        (additive power by default).
        """
        contributions: List[float] = []
        rx_power_dbm = self.propagation.rx_power_dbm
        for other in interferers:
            power = rx_power_dbm(other.tx_power_dbm, other.sender_position, position)
            if power > NO_SIGNAL_DBM:
                contributions.append(power)
        if not contributions:
            return NO_SIGNAL_DBM
        return self.interference.combine(contributions)

    def _reception_cutoff(self, tx_power_dbm: float) -> float:
        """Distance beyond which reception is impossible (evaluation cutoff)."""
        cached = self._range_cache.get(tx_power_dbm)
        if cached is not None:
            return cached
        nominal = self.propagation.nominal_range(
            tx_power_dbm, self.reception.sensitivity_dbm
        )
        # Shadowed channels occasionally reach beyond the nominal range;
        # a 2x margin keeps that tail while bounding the per-frame work.
        cutoff = nominal * 2.0 if nominal > 0 else 0.0
        self._range_cache[tx_power_dbm] = cutoff
        return cutoff

    def _carrier_sense_reach(self) -> float:
        """Sender distance beyond which a transmission cannot trip carrier sense.

        Uses the highest transmit power seen on the channel against the
        carrier-sense threshold, with the same 2x shadowing margin as
        :meth:`_reception_cutoff`.
        """
        tx_power = self._max_tx_power_dbm
        if tx_power is None:
            return 0.0
        cached = self._cs_range_cache.get(tx_power)
        if cached is not None:
            return cached
        nominal = self.propagation.nominal_range(
            tx_power, self.carrier_sense_threshold_dbm
        )
        reach = nominal * 2.0 if nominal > 0 else 0.0
        self._cs_range_cache[tx_power] = reach
        return reach

    def _prune(self, now: float) -> None:
        """Drop transmissions that can no longer overlap anything in flight.

        A past transmission still matters while some pending frame's airtime
        overlaps it, so the horizon is the earliest start among frames that
        have not finished yet (``end >= now`` -- frames completing right now
        are still being evaluated).  This keeps arbitrarily long frames
        alive for their whole flight instead of cutting history at a fixed
        1-second window.
        """
        transmissions = self._transmissions
        horizon = None
        for t in transmissions:
            if t.end >= now and (horizon is None or t.start < horizon):
                horizon = t.start
        if horizon is None:
            if transmissions:
                self._transmissions = []
                self._tx_by_uid.clear()
                self._tx_index.clear()
            return
        by_uid = self._tx_by_uid
        index = self._tx_index
        keep: List[ActiveTransmission] = []
        for t in transmissions:
            if t.end > horizon:
                keep.append(t)
            else:
                del by_uid[t.uid]
                index.remove(t.uid)
        if len(keep) != len(transmissions):
            self._transmissions = keep
