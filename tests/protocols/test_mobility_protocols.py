"""Tests for the mobility-based protocols (PBR, Taleb, Abedi, Wedde)."""

import math

import pytest

from repro.core.direction import direction_group
from repro.geometry import Vec2
from repro.protocols.mobility_based import PbrConfig, PbrProtocol, TalebProtocol, WeddeProtocol
from tests.helpers import build_static_network, line_positions, run_data_flow

SPACING = 200.0


def _line_network(count, protocol, velocities=None, **kwargs):
    sim, network, stats, nodes = build_static_network(
        line_positions(count, SPACING), protocol=protocol, velocities=velocities, **kwargs
    )
    network.start()
    return sim, network, stats, nodes


class TestPbr:
    def test_delivery_over_static_line(self):
        sim, network, stats, nodes = _line_network(5, "PBR")
        run_data_flow(sim, stats, nodes[0], nodes[4], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8

    def test_link_metric_is_predicted_lifetime(self):
        sim, network, stats, nodes = _line_network(2, "PBR")
        protocol: PbrProtocol = nodes[0].protocol
        # Previous hop 150 m away moving identically: infinite predicted lifetime.
        same = protocol.link_metric(Vec2(150, 0), Vec2(20, 0), Vec2(0, 0), Vec2(20, 0), {})
        # Opposite directions at 40 m/s relative: short predicted lifetime.
        opposite = protocol.link_metric(Vec2(150, 0), Vec2(20, 0), Vec2(0, 0), Vec2(-20, 0), {})
        assert same == math.inf
        assert 0.0 < opposite < 15.0

    def test_links_below_minimum_lifetime_are_rated_zero(self):
        config = PbrConfig(min_acceptable_lifetime_s=5.0)
        sim, network, stats, nodes = build_static_network(
            line_positions(2, SPACING), protocol="PBR", protocol_config=config
        )
        protocol: PbrProtocol = nodes[0].protocol
        # 240 m apart and separating fast: lifetime well under 5 s.
        metric = protocol.link_metric(Vec2(240, 0), Vec2(30, 0), Vec2(0, 0), Vec2(-30, 0), {})
        assert metric == 0.0

    def test_path_score_prefers_longer_lifetime_then_fewer_hops(self):
        sim, network, stats, nodes = _line_network(2, "PBR")
        protocol: PbrProtocol = nodes[0].protocol
        assert protocol.path_score(10.0, [1, 2]) > protocol.path_score(5.0, [1, 2])
        assert protocol.path_score(10.0, [1, 2]) > protocol.path_score(10.0, [1, 2, 3, 4])

    def test_moving_pair_route_has_finite_expiry_and_repairs(self):
        # Source and destination drive in opposite directions, so the
        # discovered route has a short predicted lifetime and the source
        # schedules a preemptive rebuild before it expires.
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (150, 0)],
            protocol="PBR",
            velocities=[(15, 0), (-15, 0)],
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[1], packets=3, start=1.0, interval=0.5, until=12.0)
        source_protocol = nodes[0].protocol
        assert stats.delivery_ratio > 0.5
        # The route installed for the destination must not be trusted forever.
        route = source_protocol.routes.get(nodes[1].node_id)
        if route is not None:
            assert math.isfinite(route.expires_at)


class TestTaleb:
    def test_group_tagging_follows_velocity(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0)], protocol="Taleb", velocities=[(20, 0), (0, 20)]
        )
        protocols = [node.protocol for node in nodes]
        assert protocols[0]._own_group_tag() == direction_group(Vec2(20, 0)).value
        assert protocols[1]._own_group_tag() == direction_group(Vec2(0, 20)).value

    def test_same_group_links_get_bonus(self):
        sim, network, stats, nodes = _line_network(2, "Taleb")
        protocol: TalebProtocol = nodes[0].protocol
        same = protocol.link_metric(Vec2(100, 0), Vec2(20, 0), Vec2(0, 0), Vec2(22, 0), {})
        cross = protocol.link_metric(Vec2(100, 0), Vec2(20, 0), Vec2(0, 0), Vec2(0.1, 22), {})
        assert same > cross

    def test_different_group_forwarding_is_probabilistic(self):
        sim, network, stats, nodes = build_static_network(
            [(0, 0), (100, 0)], protocol="Taleb", velocities=[(20, 0), (20, 0)]
        )
        protocol: TalebProtocol = nodes[0].protocol
        same_group_headers = {"origin_group": protocol._own_group_tag()}
        other_group_headers = {"origin_group": "north"}
        assert protocol.should_forward_request(same_group_headers, 1)
        decisions = [
            protocol.should_forward_request(other_group_headers, 1) for _ in range(300)
        ]
        fraction = sum(decisions) / len(decisions)
        assert 0.05 < fraction < 0.6

    def test_delivery_on_static_line(self):
        sim, network, stats, nodes = _line_network(4, "Taleb")
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8


class TestAbedi:
    def test_metric_prefers_same_direction_neighbours(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(3, SPACING), protocol="Abedi"
        )
        protocol = nodes[0].protocol
        headers = {"target": nodes[2].node_id}
        same = protocol.link_metric(Vec2(200, 0), Vec2(20, 0), Vec2(0, 0), Vec2(20, 0), headers)
        opposite = protocol.link_metric(
            Vec2(200, 0), Vec2(20, 0), Vec2(0, 0), Vec2(-20, 0), headers
        )
        assert same > opposite

    def test_metric_is_bounded_unit_interval(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(2, SPACING), protocol="Abedi"
        )
        protocol = nodes[0].protocol
        headers = {"target": nodes[1].node_id}
        for velocity in (Vec2(30, 0), Vec2(-30, 0), Vec2(0, 0), Vec2(0, 30)):
            value = protocol.link_metric(Vec2(100, 0), Vec2(25, 0), Vec2(0, 0), velocity, headers)
            assert 0.0 <= value <= 1.0

    def test_route_lifetime_mapping_monotone(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(2, SPACING), protocol="Abedi"
        )
        protocol = nodes[0].protocol
        assert protocol._route_lifetime_from_metric(0.9) > protocol._route_lifetime_from_metric(0.1)
        assert protocol._route_lifetime_from_metric(1.0) <= protocol.config.route_lifetime_cap_s

    def test_delivery_on_static_line(self):
        sim, network, stats, nodes = _line_network(4, "Abedi")
        run_data_flow(sim, stats, nodes[0], nodes[3], packets=5, start=2.0, until=25.0)
        assert stats.delivery_ratio >= 0.8


class TestWedde:
    def test_rating_zero_with_no_neighbors(self):
        sim, network, stats, nodes = build_static_network([(0, 0), (5000, 0)], protocol="Wedde")
        assert nodes[0].protocol.own_rating() == 0.0

    def test_rating_increases_with_populated_fast_neighbourhood(self):
        sim, network, stats, nodes = build_static_network(
            line_positions(6, 100.0), protocol="Wedde",
            velocities=[(28, 0)] * 6,
        )
        network.start()
        sim.run(until=3.0)
        rating = nodes[2].protocol.own_rating()
        assert rating > 0.4

    def test_forwarding_requires_rated_neighbors(self):
        # Free-flowing traffic (everyone near the free-flow speed) gives the
        # relay a rating above the threshold, so multi-hop forwarding works.
        sim, network, stats, nodes = build_static_network(
            line_positions(3, SPACING), protocol="Wedde",
            velocities=[(25, 0)] * 3,
        )
        network.start()
        run_data_flow(sim, stats, nodes[0], nodes[2], packets=5, start=3.0, until=25.0)
        assert stats.delivery_ratio >= 0.6

    def test_static_sparse_neighbourhood_rating_below_threshold(self):
        # Two stationary cars: density and fluidity are both poor, the rating
        # stays below the forwarding threshold.
        sim, network, stats, nodes = _line_network(2, "Wedde")
        sim.run(until=3.0)
        protocol: WeddeProtocol = nodes[0].protocol
        assert protocol.own_rating() < protocol.config.rating_threshold

    def test_beacons_carry_the_rating(self):
        sim, network, stats, nodes = _line_network(3, "Wedde")
        sim.run(until=3.0)
        protocol: WeddeProtocol = nodes[1].protocol
        entries = protocol.beacons.neighbors()
        assert entries
        assert all("rating" in entry.extra for entry in entries)
