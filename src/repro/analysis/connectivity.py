"""Connectivity-graph statistics of a vehicle population.

A routing path can only exist if the connectivity graph (vehicles as nodes,
an edge whenever two vehicles are within radio range) contains one.  The
fraction of vehicle pairs in the same connected component is therefore an
upper bound on any protocol's delivery ratio, and the way it varies with
traffic density is the root cause of most of Table I's caveats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import networkx as nx

from repro.mobility.vehicle import VehicleState


def connectivity_graph(
    vehicles: Sequence[VehicleState], communication_range: float = 250.0
) -> nx.Graph:
    """The snapshot connectivity graph of ``vehicles`` at their current positions."""
    graph = nx.Graph()
    for vehicle in vehicles:
        graph.add_node(vehicle.vid)
    for i, a in enumerate(vehicles):
        for b in vehicles[i + 1 :]:
            if a.position.distance_to(b.position) <= communication_range:
                graph.add_edge(a.vid, b.vid)
    return graph


@dataclass
class ConnectivitySnapshot:
    """Topology statistics at one instant."""

    time: float
    vehicle_count: int
    edge_count: int
    component_count: int
    largest_component_fraction: float
    mean_degree: float
    reachable_pair_fraction: float

    @property
    def is_fully_connected(self) -> bool:
        """True when every vehicle can (multi-hop) reach every other vehicle."""
        return self.component_count <= 1


def snapshot_connectivity(
    vehicles: Sequence[VehicleState],
    communication_range: float = 250.0,
    time: float = 0.0,
) -> ConnectivitySnapshot:
    """Compute a :class:`ConnectivitySnapshot` for the current vehicle positions."""
    graph = connectivity_graph(vehicles, communication_range)
    n = graph.number_of_nodes()
    if n == 0:
        return ConnectivitySnapshot(time, 0, 0, 0, 0.0, 0.0, 0.0)
    components = [len(c) for c in nx.connected_components(graph)]
    largest = max(components)
    reachable_pairs = sum(size * (size - 1) for size in components)
    total_pairs = n * (n - 1)
    return ConnectivitySnapshot(
        time=time,
        vehicle_count=n,
        edge_count=graph.number_of_edges(),
        component_count=len(components),
        largest_component_fraction=largest / n,
        mean_degree=2.0 * graph.number_of_edges() / n,
        reachable_pair_fraction=(reachable_pairs / total_pairs) if total_pairs else 0.0,
    )


def connectivity_over_time(
    mobility,
    duration: float,
    dt: float = 1.0,
    communication_range: float = 250.0,
) -> List[ConnectivitySnapshot]:
    """Step ``mobility`` for ``duration`` seconds and record one snapshot per ``dt``."""
    if dt <= 0:
        raise ValueError("sampling interval must be positive")
    snapshots: List[ConnectivitySnapshot] = []
    steps = int(round(duration / dt))
    now = 0.0
    for _ in range(steps + 1):
        snapshots.append(snapshot_connectivity(mobility.vehicles, communication_range, now))
        mobility.step(dt, now + dt)
        now += dt
    return snapshots


def summarize_snapshots(snapshots: Sequence[ConnectivitySnapshot]) -> Dict[str, float]:
    """Average the headline statistics over a sequence of snapshots."""
    if not snapshots:
        return {
            "mean_reachable_pair_fraction": 0.0,
            "mean_largest_component_fraction": 0.0,
            "mean_degree": 0.0,
            "mean_component_count": 0.0,
            "fully_connected_fraction": 0.0,
        }
    count = len(snapshots)
    return {
        "mean_reachable_pair_fraction": sum(s.reachable_pair_fraction for s in snapshots) / count,
        "mean_largest_component_fraction": sum(
            s.largest_component_fraction for s in snapshots
        )
        / count,
        "mean_degree": sum(s.mean_degree for s in snapshots) / count,
        "mean_component_count": sum(s.component_count for s in snapshots) / count,
        "fully_connected_fraction": sum(1.0 for s in snapshots if s.is_fully_connected) / count,
    }
