"""Tests for the scenario registry: builders, presets and trace replay."""

import pytest

from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import Scenario, highway_scenario, trace_scenario
from repro.harness.scenarios import (
    BuiltMobility,
    SCENARIO_PRESETS,
    available_presets,
    available_scenario_kinds,
    build_mobility,
    kind_rows,
    preset_rows,
    register_preset,
    register_scenario,
    scenario_from_name,
    unregister_preset,
    unregister_scenario,
)
from repro.mobility.fcd_trace import record_fcd_trace, write_fcd_trace
from repro.mobility.generator import TrafficDensity, make_highway_scenario
from repro.sim.rng import RandomStreams


class TestRegistry:
    def test_builtin_kinds_registered(self):
        kinds = available_scenario_kinds()
        for expected in ("highway", "manhattan", "random_waypoint", "city", "trace"):
            assert expected in kinds

    def test_unknown_kind_raises_listing_available(self):
        scenario = Scenario(kind="hovercraft")
        with pytest.raises(KeyError) as excinfo:
            build_mobility(scenario, RandomStreams(1).stream("mobility"))
        message = str(excinfo.value)
        assert "hovercraft" in message
        for kind in available_scenario_kinds():
            assert kind in message

    def test_register_and_unregister_scenario(self):
        captured = {}

        class _StubMobility:
            vehicles = []

            def step(self, dt, now=0.0):
                pass

        @register_scenario("probe-kind")
        def _probe(scenario, rng):
            captured["rng"] = rng
            return BuiltMobility(_StubMobility())

        try:
            with pytest.raises(ValueError):
                register_scenario("probe-kind")(_probe)
            built = ExperimentRunner().build(Scenario(kind="probe-kind", seed=17))
            # The builder must receive the simulator's seeded "mobility"
            # stream, not some private RNG.
            assert captured["rng"] is built.sim.rng.stream("mobility")
        finally:
            unregister_scenario("probe-kind")
        assert "probe-kind" not in available_scenario_kinds()

    def test_builders_draw_from_scenario_seed(self):
        def positions(seed):
            built = ExperimentRunner().build(
                highway_scenario(TrafficDensity.SPARSE, max_vehicles=8, seed=seed)
            )
            return [(v.position.x, v.position.y) for v in built.network.mobility.vehicles]

        assert positions(9) == positions(9)
        assert positions(9) != positions(10)

    def test_highway_builder_matches_direct_stream_seeding(self):
        """The registry builder is a pure re-wiring: the same density/config
        populated directly from the scenario's derived "mobility" stream must
        produce identical vehicles."""
        scenario = highway_scenario(TrafficDensity.SPARSE, max_vehicles=8, seed=9)
        built = ExperimentRunner().build(scenario)
        expected = make_highway_scenario(
            TrafficDensity.SPARSE,
            config=scenario.highway,
            max_vehicles=8,
            rng=RandomStreams(9).stream("mobility"),
        )
        got = [(v.position.x, v.position.y) for v in built.network.mobility.vehicles]
        want = [(v.position.x, v.position.y) for v in expected.vehicles]
        assert got == want


class TestPresets:
    def test_unknown_preset_raises_listing_presets(self):
        with pytest.raises(KeyError) as excinfo:
            scenario_from_name("atlantis")
        message = str(excinfo.value)
        assert "atlantis" in message
        assert "city-grid-2km-sparse" in message
        assert "trace:<path>" in message

    def test_bare_kind_resolves(self):
        scenario = scenario_from_name("city")
        assert scenario.kind == "city"

    def test_overrides_apply_on_top(self):
        scenario = scenario_from_name("highway-2km-sparse", duration_s=7.5, seed=42)
        assert scenario.duration_s == 7.5
        assert scenario.seed == 42
        assert scenario.density is TrafficDensity.SPARSE

    def test_register_preset_rejects_duplicates(self):
        register_preset("tmp-preset", lambda: Scenario(name="tmp"), "temporary")
        try:
            with pytest.raises(ValueError):
                register_preset("tmp-preset", lambda: Scenario(), "again")
            assert "tmp-preset" in available_presets()
        finally:
            unregister_preset("tmp-preset")
        assert "tmp-preset" not in available_presets()

    def test_every_preset_builds_and_steps(self):
        """Each preset must instantiate into a live network and survive one
        simulated second of mobility stepping."""
        runner = ExperimentRunner()
        for name in available_presets():
            scenario = scenario_from_name(name, max_vehicles=10, seed=2)
            built = runner.build(scenario)
            assert built.network.mobility is not None, name
            assert len(built.vehicle_nodes) > 0, name
            built.network.start()
            built.sim.run(until=1.1)

    def test_preset_and_kind_rows_cover_registries(self):
        assert {row["preset"] for row in preset_rows()} == set(available_presets())
        assert {row["kind"] for row in kind_rows()} == set(available_scenario_kinds())
        for row in preset_rows():
            assert row["description"]

    def test_city_preset_deploys_rsus(self):
        built = ExperimentRunner().build(
            scenario_from_name("city-grid-2km-sparse", max_vehicles=10)
        )
        assert len(built.network.rsus) > 0
        assert built.road_graph is not None


class TestTraceReplayScenario:
    def _record(self, tmp_path, seed=11, vehicles=10, duration=12.0, dt=0.5):
        source = make_highway_scenario(
            TrafficDensity.SPARSE, seed=seed, max_vehicles=vehicles
        )
        samples = record_fcd_trace(source, duration=duration, dt=dt)
        path = tmp_path / "trace.csv"
        write_fcd_trace(path, samples)
        return path, samples

    def test_trace_prefix_resolution(self, tmp_path):
        path, _ = self._record(tmp_path)
        scenario = scenario_from_name(f"trace:{path}")
        assert scenario.kind == "trace"
        assert scenario.trace_path == str(path)

    def test_trace_prefix_requires_path(self):
        with pytest.raises(ValueError):
            scenario_from_name("trace:")

    def test_trace_kind_requires_trace_path(self):
        with pytest.raises(ValueError):
            build_mobility(Scenario(kind="trace"), RandomStreams(1).stream("mobility"))

    def test_round_trip_reproduces_recorded_positions(self, tmp_path):
        """Record FCD from a highway model, replay it as a scenario, and the
        simulated nodes must sit exactly on the recorded samples."""
        path, samples = self._record(tmp_path)
        scenario = trace_scenario(str(path), duration_s=8.0)
        built = ExperimentRunner().build(scenario)
        built.network.start()
        built.sim.run(until=6.0)
        mobility = built.network.mobility
        # The mobility step cadence (0.5 s, unjittered) matches the recording
        # grid, so the replay clock must land on a recorded sample time...
        assert mobility.time == 6.0
        by_key = {(s.vid, s.time): s for s in samples}
        # ...and every node's position must equal the recorded sample.
        assert len(built.vehicle_nodes) == 10
        for node, vehicle in zip(built.vehicle_nodes, mobility.vehicles):
            sample = by_key[(vehicle.vid, mobility.time)]
            assert node.position.x == sample.x
            assert node.position.y == sample.y
            assert vehicle.speed == sample.speed

    def test_trace_scenario_runs_a_protocol(self, tmp_path):
        path, _ = self._record(tmp_path)
        scenario = trace_scenario(str(path), duration_s=8.0, default_flow_count=2)
        result = ExperimentRunner().run(scenario, "Greedy")
        assert result.summary["data_sent"] > 0
        assert result.vehicle_count == 10
