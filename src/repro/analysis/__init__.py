"""Offline analysis of VANET topology dynamics.

The survey's qualitative claims about traffic regimes ("mobility prediction
is not accurate in sparse/congested traffic", "flooding scales badly beyond a
few hundred nodes", "infrastructure is needed when the traffic is sparse")
are ultimately statements about the *connectivity graph* the vehicles form
and how it evolves.  This package computes those statistics directly from a
mobility model, independently of any routing protocol:

* :mod:`~repro.analysis.connectivity` -- snapshot connectivity graphs,
  partition counts, largest-component fractions and node degrees.
* :mod:`~repro.analysis.link_dynamics` -- link formation/breakage tracking,
  link-duration distributions and lifetime-prediction error measurement.
"""

from repro.analysis.connectivity import (
    ConnectivitySnapshot,
    connectivity_graph,
    connectivity_over_time,
    snapshot_connectivity,
)
from repro.analysis.link_dynamics import (
    LinkDurationTracker,
    LinkObservation,
    measure_link_durations,
    prediction_error_statistics,
)

__all__ = [
    "ConnectivitySnapshot",
    "connectivity_graph",
    "connectivity_over_time",
    "snapshot_connectivity",
    "LinkDurationTracker",
    "LinkObservation",
    "measure_link_durations",
    "prediction_error_statistics",
]
