"""End-to-end integration tests: full scenarios through the harness.

These tests exercise the same code paths as the benchmarks, on deliberately
small scenarios so the whole suite stays fast.  They check the qualitative
relationships of the paper's Table I rather than exact numbers.
"""

import pytest

from repro.core.taxonomy import Category, global_registry
from repro.harness.compare import DEFAULT_REPRESENTATIVES, category_comparison
from repro.harness.runner import ExperimentRunner
from repro.harness.scenario import FlowSpec, highway_scenario, manhattan_scenario
from repro.harness.sweep import sweep_protocols
from repro.mobility.generator import TrafficDensity
from repro.protocols.registry import available_protocols


def _scenario(density=TrafficDensity.NORMAL, **overrides):
    base = highway_scenario(
        density,
        duration_s=15.0,
        max_vehicles=40,
        default_flow_count=3,
        seed=11,
        flow_template=FlowSpec(start_time_s=4.0, interval_s=1.0, packet_count=8),
    )
    return base.with_overrides(**overrides) if overrides else base


RUNNER = ExperimentRunner()


class TestEveryProtocolRuns:
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_protocol_completes_a_highway_run(self, protocol):
        scenario = _scenario(duration_s=12.0, max_vehicles=30, default_flow_count=2)
        if protocol == "Bus-Ferry":
            scenario = scenario.with_overrides(bus_count=2)
        if protocol == "RSU-Relay":
            scenario = scenario.with_overrides(rsu_spacing_m=500.0)
        result = RUNNER.run(scenario, protocol)
        assert result.summary["data_sent"] > 0
        assert 0.0 <= result.delivery_ratio <= 1.0
        # Something must have been transmitted: protocols cannot silently idle.
        assert result.summary["data_transmissions"] + result.summary["control_transmissions"] > 0


class TestTableOneShapes:
    def test_flooding_has_highest_data_dissemination_cost(self):
        scenario = _scenario()
        results = sweep_protocols(scenario, ["Flooding", "AODV", "Greedy", "Yan-TBP"], runner=RUNNER)
        by_name = {r.protocol: r for r in results}

        def data_cost(result):
            delivered = max(1.0, result.summary["data_delivered"])
            return result.summary["data_transmissions"] / delivered

        flooding_cost = data_cost(by_name["Flooding"])
        for other in ("AODV", "Greedy", "Yan-TBP"):
            assert flooding_cost > data_cost(by_name[other])

    def test_probing_discovery_cheaper_than_flooded_discovery(self):
        # "The probability based method selectively probes ... to avoid
        # brute-force flooding probing": one ticket-based discovery costs a
        # handful of unicast probes, whereas one AODV discovery floods a
        # large share of the network.  Comparing per-discovery cost keeps the
        # check independent of how often each protocol decides to retry.
        scenario = _scenario()
        results = sweep_protocols(scenario, ["AODV", "Yan-TBP"], runner=RUNNER)
        by_name = {r.protocol: r for r in results}

        def per_discovery_cost(result):
            started = max(1.0, result.summary["route_discoveries_started"])
            return result.summary["discovery_transmissions"] / started

        assert per_discovery_cost(by_name["Yan-TBP"]) < per_discovery_cost(by_name["AODV"])

    def test_geographic_beaconing_is_persistent_overhead(self):
        result = RUNNER.run(_scenario(default_flow_count=1), "Greedy")
        assert result.summary["beacon_transmissions"] > result.summary["data_transmissions"]

    def test_category_comparison_produces_rows_for_all_categories(self):
        scenario = _scenario(max_vehicles=30, duration_s=12.0, rsu_spacing_m=500.0)
        results = sweep_protocols(
            scenario, list(DEFAULT_REPRESENTATIVES.values()), runner=RUNNER
        )
        rows = category_comparison(results)
        assert {row["category"] for row in rows} == {c.value for c in Category}
        for row in rows:
            assert 0.0 <= row["delivery_ratio"] <= 1.0


class TestInfrastructureShape:
    def test_rsus_rescue_sparse_traffic(self):
        sparse = _scenario(density=TrafficDensity.SPARSE, duration_s=20.0, max_vehicles=25)
        without_rsu = RUNNER.run(sparse, "RSU-Relay")
        with_rsu = RUNNER.run(sparse.with_overrides(rsu_spacing_m=400.0), "RSU-Relay")
        assert with_rsu.delivery_ratio > without_rsu.delivery_ratio
        assert with_rsu.summary["backbone_transmissions"] > 0


class TestTaxonomyCoverage:
    def test_registry_matches_factories(self):
        registered = {info.name for info in global_registry.protocols}
        assert registered == set(available_protocols())

    def test_at_least_fifteen_protocols_implemented(self):
        assert len(available_protocols()) >= 15


class TestUrbanScenario:
    def test_manhattan_with_rsus_at_intersections(self):
        scenario = manhattan_scenario(
            TrafficDensity.NORMAL,
            duration_s=15.0,
            max_vehicles=40,
            default_flow_count=3,
            rsu_spacing_m=400.0,
            seed=5,
        )
        result = RUNNER.run(scenario, "RSU-Relay")
        assert result.rsu_count > 0
        assert result.summary["data_sent"] > 0
