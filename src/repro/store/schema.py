"""Record-schema versioning for persisted run artifacts.

Every on-disk artifact that carries :class:`~repro.harness.runner.RunRecord`
payloads -- the experiment store's JSONL record log, ``sweep_to_json``
sweep files, the store manifest -- is stamped with an explicit
``schema_version``.  Readers accept the versions they know how to parse and
fail loudly on anything else, instead of silently mis-parsing a future
layout into zero-filled defaults.

The version history and the per-version field catalogue live here, in one
dependency-free module, so that

* :mod:`repro.harness.runner` can stamp and validate payloads without
  importing the store machinery (which itself imports the runner), and
* the ``SCHEMA-001`` lint rule (:mod:`repro.devtools.rules.schema`) can
  cross-check the :class:`RunRecord` dataclass against the catalogue
  purely syntactically: changing the record layout without bumping
  :data:`RECORD_SCHEMA_VERSION` and extending :data:`RECORD_FIELDS` fails
  CI.

Version history:

* **1** -- the implicit pre-store layout (no ``schema_version`` key).
  Payloads without the key are read as version 1.
* **2** -- identical field set, but every written payload carries the
  explicit ``schema_version`` stamp (introduced with the experiment
  store).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: The schema version this build writes.
RECORD_SCHEMA_VERSION: int = 2

#: Field catalogue per known schema version: the exact dataclass fields of
#: :class:`~repro.harness.runner.RunRecord`, in declaration order.  The
#: SCHEMA-001 lint rule pins the live dataclass to the entry for
#: :data:`RECORD_SCHEMA_VERSION`; changing the record layout therefore
#: requires a version bump plus a new catalogue entry, which is exactly the
#: audit trail persisted artifacts need.
RECORD_FIELDS: Dict[int, Tuple[str, ...]] = {
    1: (
        "scenario_name",
        "protocol",
        "seed",
        "summary",
        "extra",
        "flow_details",
        "vehicle_count",
        "rsu_count",
        "wall_clock_s",
        "workload",
        "radio",
    ),
    2: (
        "scenario_name",
        "protocol",
        "seed",
        "summary",
        "extra",
        "flow_details",
        "vehicle_count",
        "rsu_count",
        "wall_clock_s",
        "workload",
        "radio",
    ),
}

#: Versions this build knows how to read.
KNOWN_RECORD_SCHEMA_VERSIONS: Tuple[int, ...] = tuple(sorted(RECORD_FIELDS))


def check_record_schema_version(payload: Dict[str, object], what: str) -> int:
    """Validate ``payload``'s ``schema_version`` stamp and return it.

    A payload without the key is a legacy version-1 artifact and is
    accepted; any version outside :data:`KNOWN_RECORD_SCHEMA_VERSIONS`
    raises ``ValueError`` with an actionable message (the alternative --
    parsing a future layout field-by-field with defaults -- would silently
    fabricate zero metrics).
    """
    raw = payload.get("schema_version", 1)
    try:
        version = int(raw)  # type: ignore[call-overload]
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} carries a non-integer schema_version {raw!r}; "
            "the artifact is corrupt or was written by an incompatible tool"
        ) from None
    if version not in RECORD_FIELDS:
        known = ", ".join(str(v) for v in KNOWN_RECORD_SCHEMA_VERSIONS)
        raise ValueError(
            f"{what} has schema_version {version}, but this build only "
            f"reads versions {{{known}}}; it was written by a newer (or "
            "incompatible) version of repro -- upgrade before reading it"
        )
    return version
