"""COW-001 fixtures plus the live-medium regression."""

from pathlib import Path

from repro.devtools import lint_sources

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _hits(report, rule_id="COW-001"):
    return [(f.rule_id, f.path, f.line) for f in report.findings if f.rule_id == rule_id]


class TestCowDeliverySeamRule:
    def test_bare_packet_copy_flagged_in_medium(self):
        src = (
            "def _complete(self, transmission):\n"
            "    for receiver in receivers:\n"
            "        receiver.deliver(packet.copy(), transmission.sender_id)\n"
        )
        report = lint_sources({"sim/medium.py": src}, select=["COW-001"])
        assert _hits(report) == [("COW-001", "sim/medium.py", 3)]

    def test_attribute_packet_copy_flagged(self):
        src = (
            "def _complete(self, transmission):\n"
            "    frame = transmission.packet.copy()\n"
        )
        report = lint_sources({"sim/medium.py": src}, select=["COW-001"])
        assert _hits(report) == [("COW-001", "sim/medium.py", 2)]

    def test_copy_inside_the_seam_allowed(self):
        src = (
            "def _deliverable_frame(self, receiver, packet):\n"
            "    if receiver.cow_frames_ok:\n"
            "        return packet.view()\n"
            "    return packet.copy()\n"
        )
        report = lint_sources({"sim/medium.py": src}, select=["COW-001"])
        assert report.clean

    def test_non_packet_copy_allowed(self):
        src = (
            "def _prune(self):\n"
            "    snapshot = self._transmissions.copy()\n"
        )
        report = lint_sources({"sim/medium.py": src}, select=["COW-001"])
        assert report.clean

    def test_other_modules_out_of_scope(self):
        # Protocols legitimately copy packets when forwarding.
        src = (
            "def route_data(self, packet):\n"
            "    self.node.send(packet.copy())\n"
        )
        report = lint_sources({"protocols/flooding.py": src}, select=["COW-001"])
        assert report.clean

    def test_live_medium_is_clean(self):
        """Acceptance criterion: the real medium only copies inside the seam,
        and reintroducing an eager per-receiver copy refires the rule."""
        original = (SRC / "sim" / "medium.py").read_text(encoding="utf-8")
        assert "_deliverable_frame" in original, "seam renamed; update the rule"
        report = lint_sources({"sim/medium.py": original}, select=["COW-001"])
        assert report.clean
        regressed = original.replace(
            "self._deliverable_frame(node, transmission.packet)",
            "transmission.packet.copy()",
        )
        assert regressed != original
        refire = lint_sources({"sim/medium.py": regressed}, select=["COW-001"])
        assert not refire.clean
        assert all(f.rule_id == "COW-001" for f in refire.findings)
