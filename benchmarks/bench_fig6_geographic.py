"""E6 -- Fig. 6: geographic-location-based routing (zones, gateways, greedy).

Fig. 6 shows the road partitioned into zones/grid cells with gateway nodes
relaying between them.  The measurable claims of Sec. VI / Table I: position-
based forwarding avoids the duplicate transmissions of flooding (only one or
two nodes per zone retransmit), needs no discovery phase, but pays a constant
beacon overhead and does not find optimal paths (path stretch > 1).

Expected shape: data transmissions per delivered packet are a small multiple
of the hop count for Greedy/Grid-Gateway/Zone, versus roughly one per vehicle
for flooding; beacon overhead is non-zero even for idle protocols; path
stretch is above 1.
"""

from __future__ import annotations

from repro.harness.sweep import sweep_protocols
from repro.mobility.generator import TrafficDensity

from benchmarks.common import RUNNER, report, run_once, small_highway

PROTOCOLS = ["Greedy", "Zone", "Grid-Gateway", "Flooding"]


def _run_geographic_comparison():
    scenario = small_highway(TrafficDensity.NORMAL, max_vehicles=100, flows=5, seed=41)
    return sweep_protocols(scenario, PROTOCOLS, runner=RUNNER)


def test_fig6_geographic_routing(benchmark):
    """Duplicate suppression, beacon overhead and path stretch of geographic routing."""
    results = run_once(benchmark, _run_geographic_comparison)

    rows = []
    for result in results:
        summary = result.summary
        delivered = max(1.0, summary["data_delivered"])
        rows.append(
            {
                "protocol": result.protocol,
                "delivery_ratio": summary["delivery_ratio"],
                "data_tx_per_delivery": summary["data_transmissions"] / delivered,
                "beacon_tx": summary["beacon_transmissions"],
                "discovery_tx": summary["discovery_transmissions"],
                "mean_hops": summary["mean_hops"],
                "path_stretch": result.extra.get("path_stretch", 0.0),
                "mean_delay_s": summary["mean_delay_s"],
            }
        )
    report(
        "fig6_geographic",
        rows,
        title="Fig. 6 -- geographic routing vs. flooding (duplicates, beacons, stretch)",
    )

    by_name = {row["protocol"]: row for row in rows}
    flooding = by_name["Flooding"]
    # Every geographic scheme forwards each packet over far fewer transmissions
    # than flooding (duplicate suppression through zones/gateways/greedy).
    for name in ("Greedy", "Zone", "Grid-Gateway"):
        assert by_name[name]["data_tx_per_delivery"] < flooding["data_tx_per_delivery"]
    # Greedy and gateway forwarding are unicast chains: per-delivery cost is a
    # small multiple of the hop count (hops, MAC retries and the transmissions
    # spent on packets that were ultimately lost), far from flooding's
    # one-transmission-per-vehicle regime.
    assert by_name["Greedy"]["data_tx_per_delivery"] < 5.0 * max(
        1.0, by_name["Greedy"]["mean_hops"]
    )
    # Position-based protocols beacon even when idle; flooding does not.
    assert by_name["Greedy"]["beacon_tx"] > 0
    assert flooding["beacon_tx"] == 0
    # No discovery phase, unlike connectivity-based routing.
    assert by_name["Greedy"]["discovery_tx"] == 0
    # Paths are not optimal: the measured hop count is around or above the
    # straight-line lower bound (the bound itself is loose because vehicles
    # move between the send and the delivery, so allow a small slack), and
    # never anywhere near flooding's exploration of every node.
    for name in ("Greedy", "Grid-Gateway"):
        assert 0.85 <= by_name[name]["path_stretch"] <= 3.0
