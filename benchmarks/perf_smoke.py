"""CI perf-smoke: a scaled-down beacon storm plus a results-schema check.

Two guarantees, cheap enough for every pull request:

1. **Backend equality still holds on the storm path.**  Runs the Part B
   beacon storm from :mod:`benchmarks.bench_medium_scaling` at N=800
   (same congested density, ~1/8 the population) through the grid and
   vectorized backends and asserts byte-identical transmission and
   collision counts.  This is the delivery-path invariant the full
   benchmark pins at N=6400; the smoke cell catches regressions without
   the multi-minute reference run.

2. **The committed results file keeps its schema.**  Docs and CI quote
   ``BENCH_medium_scaling.json`` by key; a benchmark refactor that
   renames or drops fields would silently break them.  The check diffs
   the committed payload against the schema this script expects.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_smoke
"""

from __future__ import annotations

import json
import sys

from benchmarks.bench_medium_scaling import (
    RESULTS_JSON,
    STORM_SCALE_VEHICLES,
    run_storm_cell,
)

SMOKE_VEHICLES = 800

#: Fields every storm row must carry (the JSON contract docs quote from).
STORM_ROW_FIELDS = {
    "vehicles",
    "backend",
    "radio",
    "beacon_hz",
    "wall_s",
    "frames",
    "frames_per_s",
    "transmissions",
    "collisions",
}

#: Fields every Part A scaling row must carry.
SCALING_ROW_FIELDS = {
    "vehicles",
    "radio",
    "frames",
    "linear_s",
    "grid_s",
    "vectorized_s",
    "linear_frames_per_s",
    "grid_frames_per_s",
    "vectorized_frames_per_s",
    "grid_speedup",
    "vectorized_speedup",
    "tx_linear",
    "tx_grid",
    "tx_vectorized",
}


def smoke_storm(vehicles: int = SMOKE_VEHICLES) -> dict:
    """Grid vs. vectorized at smoke scale; returns both rows on success."""
    grid = run_storm_cell("grid", vehicles)
    vectorized = run_storm_cell("vectorized", vehicles)
    assert grid["transmissions"] == vectorized["transmissions"], (
        grid["transmissions"],
        vectorized["transmissions"],
    )
    assert grid["collisions"] == vectorized["collisions"], (
        grid["collisions"],
        vectorized["collisions"],
    )
    assert grid["frames"] > 0
    return {"grid": grid, "vectorized": vectorized}


def check_results_schema(path=RESULTS_JSON) -> dict:
    """Validate the committed BENCH_medium_scaling.json against the contract."""
    payload = json.loads(path.read_text())
    missing = {"benchmark", "generated_by", "scaling", "storm", "storm_scale"} - set(
        payload
    )
    assert not missing, f"results file missing top-level keys: {sorted(missing)}"
    assert payload["benchmark"] == "medium_scaling"

    assert payload["scaling"], "scaling section is empty"
    for row in payload["scaling"]:
        gap = SCALING_ROW_FIELDS - set(row)
        assert not gap, f"scaling row missing fields: {sorted(gap)}"

    storm = payload["storm"]
    for backend in ("grid", "vectorized"):
        assert backend in storm, f"storm section missing {backend!r} row"
        gap = STORM_ROW_FIELDS - set(storm[backend])
        assert not gap, f"storm {backend} row missing fields: {sorted(gap)}"
    assert "speedup" in storm
    # The recorded headline cell must itself satisfy backend equality.
    assert (
        storm["grid"]["transmissions"] == storm["vectorized"]["transmissions"]
    ), "recorded storm rows disagree on transmissions"
    assert (
        storm["grid"]["collisions"] == storm["vectorized"]["collisions"]
    ), "recorded storm rows disagree on collisions"
    if "linear" in storm:
        assert (
            storm["linear"]["transmissions"] == storm["vectorized"]["transmissions"]
        ), "recorded linear storm row disagrees on transmissions"
        assert (
            storm["linear"]["collisions"] == storm["vectorized"]["collisions"]
        ), "recorded linear storm row disagrees on collisions"

    scale_rows = payload["storm_scale"]
    assert scale_rows, "storm_scale section is empty"
    for row in scale_rows:
        gap = STORM_ROW_FIELDS - set(row)
        assert not gap, f"storm_scale row missing fields: {sorted(gap)}"
    assert any(
        row["vehicles"] == STORM_SCALE_VEHICLES for row in scale_rows
    ), f"no storm_scale row at N={STORM_SCALE_VEHICLES}"
    return payload


def main() -> int:
    rows = smoke_storm()
    grid, vectorized = rows["grid"], rows["vectorized"]
    print(
        f"storm smoke N={SMOKE_VEHICLES}: "
        f"grid {grid['wall_s']:.2f}s / vectorized {vectorized['wall_s']:.2f}s, "
        f"tx={grid['transmissions']} collisions={grid['collisions']} "
        f"(byte-identical)"
    )
    check_results_schema()
    print(f"{RESULTS_JSON.name} schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
