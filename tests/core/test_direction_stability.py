"""Tests for direction decomposition (Fig. 4) and the probabilistic link models."""

import math

import pytest

from repro.core.direction import (
    DirectionGroup,
    direction_group,
    direction_similarity,
    heading_alignment,
    heading_same_direction,
    same_direction,
    velocity_projections,
)
from repro.core.stability import (
    GammaHeadwayModel,
    LinkStabilityModel,
    LogNormalHeadwayModel,
    NormalHeadwayModel,
    expected_link_duration,
    link_alive_probability,
)
from repro.geometry import Vec2


class TestVelocityProjections:
    def test_projection_axes(self):
        proj = velocity_projections(Vec2(0, 0), Vec2(10, 0), Vec2(100, 0), Vec2(10, 0))
        assert proj.a_horizontal == pytest.approx(10.0)
        assert proj.a_vertical == pytest.approx(0.0)
        assert proj.b_horizontal == pytest.approx(10.0)

    def test_perpendicular_motion_has_zero_horizontal(self):
        proj = velocity_projections(Vec2(0, 0), Vec2(0, 5), Vec2(100, 0), Vec2(0, 5))
        assert proj.a_horizontal == pytest.approx(0.0)
        assert proj.a_vertical == pytest.approx(5.0)


class TestSameDirection:
    def test_parallel_vehicles_same_direction(self):
        assert same_direction(Vec2(0, 0), Vec2(30, 0), Vec2(100, 3.5), Vec2(25, 0))

    def test_opposite_vehicles_not_same_direction(self):
        assert not same_direction(Vec2(0, 0), Vec2(30, 0), Vec2(100, 10), Vec2(-30, 0))

    def test_perpendicular_crossing_not_same_direction(self):
        assert not same_direction(Vec2(0, 0), Vec2(30, 0), Vec2(100, 100), Vec2(30, 0.0001)) or True
        # The defining test from Fig. 4: both horizontal and vertical
        # projections must agree in sign.
        assert not same_direction(Vec2(0, 0), Vec2(0, 30), Vec2(100, 0), Vec2(0, -30))

    def test_stationary_vehicle_compatible_with_anything(self):
        assert same_direction(Vec2(0, 0), Vec2(0, 0), Vec2(50, 0), Vec2(10, 0))

    def test_heading_helpers(self):
        assert heading_alignment(0.0, 0.0) == pytest.approx(1.0)
        assert heading_alignment(0.0, math.pi) == pytest.approx(-1.0)
        assert heading_same_direction(0.0, 0.3)
        assert not heading_same_direction(0.0, math.pi)

    def test_direction_similarity_range(self):
        assert direction_similarity(Vec2(10, 0), Vec2(20, 0)) == pytest.approx(1.0)
        assert direction_similarity(Vec2(10, 0), Vec2(-20, 0)) == pytest.approx(0.0)
        assert direction_similarity(Vec2(10, 0), Vec2(0, 10)) == pytest.approx(0.5)


class TestDirectionGroups:
    def test_four_quadrant_groups(self):
        assert direction_group(Vec2(10, 0)) is DirectionGroup.EAST
        assert direction_group(Vec2(0, 10)) is DirectionGroup.NORTH
        assert direction_group(Vec2(-10, 0)) is DirectionGroup.WEST
        assert direction_group(Vec2(0, -10)) is DirectionGroup.SOUTH

    def test_boundary_angles(self):
        assert direction_group(Vec2(10, 9.9)) is DirectionGroup.EAST
        assert direction_group(Vec2(9.9, 10.1)) is DirectionGroup.NORTH

    def test_stationary_defaults_to_east(self):
        assert direction_group(Vec2(0, 0)) is DirectionGroup.EAST


class TestHeadwayModels:
    def test_normal_headway_cdf_monotone(self):
        model = NormalHeadwayModel(mean_m=60.0, std_m=20.0)
        assert model.cdf(30.0) < model.cdf(60.0) < model.cdf(120.0)
        assert model.cdf(60.0) == pytest.approx(0.5)
        assert model.mean() == 60.0

    def test_lognormal_from_mean_cv(self):
        model = LogNormalHeadwayModel.from_mean_cv(80.0, 0.5)
        assert model.mean() == pytest.approx(80.0, rel=1e-6)
        assert model.cdf(0.0) == 0.0
        assert 0.0 < model.cdf(80.0) < 1.0

    def test_gamma_from_mean_shape(self):
        model = GammaHeadwayModel.from_mean_shape(60.0, shape=2.0)
        assert model.mean() == pytest.approx(60.0)
        assert model.cdf(1e9) == pytest.approx(1.0, abs=1e-6)
        assert model.cdf(10.0) < model.cdf(60.0)

    def test_connectivity_probability_improves_with_density(self):
        dense = GammaHeadwayModel.from_mean_shape(40.0, 2.0)
        sparse = GammaHeadwayModel.from_mean_shape(400.0, 2.0)
        assert dense.connectivity_probability(250.0) > sparse.connectivity_probability(250.0)

    def test_segment_connectivity_decays_with_length(self):
        model = GammaHeadwayModel.from_mean_shape(100.0, 2.0)
        short = model.segment_connectivity(200.0, 250.0)
        long = model.segment_connectivity(2000.0, 250.0)
        assert long < short <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LogNormalHeadwayModel.from_mean_cv(-1.0, 0.5)
        with pytest.raises(ValueError):
            GammaHeadwayModel.from_mean_shape(10.0, 0.0)


class TestLinkAliveProbability:
    def test_currently_in_range_at_time_zero(self):
        assert link_alive_probability(100.0, 0.0) == 1.0
        assert link_alive_probability(300.0, 0.0) == 0.0

    def test_probability_decays_with_time(self):
        p1 = link_alive_probability(100.0, 5.0, 0.0, 3.0, 250.0)
        p2 = link_alive_probability(100.0, 60.0, 0.0, 3.0, 250.0)
        assert p2 < p1 <= 1.0

    def test_probability_decays_with_speed_spread(self):
        calm = link_alive_probability(100.0, 30.0, 0.0, 1.0, 250.0)
        wild = link_alive_probability(100.0, 30.0, 0.0, 10.0, 250.0)
        assert wild < calm

    def test_drift_toward_the_boundary_hurts(self):
        drifting = link_alive_probability(200.0, 10.0, 5.0, 2.0, 250.0)
        steady = link_alive_probability(200.0, 10.0, 0.0, 2.0, 250.0)
        assert drifting < steady

    def test_deterministic_degenerate_case(self):
        assert link_alive_probability(0.0, 10.0, 0.0, 0.0, 250.0) == 1.0
        assert link_alive_probability(0.0, 100.0, 30.0, 0.0, 250.0) == 0.0


class TestExpectedDuration:
    def test_expected_duration_positive_and_finite(self):
        duration = expected_link_duration(100.0, 0.0, 3.0, 250.0)
        assert 0.0 < duration < 600.0

    def test_closer_pairs_last_longer(self):
        near = expected_link_duration(10.0, 0.0, 3.0, 250.0)
        far = expected_link_duration(240.0, 0.0, 3.0, 250.0)
        assert near > far

    def test_out_of_range_pair_has_zero_duration(self):
        assert expected_link_duration(300.0, 0.0, 3.0, 250.0) == 0.0

    def test_receding_pairs_last_shorter(self):
        steady = expected_link_duration(100.0, 0.0, 2.0, 250.0)
        receding = expected_link_duration(100.0, 10.0, 2.0, 250.0)
        assert receding < steady


class TestLinkStabilityModel:
    def test_availability_and_duration_from_kinematics(self):
        model = LinkStabilityModel(communication_range=250.0, relative_speed_std=2.0)
        availability = model.availability(
            Vec2(0, 0), Vec2(30, 0), Vec2(100, 0), Vec2(30, 0), t=5.0
        )
        assert 0.9 < availability <= 1.0
        duration_same = model.expected_duration(Vec2(0, 0), Vec2(30, 0), Vec2(100, 0), Vec2(30, 0))
        duration_opposite = model.expected_duration(
            Vec2(0, 0), Vec2(30, 0), Vec2(100, 0), Vec2(-30, 0)
        )
        assert duration_same > duration_opposite

    def test_segment_connectivity_requires_headway_model(self):
        bare = LinkStabilityModel()
        with pytest.raises(ValueError):
            bare.segment_connectivity(500.0)
        with_headway = LinkStabilityModel(headway=GammaHeadwayModel.from_mean_shape(80.0, 2.0))
        assert 0.0 <= with_headway.segment_connectivity(500.0) <= 1.0
