"""Road-graph-driven mobility: vehicles walking an arbitrary road network.

The highway and Manhattan models hard-code their geometry; this model drives
vehicles over any :class:`~repro.roadnet.graph.RoadGraph` instead, which is
what city-scale scenarios need (arterial + grid topologies from
:mod:`repro.roadnet.city`, or any future imported map).  Vehicles travel
along road segments at a speed relaxed toward the segment's speed limit and
pick the next segment at every intersection (avoiding an immediate U-turn
whenever the intersection offers an alternative).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geometry import Vec2
from repro.mobility.vehicle import VehicleState
from repro.roadnet.graph import RoadGraph


@dataclass
class GraphWalkConfig:
    """Driver behaviour on the road graph.

    Attributes:
        speed_factor: Global scaling of every speed limit (the traffic
            generators pass the density's congestion factor here).
        driver_spread: Relative std-dev of the per-driver speed preference
            (each driver targets ``preference x speed limit``).
        min_speed_mps: Lower clamp for vehicle speeds.
        speed_relaxation: First-order relaxation rate (1/s) of the current
            speed toward the target speed.
        p_u_turn: Probability of turning back at an intersection that offers
            other exits (dead ends always turn back).
    """

    speed_factor: float = 1.0
    driver_spread: float = 0.12
    min_speed_mps: float = 2.0
    speed_relaxation: float = 0.6
    p_u_turn: float = 0.02


class GraphWalkMobility:
    """Vehicles moving edge-to-edge over an arbitrary road graph."""

    def __init__(
        self,
        graph: RoadGraph,
        config: Optional[GraphWalkConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not graph.intersections:
            raise ValueError("graph-walk mobility needs a non-empty road graph")
        self.graph = graph
        self.config = config if config is not None else GraphWalkConfig()
        if rng is None:
            # No fixed-seed fallback: scenario.seed must reach every turn
            # decision (see the PR 2 random-waypoint regression).
            raise ValueError(
                "GraphWalkMobility needs the simulator's seeded 'mobility' "
                "stream (rng=sim.rng.stream('mobility'))"
            )
        self._rng = rng
        self.vehicles: List[VehicleState] = []
        #: vid -> (from intersection, to intersection); progress lives in
        #: ``VehicleState.route_progress`` (metres from the edge's start).
        self._edges: Dict[int, Tuple[str, str]] = {}
        #: vid -> the driver's personal speed preference multiplier.
        self._preference: Dict[int, float] = {}
        self._edge_list: List[Tuple[str, str]] = [
            tuple(edge) for edge in graph.graph.edges
        ]
        if not self._edge_list:
            raise ValueError("graph-walk mobility needs at least one road segment")
        self._next_vid = 0
        self.time = 0.0
        self._store = None
        self._node_id_of: Dict[int, int] = {}
        #: Per-vehicle cached edge geometry (aligned with ``self.vehicles``):
        #: the current edge, its endpoint coordinate arrays, its length and
        #: the heading along it.  Rebuilt lazily, refreshed on edge changes.
        self._cache_edge: List[Optional[Tuple[str, str]]] = []
        self._headings: List[float] = []
        self._ox = self._oy = self._tx = self._ty = self._elen = None

    # ----------------------------------------------------------------- fleet
    def add_vehicle(
        self,
        edge: Optional[Tuple[str, str]] = None,
        offset_m: Optional[float] = None,
    ) -> VehicleState:
        """Add a vehicle on ``edge`` at ``offset_m`` (random edge/offset by default)."""
        cfg = self.config
        if edge is None:
            edge = self._rng.choice(self._edge_list)
            if self._rng.random() < 0.5:
                edge = (edge[1], edge[0])
        start, end = edge
        length = self._edge_length(start, end)
        if offset_m is None:
            offset_m = self._rng.uniform(0.0, length)
        offset_m = min(max(offset_m, 0.0), length)
        preference = max(0.5, self._rng.gauss(1.0, cfg.driver_spread))
        vehicle = VehicleState(
            vid=self._next_vid,
            lane=-1,
            route_progress=offset_m,
        )
        self._next_vid += 1
        self._edges[vehicle.vid] = (start, end)
        self._preference[vehicle.vid] = preference
        vehicle.desired_speed = self._target_speed(vehicle.vid, start, end)
        vehicle.speed = vehicle.desired_speed
        self._place(vehicle)
        self.vehicles.append(vehicle)
        return vehicle

    def bind_store(self, store, node_ids: Dict[int, int]) -> None:
        """Switch to array placement through a position store.

        Speed relaxation and intersection choices stay scalar (they draw
        from the mobility RNG per vehicle in list order), but the edge
        interpolation that turns longitudinal progress into plane positions
        -- the bulk of the per-step arithmetic -- becomes one whole-array
        expression over cached edge geometry, written through ``store``.
        ``node_ids`` maps vehicle vid to registered node id; the rows become
        *managed* so the medium stops re-pulling them on refresh.
        """
        self._store = store
        self._node_id_of = dict(node_ids)
        for vehicle in self.vehicles:
            store.set_managed(self._node_id_of[vehicle.vid])

    # ------------------------------------------------------------------ step
    def step(self, dt: float, now: float = 0.0) -> None:
        """Advance every vehicle by ``dt`` seconds."""
        if self._store is not None:
            self._step_array(dt, now)
            return
        self.time = now
        for vehicle in self.vehicles:
            self._step_vehicle(vehicle, dt)

    def _step_array(self, dt: float, now: float) -> None:
        """Scalar kinematics, whole-array placement (see :meth:`bind_store`).

        The interpolation ``origin + alpha * (target - origin)`` with
        ``alpha = min(1, progress / length)`` uses only exact IEEE-754 ops,
        so positions are bit-identical to :meth:`_place`; headings are
        cached per edge change because :func:`math.atan2` of unchanged
        endpoint coordinates cannot change either.
        """
        self.time = now
        vehicles = self.vehicles
        if not vehicles:
            return
        import numpy as np

        if self._ox is None or len(self._cache_edge) != len(vehicles):
            self._rebuild_geometry_cache()
        edges = self._edges
        cache_edge = self._cache_edge
        for i, vehicle in enumerate(vehicles):
            self._advance_kinematics(vehicle, dt)
            if cache_edge[i] != edges[vehicle.vid]:
                self._refresh_geometry(i, vehicle)
        count = len(vehicles)
        progress = np.fromiter(
            (v.route_progress for v in vehicles), np.float64, count=count
        )
        alpha = np.minimum(1.0, progress / self._elen)
        xs = self._ox + alpha * (self._tx - self._ox)
        ys = self._oy + alpha * (self._ty - self._oy)
        store = self._store
        rows = store.rows_for(self._node_id_of[v.vid] for v in vehicles)
        store.xs[rows] = xs
        store.ys[rows] = ys
        store.touch()
        headings = self._headings
        for i, vehicle in enumerate(vehicles):
            vehicle.position = Vec2(float(xs[i]), float(ys[i]))
            vehicle.heading = headings[i]

    def _rebuild_geometry_cache(self) -> None:
        import numpy as np

        count = len(self.vehicles)
        self._cache_edge = [None] * count
        self._headings = [0.0] * count
        self._ox = np.zeros(count)
        self._oy = np.zeros(count)
        self._tx = np.zeros(count)
        self._ty = np.zeros(count)
        self._elen = np.ones(count)
        for i, vehicle in enumerate(self.vehicles):
            self._refresh_geometry(i, vehicle)

    def _refresh_geometry(self, i: int, vehicle: VehicleState) -> None:
        start, end = self._edges[vehicle.vid]
        origin = self.graph.position_of(start)
        target = self.graph.position_of(end)
        self._cache_edge[i] = (start, end)
        self._ox[i] = origin.x
        self._oy[i] = origin.y
        self._tx[i] = target.x
        self._ty[i] = target.y
        self._elen[i] = self._edge_length(start, end)
        self._headings[i] = math.atan2(target.y - origin.y, target.x - origin.x)

    # -------------------------------------------------------------- internals
    def _edge_length(self, a: str, b: str) -> float:
        segment = self.graph.segment_between(a, b)
        if segment is None:
            raise KeyError(f"no road between {a} and {b}")
        return max(segment.length, 1e-9)

    def _edge_speed_limit(self, a: str, b: str) -> float:
        segment = self.graph.segment_between(a, b)
        if segment is None:
            raise KeyError(f"no road between {a} and {b}")
        return segment.speed_limit_mps

    def _target_speed(self, vid: int, a: str, b: str) -> float:
        cfg = self.config
        target = (
            self._preference[vid] * cfg.speed_factor * self._edge_speed_limit(a, b)
        )
        return max(cfg.min_speed_mps, target)

    def _place(self, vehicle: VehicleState) -> None:
        start, end = self._edges[vehicle.vid]
        origin = self.graph.position_of(start)
        target = self.graph.position_of(end)
        length = self._edge_length(start, end)
        alpha = min(1.0, vehicle.route_progress / length)
        vehicle.position = Vec2(
            origin.x + alpha * (target.x - origin.x),
            origin.y + alpha * (target.y - origin.y),
        )
        vehicle.heading = math.atan2(target.y - origin.y, target.x - origin.x)

    def _step_vehicle(self, vehicle: VehicleState, dt: float) -> None:
        self._advance_kinematics(vehicle, dt)
        self._place(vehicle)

    def _advance_kinematics(self, vehicle: VehicleState, dt: float) -> None:
        """Speed relaxation plus longitudinal advance (no placement)."""
        cfg = self.config
        start, end = self._edges[vehicle.vid]
        desired = self._target_speed(vehicle.vid, start, end)
        vehicle.desired_speed = desired
        vehicle.speed += (
            cfg.speed_relaxation * (desired - vehicle.speed) * dt
            + self._rng.gauss(0.0, 0.2) * dt
        )
        vehicle.speed = max(cfg.min_speed_mps * 0.5, vehicle.speed)
        remaining = vehicle.speed * dt
        # A vehicle may pass several intersections during one long step.
        for _ in range(8):
            if remaining <= 1e-9:
                break
            start, end = self._edges[vehicle.vid]
            length = self._edge_length(start, end)
            to_node = length - vehicle.route_progress
            if remaining < to_node:
                vehicle.route_progress += remaining
                remaining = 0.0
            else:
                remaining -= to_node
                self._choose_next_edge(vehicle, arrived_at=end, came_from=start)

    def _choose_next_edge(self, vehicle: VehicleState, arrived_at: str, came_from: str) -> None:
        options = self.graph.neighbors(arrived_at)
        forward = [name for name in options if name != came_from]
        if not forward:
            chosen = came_from  # dead end: forced U-turn
        elif self._rng.random() < self.config.p_u_turn and came_from in options:
            chosen = came_from
        else:
            chosen = self._rng.choice(forward)
        self._edges[vehicle.vid] = (arrived_at, chosen)
        vehicle.route_progress = 0.0


def populate_graph_walk(
    mobility: GraphWalkMobility,
    count: int,
    max_vehicles: Optional[int] = None,
) -> GraphWalkMobility:
    """Add ``count`` vehicles (capped at ``max_vehicles``) to ``mobility``."""
    if max_vehicles is not None:
        count = min(count, max_vehicles)
    for _ in range(max(0, count)):
        mobility.add_vehicle()
    return mobility


__all__ = ["GraphWalkConfig", "GraphWalkMobility", "populate_graph_walk"]
