"""Plain-text tables and machine-readable (CSV / JSON) benchmark artifacts."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.harness.runner import RunRecord
from repro.harness.sweep import SweepResult, aggregate_records
from repro.store.store import read_record_log


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Format dictionaries as an aligned plain-text table.

    Args:
        rows: One dictionary per row.
        columns: Column order (defaults to the keys of the first row).
        precision: Decimal places for float values.
        title: Optional title printed above the table.

    Returns:
        The formatted table as a string (ending without a trailing newline).
    """
    if not rows:
        return title or "(no rows)"
    selected = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[str(column) for column in selected]]
    for row in rows:
        rendered.append([_format_value(row.get(column, ""), precision) for column in selected])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(selected))]
    lines: List[str] = []
    if title:
        lines.append(title)
    header, *body = rendered
    lines.append("  ".join(cell.ljust(width) for cell, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def rows_to_csv(
    path: Union[str, Path],
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write rows to a CSV file."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return
    selected = list(columns) if columns is not None else list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=selected, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def rows_to_json(
    path: Union[str, Path],
    rows: Sequence[Dict[str, object]],
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write result rows as a JSON artifact (``{"metadata": ..., "rows": [...]}``).

    The companion of :func:`rows_to_csv` for pipelines that want typed values
    back instead of CSV strings.
    """
    payload = {"metadata": metadata or {}, "rows": list(rows)}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def rows_from_json(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read back the rows written by :func:`rows_to_json`."""
    payload = json.loads(Path(path).read_text())
    return list(payload.get("rows", []))


def sweep_to_json(path: Union[str, Path], result: SweepResult) -> None:
    """Persist a replicated sweep (per-run records plus aggregates) to JSON."""
    Path(path).write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")


def sweep_from_json(path: Union[str, Path]) -> SweepResult:
    """Load a sweep persisted by :func:`sweep_to_json`."""
    return SweepResult.from_dict(json.loads(Path(path).read_text()))


def sweep_from_store(path: Union[str, Path]) -> SweepResult:
    """Build a :class:`SweepResult` from an experiment-store record log.

    Works on a live (mid-run) or interrupted store: the records that made
    it into the log -- in append order, last write per key winning -- are
    aggregated exactly as :func:`~repro.harness.sweep.sweep_replications`
    would aggregate them.  A truncated tail line is skipped.
    """
    index: Dict[str, RunRecord] = {}
    for key, record in read_record_log(path):
        index[key] = record
    records = list(index.values())
    return SweepResult(records=records, replicated=aggregate_records(records))


def sweep_to_csv(
    path: Union[str, Path],
    result: SweepResult,
    metric_names: Optional[Sequence[str]] = None,
) -> None:
    """Write the aggregated rows of a replicated sweep to CSV."""
    rows_to_csv(path, result.rows(metric_names))


def summarize_results(rows: Iterable[Dict[str, object]], group_key: str) -> List[Dict[str, object]]:
    """Average numeric columns of ``rows`` grouped by ``group_key``."""
    grouped: Dict[object, List[Dict[str, object]]] = {}
    for row in rows:
        grouped.setdefault(row.get(group_key), []).append(row)
    summary: List[Dict[str, object]] = []
    for key, bucket in grouped.items():
        merged: Dict[str, object] = {group_key: key, "runs": len(bucket)}
        numeric_keys = {
            column
            for row in bucket
            for column, value in row.items()
            if isinstance(value, (int, float)) and column != group_key
        }
        for column in sorted(numeric_keys):
            values = [float(row[column]) for row in bucket if column in row]
            if values:
                merged[column] = sum(values) / len(values)
        summary.append(merged)
    return summary
