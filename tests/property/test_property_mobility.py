"""Property-based tests for the mobility models' physical invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.generator import TrafficDensity, make_highway_scenario, make_manhattan_scenario
from repro.mobility.highway import HighwayConfig, HighwayMobility
from repro.mobility.idm import IdmParameters, idm_acceleration

densities = st.sampled_from(list(TrafficDensity))
seeds = st.integers(min_value=0, max_value=10_000)


class TestIdmProperties:
    @given(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=5.0, max_value=45.0),
        st.floats(min_value=0.5, max_value=500.0),
        st.floats(min_value=-30.0, max_value=30.0),
    )
    def test_acceleration_is_bounded(self, speed, desired, gap, approach):
        params = IdmParameters()
        acceleration = idm_acceleration(speed, desired, gap, approach, params)
        assert -2.5 * params.comfortable_deceleration <= acceleration <= params.max_acceleration

    @given(
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=5.0, max_value=40.0),
        st.floats(min_value=1.0, max_value=400.0),
    )
    def test_smaller_gap_never_increases_acceleration(self, speed, desired, gap):
        wide = idm_acceleration(speed, desired, gap * 2.0, 0.0)
        tight = idm_acceleration(speed, desired, gap, 0.0)
        assert tight <= wide + 1e-9


class TestHighwayInvariants:
    @given(densities, seeds)
    @settings(max_examples=15, deadline=None)
    def test_positions_and_speeds_stay_physical(self, density, seed):
        config = HighwayConfig(length_m=1500.0)
        highway = make_highway_scenario(density, config=config, seed=seed, max_vehicles=40)
        for _ in range(30):
            highway.step(0.5)
        lane_ys = {highway.lane_y(lane) for lane in range(config.total_lanes)}
        for vehicle in highway.vehicles:
            assert 0.0 <= vehicle.route_progress < config.length_m
            assert 0.0 <= vehicle.position.x <= config.length_m
            assert vehicle.speed >= 0.0
            assert vehicle.speed < 70.0
            # Vehicles sit exactly on a lane centreline.
            assert any(abs(vehicle.position.y - y) < 1e-6 for y in lane_ys)
            assert vehicle.heading in (0.0, math.pi) or math.isclose(
                vehicle.heading, math.pi
            )

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_vehicle_count_is_preserved_by_stepping(self, seed):
        highway = make_highway_scenario(TrafficDensity.NORMAL, seed=seed, max_vehicles=30)
        before = len(highway.vehicles)
        vids_before = {v.vid for v in highway.vehicles}
        for _ in range(20):
            highway.step(0.5)
        assert len(highway.vehicles) == before
        assert {v.vid for v in highway.vehicles} == vids_before


class TestManhattanInvariants:
    @given(densities, seeds)
    @settings(max_examples=10, deadline=None)
    def test_vehicles_remain_on_the_street_grid(self, density, seed):
        mobility = make_manhattan_scenario(density, seed=seed, max_vehicles=25)
        config = mobility.config
        for _ in range(40):
            mobility.step(0.5)
        for vehicle in mobility.vehicles:
            x, y = vehicle.position.x, vehicle.position.y
            assert -1e-6 <= x <= config.width_m + 1e-6
            assert -1e-6 <= y <= config.height_m + 1e-6
            off_vertical = min(x % config.block_size_m, config.block_size_m - (x % config.block_size_m))
            off_horizontal = min(y % config.block_size_m, config.block_size_m - (y % config.block_size_m))
            assert off_vertical < 1.0 or off_horizontal < 1.0
