"""Tests for the topology-analysis package (connectivity and link dynamics)."""

import pytest

from repro.analysis.connectivity import (
    connectivity_graph,
    connectivity_over_time,
    snapshot_connectivity,
    summarize_snapshots,
)
from repro.analysis.link_dynamics import (
    LinkDurationTracker,
    measure_link_durations,
    prediction_error_statistics,
)
from repro.geometry import Vec2
from repro.mobility.generator import TrafficDensity, make_highway_scenario
from repro.mobility.vehicle import VehicleState


def _vehicle(vid, x, y=0.0, speed=0.0, heading=0.0):
    return VehicleState(vid=vid, position=Vec2(x, y), speed=speed, heading=heading)


class TestConnectivityGraph:
    def test_edges_follow_radio_range(self):
        vehicles = [_vehicle(0, 0), _vehicle(1, 200), _vehicle(2, 600)]
        graph = connectivity_graph(vehicles, communication_range=250.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)
        assert graph.number_of_nodes() == 3

    def test_snapshot_statistics_for_a_partitioned_line(self):
        vehicles = [_vehicle(0, 0), _vehicle(1, 200), _vehicle(2, 1000), _vehicle(3, 1200)]
        snapshot = snapshot_connectivity(vehicles, communication_range=250.0, time=5.0)
        assert snapshot.time == 5.0
        assert snapshot.vehicle_count == 4
        assert snapshot.component_count == 2
        assert snapshot.largest_component_fraction == pytest.approx(0.5)
        # 2 reachable ordered pairs per component out of 12 possible.
        assert snapshot.reachable_pair_fraction == pytest.approx(4 / 12)
        assert not snapshot.is_fully_connected

    def test_snapshot_of_connected_cluster(self):
        vehicles = [_vehicle(i, i * 100) for i in range(5)]
        snapshot = snapshot_connectivity(vehicles, communication_range=150.0)
        assert snapshot.is_fully_connected
        assert snapshot.reachable_pair_fraction == pytest.approx(1.0)

    def test_empty_population(self):
        snapshot = snapshot_connectivity([], communication_range=250.0)
        assert snapshot.vehicle_count == 0
        assert snapshot.reachable_pair_fraction == 0.0

    def test_connectivity_over_time_and_summary(self):
        mobility = make_highway_scenario(TrafficDensity.SPARSE, seed=3, max_vehicles=20)
        snapshots = connectivity_over_time(mobility, duration=10.0, dt=2.0)
        assert len(snapshots) == 6
        summary = summarize_snapshots(snapshots)
        assert 0.0 <= summary["mean_reachable_pair_fraction"] <= 1.0
        assert summary["mean_degree"] >= 0.0

    def test_density_improves_connectivity(self):
        sparse = make_highway_scenario(TrafficDensity.SPARSE, seed=4, max_vehicles=200)
        congested = make_highway_scenario(TrafficDensity.CONGESTED, seed=4, max_vehicles=200)
        sparse_frac = snapshot_connectivity(sparse.vehicles).reachable_pair_fraction
        congested_frac = snapshot_connectivity(congested.vehicles).reachable_pair_fraction
        assert congested_frac > sparse_frac

    def test_invalid_interval_rejected(self):
        mobility = make_highway_scenario(TrafficDensity.SPARSE, seed=1, max_vehicles=5)
        with pytest.raises(ValueError):
            connectivity_over_time(mobility, duration=5.0, dt=0.0)


class TestLinkDurationTracker:
    def test_manual_link_break_is_observed(self):
        tracker = LinkDurationTracker(communication_range=250.0)
        a = _vehicle(0, 0, speed=0.0)
        b = _vehicle(1, 200, speed=0.0)
        tracker.observe([a, b], now=0.0)
        assert tracker.active_links == 1
        b.position = Vec2(600, 0)
        tracker.observe([a, b], now=10.0)
        assert tracker.active_links == 0
        assert len(tracker.observations) == 1
        observation = tracker.observations[0]
        assert observation.actual_lifetime == pytest.approx(10.0)

    def test_measure_link_durations_on_highway(self):
        mobility = make_highway_scenario(TrafficDensity.NORMAL, seed=6, max_vehicles=80)
        tracker = measure_link_durations(mobility, duration=60.0, dt=1.0)
        assert tracker.observations
        same = tracker.durations(same_direction=True)
        opposite = tracker.durations(same_direction=False)
        assert same and opposite
        # Fig. 3 / Fig. 4 relationship: same-direction links last longer.
        assert sum(same) / len(same) > sum(opposite) / len(opposite)

    def test_prediction_error_statistics(self):
        mobility = make_highway_scenario(TrafficDensity.NORMAL, seed=7, max_vehicles=30)
        tracker = measure_link_durations(mobility, duration=40.0, dt=1.0)
        stats = prediction_error_statistics(tracker.observations)
        assert stats["links"] == len(tracker.observations)
        assert stats["mean_relative_error"] >= 0.0
        assert stats["mean_actual_lifetime_s"] > 0.0

    def test_prediction_error_statistics_empty(self):
        stats = prediction_error_statistics([])
        assert stats["links"] == 0.0
        assert stats["mean_relative_error"] == 0.0
